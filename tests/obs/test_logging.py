"""Tests for console logging: level names, JSON lines, request-id stamping."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import RequestTrace, trace_context
from repro.utils.logging import (
    LOG_LEVELS,
    JsonLogFormatter,
    RequestIdFilter,
    enable_console_logging,
    get_logger,
)


@pytest.fixture
def clean_library_logger():
    """Detach whatever handlers a test attached to the ``repro`` logger."""
    logger = logging.getLogger("repro")
    before = list(logger.handlers)
    before_level = logger.level
    yield logger
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    for handler in before:
        logger.addHandler(handler)
    logger.setLevel(before_level)


def _record(message: str = "hello", **extra):
    record = logging.LogRecord(
        name="repro.test",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=message,
        args=(),
        exc_info=None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestRequestIdFilter:
    def test_injects_active_trace_id(self):
        record = _record()
        with trace_context(RequestTrace("filter-id-1")):
            assert RequestIdFilter().filter(record) is True
        assert record.request_id == "filter-id-1"

    def test_none_outside_a_request(self):
        record = _record()
        RequestIdFilter().filter(record)
        assert record.request_id is None

    def test_explicit_extra_wins_over_context(self):
        record = _record(request_id="explicit-id")
        with trace_context(RequestTrace("context-id")):
            RequestIdFilter().filter(record)
        assert record.request_id == "explicit-id"


class TestJsonLogFormatter:
    def test_one_object_per_line_with_base_fields(self):
        line = JsonLogFormatter().format(_record("the message"))
        assert "\n" not in line
        entry = json.loads(line)
        assert entry["message"] == "the message"
        assert entry["level"] == "INFO"
        assert entry["logger"] == "repro.test"
        assert isinstance(entry["ts"], float)
        assert "request_id" not in entry  # unset extras are omitted

    def test_structured_extras_pass_through(self):
        line = JsonLogFormatter().format(
            _record(
                "slow query",
                request_id="json-id",
                service="influencers",
                latency_ms=1234.5,
                stages={"backend": 1200.0},
            )
        )
        entry = json.loads(line)
        assert entry["request_id"] == "json-id"
        assert entry["service"] == "influencers"
        assert entry["latency_ms"] == 1234.5
        assert entry["stages"] == {"backend": 1200.0}

    def test_exception_info_folded_in(self):
        try:
            raise RuntimeError("kaboom")
        except RuntimeError:
            import sys

            record = _record("failed")
            record.exc_info = sys.exc_info()
        entry = json.loads(JsonLogFormatter().format(record))
        assert "kaboom" in entry["exc_info"]


class TestEnableConsoleLogging:
    def test_accepts_level_names(self, clean_library_logger):
        handler = enable_console_logging("debug")
        assert clean_library_logger.level == logging.DEBUG
        assert handler in clean_library_logger.handlers

    def test_rejects_unknown_level_name(self, clean_library_logger):
        with pytest.raises(ValueError, match="unknown log level"):
            enable_console_logging("chatty")

    def test_level_names_match_cli_choices(self):
        assert sorted(LOG_LEVELS) == ["debug", "info", "warning"]

    def test_repeated_calls_replace_the_handler(self, clean_library_logger):
        enable_console_logging("info")
        enable_console_logging("warning", json_lines=True)
        assert len(clean_library_logger.handlers) == 1
        assert isinstance(
            clean_library_logger.handlers[0].formatter, JsonLogFormatter
        )

    def test_slow_query_line_renders_as_parseable_json(
        self, clean_library_logger, capsys
    ):
        """The full chain: slow log → filter → JSON line on stderr."""
        from repro.obs import maybe_log_slow

        enable_console_logging("warning", json_lines=True)
        trace = RequestTrace("chain-id")
        trace.record("backend", 2.0)
        assert maybe_log_slow(
            trace, service="influencers", latency_ms=2000.0, threshold_ms=1000.0
        )
        line = capsys.readouterr().err.strip().splitlines()[-1]
        entry = json.loads(line)
        assert entry["request_id"] == "chain-id"
        assert entry["logger"] == "repro.obs.slowlog"
        assert entry["service"] == "influencers"
        assert entry["stages"]["backend"] == pytest.approx(2000.0)


class TestServeFlags:
    def test_serve_parses_observability_flags(self):
        from repro.cli import build_parser

        arguments = build_parser().parse_args(
            [
                "serve",
                "some-dataset",
                "--log-level",
                "debug",
                "--log-json",
                "--no-trace",
                "--slow-query-ms",
                "250",
            ]
        )
        assert arguments.log_level == "debug"
        assert arguments.log_json is True
        assert arguments.no_trace is True
        assert arguments.slow_query_ms == 250.0

    def test_serve_rejects_unknown_log_level(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "some-dataset", "--log-level", "chatty"]
            )

    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("obs.slowlog").name == "repro.obs.slowlog"

"""Tests for the serving-layer metric collectors.

Pins two ISSUE-mandated behaviours: ``Counters.observe`` gauge semantics
(running maximum only, ``.max``-suffixed snapshot keys) and
``ServiceMetrics.record`` folding latency for error responses too.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.histogram import DEFAULT_LATENCY_BUCKETS_MS, edge_label
from repro.server.wire import HTTPCounters
from repro.service.middleware import Counters, ServiceMetrics
from repro.service.responses import ServiceResponse


class TestCountersObserve:
    def test_observe_keeps_running_maximum_only(self):
        counters = Counters()
        counters.observe("queue_depth", 3.0)
        counters.observe("queue_depth", 7.0)
        counters.observe("queue_depth", 5.0)
        assert counters.snapshot() == {"queue_depth.max": 7.0}

    def test_observe_does_not_touch_counter_namespace(self):
        counters = Counters()
        counters.increment("admitted")
        counters.observe("admitted", 99.0)
        snapshot = counters.snapshot()
        assert snapshot["admitted"] == 1.0
        assert snapshot["admitted.max"] == 99.0

    def test_observe_accepts_negative_samples(self):
        counters = Counters()
        counters.observe("drift", -2.0)
        assert counters.snapshot()["drift.max"] == -2.0
        counters.observe("drift", -5.0)
        assert counters.snapshot()["drift.max"] == -2.0

    def test_prefix_applies_to_gauges(self):
        counters = Counters(prefix="gateway.")
        counters.observe("queue_depth", 4.0)
        assert counters.snapshot() == {"gateway.queue_depth.max": 4.0}


class TestServiceMetricsRecord:
    def _response(self, ok: bool, latency_ms: float) -> ServiceResponse:
        if ok:
            response = ServiceResponse.success("influencers", {"seeds": []})
        else:
            response = ServiceResponse.failure(
                "influencers", "internal_error", "boom"
            )
        return dataclasses.replace(response, latency_ms=latency_ms)

    def test_error_latency_folds_into_histogram(self):
        """A slow failure must be as visible as a slow success (ISSUE pin)."""
        metrics = ServiceMetrics()
        metrics.record(self._response(ok=True, latency_ms=4.0))
        metrics.record(self._response(ok=False, latency_ms=900.0))
        snapshot = metrics.snapshot()
        assert snapshot["service.influencers.requests"] == 2.0
        assert snapshot["service.influencers.errors"] == 1.0
        # The error's 900 ms is in the histogram: max reflects it and the
        # (500, 1000] bucket holds one observation.
        assert snapshot["service.influencers.max_latency_ms"] == 900.0
        assert snapshot["service.influencers.latency_ms_le.1000"] == 1.0
        assert snapshot["service.influencers.mean_latency_ms"] == pytest.approx(
            452.0
        )

    def test_mean_and_max_derived_from_histogram(self):
        metrics = ServiceMetrics()
        for latency in (2.0, 4.0, 6.0):
            metrics.record(self._response(ok=True, latency_ms=latency))
        snapshot = metrics.snapshot()
        assert snapshot["service.influencers.mean_latency_ms"] == pytest.approx(4.0)
        assert snapshot["service.influencers.max_latency_ms"] == 6.0
        for name in ("p50", "p95", "p99"):
            assert f"service.influencers.{name}_latency_ms" in snapshot

    def test_snapshot_emits_all_default_buckets(self):
        metrics = ServiceMetrics()
        metrics.record(self._response(ok=True, latency_ms=3.0))
        snapshot = metrics.snapshot()
        for edge in DEFAULT_LATENCY_BUCKETS_MS:
            assert (
                f"service.influencers.latency_ms_le.{edge_label(edge)}" in snapshot
            )
        assert "service.influencers.latency_ms_le.inf" in snapshot
        assert "service.influencers.latency_ms_sum" in snapshot

    def test_export_state_shape(self):
        metrics = ServiceMetrics()
        metrics.record(self._response(ok=False, latency_ms=10.0))
        state = metrics.export_state()
        entry = state["influencers"]
        assert entry["requests"] == 1.0
        assert entry["errors"] == 1.0
        assert entry["cache_hits"] == 0.0
        assert entry["histogram"].count == 1

    def test_reset_drops_everything(self):
        metrics = ServiceMetrics()
        metrics.record(self._response(ok=True, latency_ms=1.0))
        metrics.reset()
        assert metrics.snapshot() == {}


class TestHTTPCountersHistogram:
    def test_latency_keys_appear_after_observations(self):
        counters = HTTPCounters()
        counters.record("/query", 200, duration_ms=12.0)
        counters.record("/query", 500, duration_ms=700.0)
        snapshot = counters.snapshot()
        assert snapshot["http.requests"] == 2.0
        assert snapshot["http.responses.5xx"] == 1.0
        assert snapshot["http.latency_ms_le.25"] == 1.0
        assert snapshot["http.latency_ms_le.1000"] == 1.0
        assert snapshot["http.p50_latency_ms"] > 0.0

    def test_no_histogram_keys_before_traffic(self):
        snapshot = HTTPCounters().snapshot()
        assert not any("latency_ms" in key for key in snapshot)

    def test_export_state_carries_live_histogram(self):
        counters = HTTPCounters()
        counters.record("/stats", 200, duration_ms=2.0)
        state = counters.export_state()
        assert state["total"] == 1.0
        assert state["histogram"].count == 1
        assert state["by_path"]["/stats"] == 1.0
        assert state["by_status_class"]["2xx"] == 1.0

"""End-to-end observability: /metrics, request ids, and the determinism pin.

The load-bearing acceptance test lives here: ``deterministic_form()``
bytes are identical with tracing on or off, across the in-process
service, the threaded server, the asyncio gateway, and the cluster
coordinator at 1/2/4 shards.
"""

from __future__ import annotations

import http.client
import json
import logging

import pytest

from repro.cluster import ClusterCoordinator
from repro.core.octopus import Octopus, OctopusConfig
from repro.obs import (
    RequestTrace,
    clean_request_id,
    trace_context,
)
from repro.obs.prometheus import CONTENT_TYPE, validate_exposition
from repro.service import FindInfluencersRequest, OctopusService
from repro.service.responses import ServiceResponse, deterministic_form

#: Every wire wait in this module is bounded by this (seconds).
WIRE_TIMEOUT = 15.0

REQUEST = FindInfluencersRequest("data mining", k=3)


def _raw_get(server_url: str, path: str):
    """One raw GET → (status, headers, body text)."""
    host_port = server_url.split("//", 1)[1].rstrip("/")
    host, port = host_port.split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=WIRE_TIMEOUT)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read().decode(
            "utf-8"
        )
    finally:
        connection.close()


def _raw_post(server_url: str, path: str, body: str, headers=None):
    """One raw POST → (status, headers, parsed JSON body)."""
    host_port = server_url.split("//", 1)[1].rstrip("/")
    host, port = host_port.split(":")
    connection = http.client.HTTPConnection(host, int(port), timeout=WIRE_TIMEOUT)
    try:
        all_headers = {"Content-Type": "application/json"}
        all_headers.update(headers or {})
        connection.request("POST", path, body=body.encode("utf-8"), headers=all_headers)
        response = connection.getresponse()
        return (
            response.status,
            dict(response.getheaders()),
            json.loads(response.read().decode("utf-8")),
        )
    finally:
        connection.close()


class TestMetricsEndpointThreaded:
    def test_scrape_is_valid_and_reflects_traffic(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                assert client.execute(REQUEST).ok
            status, headers, body = _raw_get(server.url, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert validate_exposition(body) == [], validate_exposition(body)
        assert "octopus_http_requests_total" in body
        assert 'octopus_service_requests_total{service="influencers"} 1' in body
        assert "# TYPE octopus_service_latency_ms histogram" in body
        assert 'octopus_stat{key="uptime_seconds"}' in body

    def test_fresh_server_scrapes_cleanly(self, backend, running_server):
        with running_server(OctopusService(backend)) as server:
            status, _headers, body = _raw_get(server.url, "/metrics")
        assert status == 200
        assert validate_exposition(body) == []
        # No traffic yet: the HTTP section renders with zero totals and
        # the per-service section is absent.
        assert "octopus_http_requests_total 0" in body
        assert "octopus_service_requests_total" not in body


class TestMetricsEndpointGateway:
    def test_scrape_is_valid_and_reflects_traffic(
        self, backend, running_gateway, connected_client
    ):
        with running_gateway(OctopusService(backend)) as gateway:
            with connected_client(gateway) as client:
                assert client.execute(REQUEST).ok
            status, headers, body = _raw_get(gateway.url, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        assert validate_exposition(body) == [], validate_exposition(body)
        assert "octopus_http_requests_total" in body
        assert 'octopus_service_requests_total{service="influencers"} 1' in body


class TestRequestIdPropagation:
    def test_supplied_id_echoed_threaded(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(
                server, request_headers={"X-Request-Id": "my-id-123"}
            ) as client:
                response = client.execute(REQUEST)
        assert response.ok
        assert response.request_id == "my-id-123"
        assert response.timings is None  # debug not requested

    def test_supplied_id_echoed_in_header(self, backend, running_server):
        with running_server(OctopusService(backend)) as server:
            _status, headers, payload = _raw_post(
                server.url,
                "/query",
                REQUEST.to_json(),
                headers={"X-Request-Id": "hdr-echo-1"},
            )
        assert headers["X-Request-Id"] == "hdr-echo-1"
        assert payload["request_id"] == "hdr-echo-1"

    def test_minted_id_when_absent(self, backend, running_server, connected_client):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                response = client.execute(REQUEST)
        assert response.request_id is not None
        assert clean_request_id(response.request_id) == response.request_id

    def test_hostile_id_replaced(self, backend, running_server, connected_client):
        with running_server(OctopusService(backend)) as server:
            with connected_client(
                server, request_headers={"X-Request-Id": "x" * 200}
            ) as client:
                response = client.execute(REQUEST)
        assert response.request_id != "x" * 200
        assert clean_request_id(response.request_id) == response.request_id

    def test_debug_timings_breakdown(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(
                server, request_headers={"X-Debug-Timings": "1"}
            ) as client:
                response = client.execute(REQUEST)
        assert response.ok
        assert response.timings, "debug timings requested but absent"
        assert "backend" in response.timings
        assert "assemble" in response.timings
        assert all(value >= 0.0 for value in response.timings.values())

    def test_error_envelope_carries_id(self, backend, running_server):
        with running_server(OctopusService(backend)) as server:
            _status, headers, payload = _raw_post(
                server.url,
                "/query",
                "this is not json",
                headers={"X-Request-Id": "err-id-1"},
            )
        assert payload["ok"] is False
        assert payload["request_id"] == "err-id-1"
        assert headers["X-Request-Id"] == "err-id-1"

    def test_tracing_off_leaves_envelope_bare(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend), tracing=False) as server:
            with connected_client(
                server, request_headers={"X-Request-Id": "ignored-id"}
            ) as client:
                response = client.execute(REQUEST)
        assert response.ok
        assert response.request_id is None
        assert response.timings is None


class TestRequestIdGateway:
    def test_supplied_id_echoed(self, backend, running_gateway, connected_client):
        with running_gateway(OctopusService(backend)) as gateway:
            with connected_client(
                gateway, request_headers={"X-Request-Id": "gw-id-9"}
            ) as client:
                response = client.execute(REQUEST)
        assert response.ok
        assert response.request_id == "gw-id-9"

    def test_debug_timings_include_queue_wait(
        self, backend, running_gateway, connected_client
    ):
        with running_gateway(OctopusService(backend)) as gateway:
            with connected_client(
                gateway, request_headers={"X-Debug-Timings": "1"}
            ) as client:
                response = client.execute(REQUEST)
        assert response.ok
        assert response.timings
        assert "queue_wait" in response.timings
        assert "backend" in response.timings

    def test_error_envelope_carries_id(self, backend, running_gateway):
        with running_gateway(OctopusService(backend)) as gateway:
            _status, headers, payload = _raw_post(
                gateway.url,
                "/query",
                "not json either",
                headers={"X-Request-Id": "gw-err-2"},
            )
        assert payload["ok"] is False
        assert payload["request_id"] == "gw-err-2"
        assert headers["X-Request-Id"] == "gw-err-2"


class TestSlowQueryLog:
    def test_slow_request_logged_with_request_id(
        self, backend, running_server, connected_client, caplog
    ):
        # A microscopic threshold makes every real query "slow".
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            with running_server(
                OctopusService(backend), slow_query_ms=0.0001
            ) as server:
                with connected_client(
                    server, request_headers={"X-Request-Id": "slow-1"}
                ) as client:
                    assert client.execute(REQUEST).ok
        records = [
            record
            for record in caplog.records
            if record.name == "repro.obs.slowlog"
        ]
        assert records, "slow query never logged"
        record = records[-1]
        assert record.request_id == "slow-1"
        assert record.service == "influencers"
        assert "slow query service=influencers" in record.getMessage()

    def test_quiet_at_default_threshold(
        self, backend, running_server, connected_client, caplog
    ):
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            with running_server(
                OctopusService(backend), slow_query_ms=60_000.0
            ) as server:
                with connected_client(server) as client:
                    assert client.execute(REQUEST).ok
        assert not [
            record
            for record in caplog.records
            if record.name == "repro.obs.slowlog"
        ]


class TestTracingDeterminism:
    """The acceptance pin: tracing must never change deterministic bytes."""

    @pytest.fixture(scope="class")
    def baseline_form(self, backend):
        """The in-process untraced answer every traced path must match."""
        return deterministic_form(OctopusService(backend).execute(REQUEST))

    def test_in_process_traced_matches(self, backend, baseline_form):
        service = OctopusService(backend)
        with trace_context(RequestTrace("det-1", debug=True)):
            response = service.execute(REQUEST)
        assert response.request_id == "det-1"
        assert response.timings
        assert deterministic_form(response) == baseline_form

    def test_threaded_server_on_off(
        self, backend, running_server, connected_client, baseline_form
    ):
        for tracing in (True, False):
            with running_server(
                OctopusService(backend), tracing=tracing
            ) as server:
                with connected_client(
                    server, request_headers={"X-Debug-Timings": "1"}
                ) as client:
                    response = client.execute(REQUEST)
            assert response.ok
            assert deterministic_form(response) == baseline_form

    def test_gateway_on_off(
        self, backend, running_gateway, connected_client, baseline_form
    ):
        for tracing in (True, False):
            with running_gateway(
                OctopusService(backend), tracing=tracing
            ) as gateway:
                with connected_client(
                    gateway, request_headers={"X-Debug-Timings": "1"}
                ) as client:
                    response = client.execute(REQUEST)
            assert response.ok
            assert deterministic_form(response) == baseline_form

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_cluster_traced_and_untraced(
        self, citation_dataset, baseline_form, shards
    ):
        config = OctopusConfig(
            num_sketches=30,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        )
        service = OctopusService(Octopus.from_dataset(citation_dataset, config=config))
        cluster = ClusterCoordinator(service, shards=shards, shard_timeout=20.0)
        try:
            untraced = cluster.execute(REQUEST)
            with trace_context(RequestTrace("det-cluster", debug=True)):
                traced = cluster.execute(REQUEST)
        finally:
            cluster.close()
        assert untraced.ok and traced.ok
        assert traced.request_id == "det-cluster"
        assert deterministic_form(untraced) == baseline_form
        assert deterministic_form(traced) == baseline_form

    def test_wire_round_trip_of_stamped_envelope(self):
        response = ServiceResponse.success("stats", {"n": 1.0})
        trace = RequestTrace("rt-99", debug=True)
        trace.record("backend", 0.002)
        with trace_context(trace):
            from repro.obs import stamp_response

            stamped = stamp_response(response)
        parsed = ServiceResponse.from_json(stamped.to_json())
        assert parsed == stamped
        assert deterministic_form(parsed) == deterministic_form(response)

"""Tests for the Prometheus text renderer and the in-repo validator."""

from __future__ import annotations

import io
import subprocess
import sys

from repro.obs.histogram import LatencyHistogram
from repro.obs.prometheus import (
    CONTENT_TYPE,
    render_exposition,
    validate_exposition,
)
from repro.obs import prometheus as prometheus_module


def _service_state():
    histogram = LatencyHistogram((1.0, 10.0))
    histogram.observe(0.5)
    histogram.observe(700.0)
    return {
        "influencers": {
            "requests": 2.0,
            "errors": 1.0,
            "cache_hits": 0.0,
            "histogram": histogram,
        }
    }


def _http_state():
    histogram = LatencyHistogram((1.0, 10.0))
    histogram.observe(2.0)
    return {
        "total": 3.0,
        "by_path": {"/query": 2.0, "/stats": 1.0},
        "by_status_class": {"2xx": 3.0},
        "histogram": histogram,
    }


class TestRender:
    def test_content_type_pinned(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_full_render_is_valid(self):
        body = render_exposition(
            _service_state(), _http_state(), extra={"uptime_seconds": 12.5}
        )
        assert validate_exposition(body) == []
        assert body.endswith("\n")

    def test_service_series(self):
        body = render_exposition(_service_state())
        assert 'octopus_service_requests_total{service="influencers"} 2' in body
        assert 'octopus_service_errors_total{service="influencers"} 1' in body
        assert "# TYPE octopus_service_latency_ms histogram" in body
        # Cumulative buckets: 0.5 in le=1, both in le=+Inf.
        assert (
            'octopus_service_latency_ms_bucket{service="influencers",le="1"} 1'
            in body
        )
        assert (
            'octopus_service_latency_ms_bucket{service="influencers",le="+Inf"} 2'
            in body
        )
        assert 'octopus_service_latency_ms_count{service="influencers"} 2' in body
        assert 'octopus_service_latency_ms_sum{service="influencers"} 700.5' in body

    def test_http_series(self):
        body = render_exposition(None, _http_state())
        assert "octopus_http_requests_total 3" in body
        assert 'octopus_http_path_requests_total{path="/query"} 2' in body
        assert 'octopus_http_responses_total{code_class="2xx"} 3' in body
        assert 'octopus_http_request_latency_ms_bucket{le="+Inf"} 1' in body

    def test_extra_gauges(self):
        body = render_exposition(extra={"executor.shards_alive": 4.0})
        assert 'octopus_stat{key="executor.shards_alive"} 4' in body
        assert validate_exposition(body) == []

    def test_non_numeric_extra_skipped(self):
        body = render_exposition(extra={"executor.kind": "cluster", "n": 1.0})
        assert "executor.kind" not in body
        assert 'octopus_stat{key="n"} 1' in body

    def test_label_values_escaped(self):
        body = render_exposition(
            extra={'weird"key\nname\\x': 1.0}
        )
        assert validate_exposition(body) == []
        assert '\\"' in body and "\\n" in body and "\\\\" in body

    def test_empty_render_still_valid(self):
        """A fresh server with zero traffic must still scrape cleanly."""
        empty_http = {
            "total": 0.0,
            "by_path": {},
            "by_status_class": {},
            "histogram": LatencyHistogram(),
        }
        body = render_exposition(None, empty_http, extra={"uptime_seconds": 0.1})
        assert validate_exposition(body) == []
        assert "octopus_http_requests_total 0" in body


class TestValidator:
    def test_rejects_empty_body(self):
        assert validate_exposition("") == ["empty exposition body"]

    def test_rejects_missing_trailing_newline(self):
        problems = validate_exposition("# TYPE x counter\nx 1")
        assert any("newline" in problem for problem in problems)

    def test_rejects_malformed_sample(self):
        problems = validate_exposition("# TYPE x counter\nx one\n")
        assert any("malformed sample" in problem for problem in problems)

    def test_rejects_malformed_comment(self):
        problems = validate_exposition("# BOGUS x counter\n")
        assert any("malformed comment" in problem for problem in problems)

    def test_rejects_undeclared_family(self):
        problems = validate_exposition("orphan_metric 1\n")
        assert any("no # TYPE declaration" in problem for problem in problems)

    def test_rejects_incomplete_histogram(self):
        text = (
            "# TYPE lat histogram\n"
            'lat_bucket{le="+Inf"} 1\n'
            "lat_sum 5\n"
        )
        problems = validate_exposition(text)
        assert any("missing series: _count" in problem for problem in problems)

    def test_accepts_labels_values_and_timestamps(self):
        text = (
            "# HELP m A metric.\n"
            "# TYPE m gauge\n"
            'm{a="b",c="d"} 1.5e-3 1700000000\n'
            "m -Inf\n"
        )
        assert validate_exposition(text) == []


class TestCommandLine:
    def test_main_accepts_valid_body(self, monkeypatch, capsys):
        body = render_exposition(_service_state(), _http_state())
        monkeypatch.setattr(sys, "stdin", io.StringIO(body))
        assert prometheus_module.main() == 0
        assert capsys.readouterr().out.startswith("ok: ")

    def test_main_rejects_invalid_body(self, monkeypatch, capsys):
        monkeypatch.setattr(sys, "stdin", io.StringIO("broken line{\n"))
        assert prometheus_module.main() == 1
        assert capsys.readouterr().err

    def test_module_entry_point(self):
        """``python -m repro.obs.prometheus`` is what the CI scrape pipes to."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro.obs.prometheus"],
            input=render_exposition(extra={"uptime_seconds": 1.0}),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert completed.returncode == 0, completed.stderr

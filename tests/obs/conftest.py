"""Fixtures of the observability test suite.

Mirrors the serving package's discipline: one small package-scoped
backend, real sockets on ephemeral ports, bounded waits everywhere.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.gateway import GatewayConfig, OctopusAsyncGateway
from repro.server import OctopusClient, serve_in_background

#: Every wire wait in this package is bounded by this (seconds).
WIRE_TIMEOUT = 15.0


@pytest.fixture(scope="package")
def backend(citation_dataset):
    """One small Octopus backend shared by the whole obs package."""
    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=30,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        ),
    )


@contextlib.contextmanager
def _running_server(service, **server_kwargs):
    """Boot a threaded server on an ephemeral port; drain it afterwards."""
    server_kwargs.setdefault("request_timeout", 5.0)
    server = serve_in_background(service, **server_kwargs)
    try:
        yield server
    finally:
        server.shutdown_gracefully()


@pytest.fixture
def running_server():
    """The server-booting context manager (see :func:`_running_server`)."""
    return _running_server


@contextlib.contextmanager
def _connected_client(server, **client_kwargs):
    """An :class:`OctopusClient` for *server*, closed on exit."""
    client_kwargs.setdefault("timeout", WIRE_TIMEOUT)
    client = OctopusClient(server.url, **client_kwargs)
    try:
        yield client
    finally:
        client.close()


@pytest.fixture
def connected_client():
    """The client-connecting context manager (see :func:`_connected_client`)."""
    return _connected_client


@contextlib.contextmanager
def _running_gateway(service, **gateway_kwargs):
    """Boot an asyncio gateway on an ephemeral port; drain it afterwards."""
    gateway_kwargs.setdefault(
        "config", GatewayConfig(read_timeout=5.0, write_timeout=5.0)
    )
    gateway = OctopusAsyncGateway(service, port=0, **gateway_kwargs)
    gateway.start()
    try:
        yield gateway
    finally:
        gateway.shutdown_gracefully()


@pytest.fixture
def running_gateway():
    """The gateway-booting context manager (see :func:`_running_gateway`)."""
    return _running_gateway

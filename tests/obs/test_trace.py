"""Unit tests for request traces, context propagation, and the slow log."""

from __future__ import annotations

import json
import logging
import threading

import pytest

from repro.obs.trace import (
    RequestTrace,
    clean_request_id,
    current_trace,
    default_slow_query_ms,
    maybe_log_slow,
    new_request_id,
    record_stage,
    stage,
    stamp_response,
    trace_context,
    tracing_enabled_default,
)
from repro.service.responses import ServiceResponse


class TestRequestIds:
    def test_new_request_id_shape(self):
        rid = new_request_id()
        assert len(rid) == 32
        assert clean_request_id(rid) == rid
        assert new_request_id() != rid

    @pytest.mark.parametrize(
        "candidate",
        ["abc-123", "A.B:C_d", "x" * 64, "  padded  "],
    )
    def test_clean_accepts_safe_tokens(self, candidate):
        assert clean_request_id(candidate) == candidate.strip()

    @pytest.mark.parametrize(
        "candidate",
        [None, "", "x" * 65, "has space", "new\nline", "quote\"", "é-accent"],
    )
    def test_clean_rejects_unsafe_tokens(self, candidate):
        assert clean_request_id(candidate) is None


class TestEnvironmentKnobs:
    def test_tracing_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert tracing_enabled_default() is True

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " OFF "])
    def test_tracing_opt_out(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE", value)
        assert tracing_enabled_default() is False

    def test_slow_query_threshold(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        assert default_slow_query_ms() == 1000.0
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "250")
        assert default_slow_query_ms() == 250.0
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "not-a-number")
        assert default_slow_query_ms() == 1000.0


class TestRequestTrace:
    def test_minted_id_when_none_supplied(self):
        trace = RequestTrace()
        assert clean_request_id(trace.request_id) == trace.request_id

    def test_adopted_id_kept(self):
        trace = RequestTrace("client-id-1")
        assert trace.request_id == "client-id-1"

    def test_breakdown_folds_repeats_in_first_seen_order(self):
        trace = RequestTrace()
        trace.record("cache_lookup", 0.001)
        trace.record("backend", 0.010)
        trace.record("cache_lookup", 0.002)
        breakdown = trace.breakdown_ms()
        assert list(breakdown) == ["cache_lookup", "backend"]
        assert breakdown["cache_lookup"] == pytest.approx(3.0)
        assert breakdown["backend"] == pytest.approx(10.0)

    def test_stage_context_manager_records(self):
        trace = RequestTrace()
        with trace.stage("work"):
            pass
        assert "work" in trace.breakdown_ms()

    def test_elapsed_advances(self):
        trace = RequestTrace()
        assert trace.elapsed_ms() >= 0.0

    def test_thread_safe_recording(self):
        trace = RequestTrace()

        def hammer():
            for _ in range(200):
                trace.record("shard", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert trace.breakdown_ms()["shard"] == pytest.approx(800.0)


class TestContext:
    def test_no_trace_by_default(self):
        assert current_trace() is None

    def test_trace_context_installs_and_restores(self):
        trace = RequestTrace()
        with trace_context(trace) as active:
            assert active is trace
            assert current_trace() is trace
        assert current_trace() is None

    def test_trace_context_none_is_passthrough(self):
        with trace_context(None) as active:
            assert active is None
            assert current_trace() is None

    def test_record_stage_and_stage_are_noops_without_trace(self):
        record_stage("orphan", 1.0)
        with stage("orphan"):
            pass  # must not raise

    def test_module_stage_records_on_active_trace(self):
        trace = RequestTrace()
        with trace_context(trace):
            with stage("inner"):
                record_stage("manual", 0.004)
        breakdown = trace.breakdown_ms()
        assert "inner" in breakdown
        assert breakdown["manual"] == pytest.approx(4.0)


class TestStampResponse:
    def test_unchanged_without_trace(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        assert stamp_response(response) is response

    def test_stamps_request_id(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        trace = RequestTrace("rid-1")
        stamped = stamp_response(response, trace)
        assert stamped.request_id == "rid-1"
        assert stamped.timings is None

    def test_debug_adds_timings(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        trace = RequestTrace("rid-2", debug=True)
        trace.record("backend", 0.005)
        stamped = stamp_response(response, trace)
        assert stamped.timings == {"backend": pytest.approx(5.0)}

    def test_overrides_stale_id(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        stale = stamp_response(response, RequestTrace("old-id"))
        fresh = stamp_response(stale, RequestTrace("new-id"))
        assert fresh.request_id == "new-id"

    def test_uses_ambient_trace(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        trace = RequestTrace("ambient-id")
        with trace_context(trace):
            assert stamp_response(response).request_id == "ambient-id"

    def test_round_trip_preserves_stamp(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        trace = RequestTrace("rt-id", debug=True)
        trace.record("backend", 0.001)
        stamped = stamp_response(response, trace)
        assert ServiceResponse.from_json(stamped.to_json()) == stamped

    def test_untraced_wire_shape_unchanged(self):
        """Without a trace the envelope keeps its historical byte shape."""
        response = ServiceResponse.success("stats", {"x": 1.0})
        payload = json.loads(response.to_json())
        assert "request_id" not in payload
        assert "timings" not in payload


class TestSlowQueryLog:
    def test_logs_over_threshold(self, caplog):
        trace = RequestTrace("slow-rid")
        trace.record("backend", 1.5)
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            logged = maybe_log_slow(
                trace, service="influencers", latency_ms=1500.0, threshold_ms=1000.0
            )
        assert logged is True
        record = caplog.records[-1]
        assert record.request_id == "slow-rid"
        assert record.service == "influencers"
        assert record.latency_ms == pytest.approx(1500.0)
        assert record.stages["backend"] == pytest.approx(1500.0)
        assert "slow query service=influencers" in record.getMessage()
        # The stage breakdown in the message is compact JSON.
        stages_json = record.getMessage().split("stages=", 1)[1]
        assert json.loads(stages_json)["backend"] == pytest.approx(1500.0)

    def test_quiet_under_threshold(self, caplog):
        trace = RequestTrace()
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            logged = maybe_log_slow(
                trace, service="stats", latency_ms=10.0, threshold_ms=1000.0
            )
        assert logged is False
        assert not caplog.records

    def test_non_positive_threshold_disables(self, caplog):
        trace = RequestTrace()
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            assert not maybe_log_slow(
                trace, service="stats", latency_ms=9999.0, threshold_ms=0.0
            )
        assert not caplog.records

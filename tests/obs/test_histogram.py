"""Unit and property tests for the fixed-bucket latency histogram.

The load-bearing property (pinned with Hypothesis below): for any bucket
layout and any sample set, the histogram's quantile estimate lands in the
same bucket as the true sample quantile — fixed buckets lose precision,
never rank.
"""

from __future__ import annotations

import bisect
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LatencyHistogram,
    aggregate_latency_keys,
    edge_label,
)


class TestConstruction:
    def test_default_buckets(self):
        histogram = LatencyHistogram()
        assert histogram.bucket_edges == DEFAULT_LATENCY_BUCKETS_MS
        assert histogram.count == 0
        assert histogram.quantile(0.5) == 0.0

    def test_rejects_empty_layout(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            LatencyHistogram(())

    def test_rejects_non_increasing_edges(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            LatencyHistogram((5.0, 5.0, 10.0))

    def test_rejects_non_finite_or_non_positive_edges(self):
        with pytest.raises(ValueError, match="finite and positive"):
            LatencyHistogram((0.0, 5.0))
        with pytest.raises(ValueError, match="finite and positive"):
            LatencyHistogram((1.0, math.inf))


class TestObserve:
    def test_le_bucketing(self):
        histogram = LatencyHistogram((1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.0, 50.0, 1000.0):
            histogram.observe(value)
        # le semantics: a value equal to an edge lands in that edge's
        # bucket, so 1.0 joins (<=1], 10.0 joins (1, 10].
        assert histogram.counts() == (2, 2, 1, 1)
        assert histogram.cumulative_counts() == (2, 4, 5, 6)
        assert histogram.count == 6
        assert histogram.max_ms == 1000.0

    def test_negative_and_non_finite_clamp_to_zero(self):
        histogram = LatencyHistogram((1.0,))
        histogram.observe(-5.0)
        histogram.observe(float("nan"))
        histogram.observe(float("inf"))
        assert histogram.counts() == (3, 0)
        assert histogram.sum_ms == 0.0

    def test_mean_and_sum_are_exact(self):
        histogram = LatencyHistogram((1.0, 10.0))
        for value in (0.25, 2.0, 3.75):
            histogram.observe(value)
        assert histogram.sum_ms == pytest.approx(6.0)
        assert histogram.mean_ms == pytest.approx(2.0)

    def test_merge_counts(self):
        histogram = LatencyHistogram((1.0, 10.0))
        histogram.observe(0.5)
        histogram.merge_counts([1, 2, 3], sum_ms=40.0, max_ms=99.0)
        assert histogram.counts() == (2, 2, 3)
        assert histogram.sum_ms == pytest.approx(40.5)
        assert histogram.max_ms == 99.0

    def test_merge_counts_rejects_wrong_layout(self):
        histogram = LatencyHistogram((1.0, 10.0))
        with pytest.raises(ValueError, match="bucket counts"):
            histogram.merge_counts([1, 2])


class TestQuantiles:
    def test_quantile_bounds_checked(self):
        with pytest.raises(ValueError, match="quantile"):
            LatencyHistogram().quantile(1.5)

    def test_overflow_bucket_reports_last_edge(self):
        histogram = LatencyHistogram((1.0, 10.0))
        histogram.observe(500.0)
        assert histogram.quantile(0.5) == 10.0
        assert histogram.quantile(0.99) == 10.0

    def test_interpolates_within_bucket(self):
        histogram = LatencyHistogram((10.0,))
        for _ in range(4):
            histogram.observe(5.0)
        # All mass in (0, 10]: the median interpolates to the middle.
        assert histogram.quantile(0.5) == pytest.approx(5.0)
        assert histogram.quantile(1.0) == pytest.approx(10.0)

    def test_percentiles_keys(self):
        histogram = LatencyHistogram()
        histogram.observe(3.0)
        assert set(histogram.percentiles()) == {"p50", "p95", "p99"}


class TestSnapshotKeys:
    def test_snapshot_into_flat_keys(self):
        histogram = LatencyHistogram((1.0, 10.0))
        histogram.observe(0.5)
        histogram.observe(5.0)
        stats = {}
        histogram.snapshot_into(stats, "service.query")
        assert stats["service.query.latency_ms_le.1"] == 1.0
        assert stats["service.query.latency_ms_le.10"] == 1.0
        assert stats["service.query.latency_ms_le.inf"] == 0.0
        assert stats["service.query.latency_ms_sum"] == pytest.approx(5.5)
        for name in ("p50", "p95", "p99"):
            assert f"service.query.{name}_latency_ms" in stats

    def test_edge_labels(self):
        assert edge_label(2.5) == "2.5"
        assert edge_label(10.0) == "10"
        assert edge_label(10000.0) == "10000"
        assert edge_label(math.inf) == "inf"


class TestAggregation:
    def test_two_shards_sum_keywise(self):
        a = LatencyHistogram((1.0, 10.0))
        b = LatencyHistogram((1.0, 10.0))
        for value in (0.5, 2.0):
            a.observe(value)
        for value in (3.0, 50.0):
            b.observe(value)
        snap_a, snap_b = {}, {}
        a.snapshot_into(snap_a, "service.query")
        b.snapshot_into(snap_b, "service.query")
        merged = aggregate_latency_keys([snap_a, snap_b])
        assert merged["service.query.latency_ms_le.1"] == 1.0
        assert merged["service.query.latency_ms_le.10"] == 2.0
        assert merged["service.query.latency_ms_le.inf"] == 1.0
        assert merged["service.query.latency_ms_sum"] == pytest.approx(55.5)
        # The merged percentiles come from a histogram holding all four
        # observations.
        reference = LatencyHistogram((1.0, 10.0))
        for value in (0.5, 2.0, 3.0, 50.0):
            reference.observe(value)
        assert merged["service.query.p50_latency_ms"] == pytest.approx(
            round(reference.quantile(0.5), 3)
        )

    def test_key_prefix_filters_sources(self):
        histogram = LatencyHistogram((1.0,))
        histogram.observe(0.5)
        snapshot = {}
        histogram.snapshot_into(snapshot, "service.query")
        histogram.snapshot_into(snapshot, "http")
        merged = aggregate_latency_keys([snapshot], key_prefix="service.")
        assert any(key.startswith("service.query.") for key in merged)
        assert not any(key.startswith("http.") for key in merged)

    def test_non_histogram_keys_ignored(self):
        merged = aggregate_latency_keys(
            [{"service.query.requests": 5.0, "executor.kind": "cluster"}]
        )
        assert merged == {}


# ----------------------------------------------------------------------
# The bracketing property
# ----------------------------------------------------------------------

_EDGES = st.lists(
    st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(lambda edges: tuple(sorted(edges)))

_SAMPLES = st.lists(
    st.floats(min_value=0.0, max_value=2e4, allow_nan=False),
    min_size=1,
    max_size=60,
)


def _bucket_of(edges, value):
    """The bucket index *value* falls in under ``le`` semantics."""
    return bisect.bisect_left(edges, value)


@settings(max_examples=150, deadline=None)
@given(edges=_EDGES, samples=_SAMPLES, q=st.sampled_from([0.5, 0.9, 0.95, 0.99]))
def test_quantile_estimate_brackets_true_sample_quantile(edges, samples, q):
    """The estimate lands in the true quantile's bucket, for any layout.

    The true q-quantile here is the order statistic at the histogram's
    own target rank (``ceil(q * n)``); the estimate interpolates inside
    some bucket, and that bucket must be the one holding the true value
    — equivalently, the estimate's bucket bounds bracket it.
    """
    histogram = LatencyHistogram(edges)
    for value in samples:
        histogram.observe(value)
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    true_value = ordered[rank - 1]
    estimate = histogram.quantile(q)
    true_bucket = _bucket_of(edges, true_value)
    if true_bucket == len(edges):
        # Overflow: the estimate reports the last finite edge.
        assert estimate == edges[-1]
        return
    lo = 0.0 if true_bucket == 0 else edges[true_bucket - 1]
    hi = edges[true_bucket]
    assert lo <= estimate <= hi


@settings(max_examples=60, deadline=None)
@given(edges=_EDGES, samples=_SAMPLES)
def test_aggregate_of_split_equals_whole(edges, samples):
    """Splitting samples across shards then merging loses nothing."""
    whole = LatencyHistogram(edges)
    left = LatencyHistogram(edges)
    right = LatencyHistogram(edges)
    for index, value in enumerate(samples):
        whole.observe(value)
        (left if index % 2 == 0 else right).observe(value)
    snap_left, snap_right, snap_whole = {}, {}, {}
    left.snapshot_into(snap_left, "service.x")
    right.snapshot_into(snap_right, "service.x")
    whole.snapshot_into(snap_whole, "service.x")
    merged = aggregate_latency_keys([snap_left, snap_right])
    for key, value in snap_whole.items():
        # Shard snapshots round sums to 3 decimals before merging, so
        # the merged sum may differ from the whole's by one rounding ulp.
        assert merged[key] == pytest.approx(value, abs=2e-3), key

"""Integration: dataset persistence and system rebuild round-trip."""

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.loaders import load_dataset, save_dataset


class TestSaveLoadRebuild:
    def test_system_from_reloaded_dataset_answers_identically(
        self, citation_dataset, tmp_path
    ):
        directory = tmp_path / "acmcite"
        save_dataset(citation_dataset, directory)
        reloaded = load_dataset(directory)

        config = OctopusConfig(
            num_sketches=60,
            num_topic_samples=6,
            topic_sample_rr_sets=400,
            oracle_samples=30,
            seed=5,
        )
        original = Octopus.from_dataset(citation_dataset, config=config)
        rebuilt = Octopus.from_dataset(reloaded, config=config)

        a = original.find_influencers("data mining", k=4)
        b = rebuilt.find_influencers("data mining", k=4)
        assert a.seeds == b.seeds
        assert a.spread == pytest.approx(b.spread)

        tree_a = original.explore_paths(a.seeds[0], threshold=0.05)
        tree_b = rebuilt.explore_paths(b.seeds[0], threshold=0.05)
        assert tree_a.parents == tree_b.parents

    def test_reloaded_dataset_supports_learning(self, qq_dataset, tmp_path):
        from repro.topics.em import EMConfig, TICLearner

        directory = tmp_path / "qq"
        save_dataset(qq_dataset, directory)
        reloaded = load_dataset(directory)
        learner = TICLearner(
            reloaded.graph,
            reloaded.vocabulary,
            EMConfig(num_topics=8, max_iterations=3, seed=0),
        )
        result = learner.fit(reloaded.items)
        assert result.iterations >= 1

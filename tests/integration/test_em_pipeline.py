"""Integration: the full §II-B learning pipeline on generated action logs.

Generates a dataset with planted ground truth, fits the TIC model by EM from
the action logs alone, and checks that the learned model supports the same
qualitative queries as the planted one.
"""

import numpy as np
import pytest

from repro.topics.em import EMConfig, TICLearner


@pytest.fixture(scope="module")
def fitted(citation_dataset):
    learner = TICLearner(
        citation_dataset.graph,
        citation_dataset.vocabulary,
        EMConfig(num_topics=8, max_iterations=25, seed=0),
    )
    return learner.fit(citation_dataset.items)


class TestLearnedModel:
    def test_log_likelihood_improves(self, fitted):
        lls = fitted.log_likelihoods
        assert lls[-1] > lls[0]
        for earlier, later in zip(lls, lls[1:]):
            assert later >= earlier - 1e-6

    def test_learned_topics_align_with_planted(self, fitted, citation_dataset):
        """Each planted topic's keywords should concentrate on a single
        learned topic (topics are recovered up to permutation)."""
        model = fitted.topic_model
        vocabulary = citation_dataset.vocabulary
        planted = citation_dataset.true_topic_model.word_given_topic
        matches = 0
        for topic in range(planted.shape[1]):
            top_planted = np.argsort(-planted[:, topic])[:5]
            learned_topics = [
                int(model.word_given_topic[w].argmax()) for w in top_planted
            ]
            # majority of a planted topic's top words map to one learned topic
            counts = np.bincount(learned_topics)
            if counts.max() >= 4:
                matches += 1
        assert matches >= 6  # at least 6 of 8 planted topics recovered

    def test_learned_edge_probabilities_fit_the_data(
        self, fitted, citation_dataset
    ):
        """EM must fit the observable signal.

        With few events per edge the *planted* probabilities are not
        identifiable (the observed activation frequencies themselves
        correlate weakly with the planted envelope — the information
        ceiling), so we assert (a) the learned envelope tracks the observed
        frequencies strongly, and (b) it recovers at least half of the
        ceiling correlation with the planted parameters.
        """
        graph = citation_dataset.graph
        attempts: dict = {}
        successes: dict = {}
        for item in citation_dataset.items:
            for event in item.events:
                edge = graph.edge_id(event.source, event.target)
                attempts[edge] = attempts.get(edge, 0) + 1
                successes[edge] = successes.get(edge, 0) + int(event.activated)
        edges = sorted(attempts)
        assert len(edges) > 100
        frequency = np.array([successes[e] / attempts[e] for e in edges])
        learned = fitted.edge_weights.max_over_topics()[edges]
        planted = citation_dataset.true_edge_weights.max_over_topics()[edges]

        fit_correlation = np.corrcoef(frequency, learned)[0, 1]
        assert fit_correlation > 0.7

        ceiling = np.corrcoef(frequency, planted)[0, 1]
        recovered = np.corrcoef(learned, planted)[0, 1]
        assert recovered > 0.5 * ceiling

    def test_learned_gamma_sane_for_topic_keywords(self, fitted, citation_dataset):
        """Keywords from one planted topic should produce a sharp learned
        posterior (whatever the permutation)."""
        gamma = fitted.topic_model.keyword_topic_posterior(
            ["data mining", "association rules", "clustering"]
        )
        assert gamma.max() > 0.8

"""Cross-component validation: independent estimators must agree.

The library contains four independent ways to compute an influence spread
(forward Monte-Carlo, live-edge world ensembles, RR-set collections, and
the influencer index's sketches) plus one deterministic approximation
(MIA).  On a shared model they must agree within sampling error — a strong
end-to-end consistency check across the propagation, im and core layers.
"""

import numpy as np
import pytest

from repro.core.influencer_index import InfluencerIndex
from repro.im.mia import MIAModel
from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
)
from repro.propagation.worlds import WorldEnsemble


@pytest.fixture(scope="module")
def shared_model(citation_dataset):
    gamma = citation_dataset.true_topic_model.keyword_topic_posterior(
        ["data mining"]
    )
    probabilities = citation_dataset.true_edge_weights.edge_probabilities(gamma)
    return citation_dataset, gamma, probabilities


class TestEstimatorAgreement:
    def test_four_estimators_agree_on_singletons(self, shared_model):
        dataset, gamma, probabilities = shared_model
        graph = dataset.graph
        user = int(np.argmax(graph.out_degree()))

        mc = MonteCarloSpreadEstimator(
            graph, probabilities, num_samples=1200, seed=1
        ).spread([user])
        worlds = WorldEnsemble(graph, 1200, seed=2).estimate_spread(
            [user], probabilities
        )
        ris = RRSetSpreadEstimator(
            graph, probabilities, num_sets=6000, seed=3
        ).spread([user])
        index = InfluencerIndex(
            dataset.true_edge_weights, num_sketches=1200, seed=4
        ).estimate_user_spread(user, gamma)

        reference = mc
        for name, estimate in [
            ("worlds", worlds),
            ("ris", ris),
            ("influencer_index", index),
        ]:
            assert estimate == pytest.approx(reference, rel=0.25, abs=2.0), (
                f"{name} estimate {estimate:.2f} disagrees with MC "
                f"{reference:.2f}"
            )

    def test_estimators_agree_on_seed_sets(self, shared_model):
        dataset, gamma, probabilities = shared_model
        graph = dataset.graph
        seeds = list(np.argsort(-graph.out_degree())[:3])

        mc = MonteCarloSpreadEstimator(
            graph, probabilities, num_samples=1000, seed=5
        ).spread(seeds)
        ris = RRSetSpreadEstimator(
            graph, probabilities, num_sets=6000, seed=6
        ).spread(seeds)
        index = InfluencerIndex(
            dataset.true_edge_weights, num_sketches=1000, seed=7
        ).estimate_seed_set_spread(seeds, gamma)

        assert ris == pytest.approx(mc, rel=0.2, abs=2.0)
        assert index == pytest.approx(mc, rel=0.25, abs=2.5)

    def test_mia_tracks_monte_carlo(self, shared_model):
        """MIA is an approximation, not an estimator, but on sparse graphs
        it should land in the same range and preserve the ranking of a
        strong vs a weak seed."""
        dataset, _gamma, probabilities = shared_model
        graph = dataset.graph
        model = MIAModel(graph, probabilities, threshold=0.005)
        mc = MonteCarloSpreadEstimator(
            graph, probabilities, num_samples=800, seed=8
        )
        strong = int(np.argmax(graph.out_degree()))
        weak = int(np.argmin(graph.out_degree()))
        assert model.spread([strong]) > model.spread([weak])
        assert model.spread([strong]) == pytest.approx(
            mc.spread([strong]), rel=0.4, abs=3.0
        )


class TestTopicConditioningConsistency:
    def test_sharper_topic_match_gives_larger_spread(self, shared_model):
        """A user whose out-edges are strong on topic z should spread more
        under γ concentrated on z than under the antipodal γ — checked
        through the full keyword path (keywords → γ → spread)."""
        dataset, _gamma, _probabilities = shared_model
        model = dataset.true_topic_model
        index = InfluencerIndex(
            dataset.true_edge_weights, num_sketches=800, seed=9
        )
        affinities = dataset.node_affinities
        graph = dataset.graph
        candidates = [
            user
            for user in range(graph.num_nodes)
            if graph.out_degree(user) >= 8
        ]
        assert candidates
        user = max(candidates, key=lambda u: affinities[u].max())
        own_topic = int(np.argmax(affinities[user]))
        other_topic = int(np.argmin(affinities[user]))
        gamma_own = np.zeros(dataset.num_topics)
        gamma_own[own_topic] = 1.0
        gamma_other = np.zeros(dataset.num_topics)
        gamma_other[other_topic] = 1.0
        assert index.estimate_user_spread(
            user, gamma_own
        ) >= index.estimate_user_spread(user, gamma_other)

"""Integration tests reproducing the paper's demo scenarios (Section III).

Each scenario runs end-to-end on the synthetic ACMCite dataset and asserts
the qualitative behaviour the demo describes.
"""

import numpy as np
import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.im.heuristics import pagerank_seeds
from repro.propagation.estimators import MonteCarloSpreadEstimator
from repro.viz.d3 import path_tree_to_d3_force
from repro.viz.radar import radar_chart_data


@pytest.fixture(scope="module")
def system(citation_dataset):
    config = OctopusConfig(
        num_sketches=150,
        num_topic_samples=16,
        topic_sample_rr_sets=1500,
        oracle_samples=60,
        seed=2024,
    )
    return Octopus.from_dataset(citation_dataset, config=config)


class TestScenario1KeywordInfluencerDiscovery:
    """'She just types in keywords "data mining", and a set of influential
    researchers in the area is returned.'"""

    def test_returns_influential_researchers(self, system):
        result = system.find_influencers("data mining", k=5)
        assert len(result.seeds) == 5
        assert all(isinstance(label, str) for label in result.labels)
        assert result.spread > 5  # seeds influence beyond themselves

    def test_topic_specificity(self, system, citation_dataset):
        """Seeds for a topic should be stronger on that topic than the
        seeds returned for an unrelated topic."""
        dm = system.find_influencers("data mining", k=5)
        hci = system.find_influencers("user studies", k=5)
        gamma_dm = system.derive_gamma("data mining")
        probabilities = citation_dataset.true_edge_weights.edge_probabilities(
            gamma_dm
        )
        judge = MonteCarloSpreadEstimator(
            citation_dataset.graph, probabilities, num_samples=400, seed=1
        )
        assert judge.spread(dm.seeds) >= judge.spread(hci.seeds) * 0.9

    def test_diversity_against_individual_ranking(self, system, citation_dataset):
        """IM returns complementary seeds: their joint spread should beat
        the top-k of an individual-influence ranking (PageRank), which
        tends to pick redundant users — the Scenario 1 observation."""
        result = system.find_influencers("data mining", k=5)
        ranked = pagerank_seeds(citation_dataset.graph, 5).seeds
        gamma = system.derive_gamma("data mining")
        probabilities = citation_dataset.true_edge_weights.edge_probabilities(
            gamma
        )
        judge = MonteCarloSpreadEstimator(
            citation_dataset.graph, probabilities, num_samples=500, seed=2
        )
        assert judge.spread(result.seeds) >= 0.95 * judge.spread(ranked)


class TestScenario2KeywordSuggestion:
    """'OCTOPUS will provide a set of keywords extracted from paper titles
    of the researcher ... Moreover, OCTOPUS also provides illustrative
    interpretation of keywords using a radar diagram.'"""

    def _influential_author(self, system):
        return system.find_influencers("data mining", k=1).seeds[0]

    def test_suggests_keywords_from_own_papers(self, system):
        author = self._influential_author(system)
        result = system.suggest_keywords(author, k=3)
        own_words = {
            system.topic_model.vocabulary.word_of(w)
            for w in system.user_keywords[author]
        }
        assert set(result.keywords) <= own_words
        assert 1 <= len(result.keywords) <= 3

    def test_radar_interpretation(self, system):
        payload = radar_chart_data(
            system.topic_model, ["em algorithm"], system.topic_names
        )
        assert payload["dominant"] == "machine learning"
        assert len(payload["values"]) == 8

    def test_autocompletion_assists_name_entry(self, system):
        author = self._influential_author(system)
        name = system.graph.label_of(author)
        completions = system.autocomplete_users(name[: len(name) // 2])
        assert any(node == author for _key, node in completions)

    def test_suggested_keywords_reflect_influence(self, system, citation_dataset):
        """The suggested set should give the author at least the spread of
        a random keyword choice from their vocabulary."""
        author = self._influential_author(system)
        result = system.suggest_keywords(author, k=2)
        own = list(dict.fromkeys(system.user_keywords[author]))
        worst_word = min(
            own,
            key=lambda w: result.per_keyword_spread.get(
                system.topic_model.vocabulary.word_of(w), float("inf")
            ),
        )
        gamma_worst = system.topic_model.keyword_topic_posterior([worst_word])
        worst_spread = system.influencer_index.estimate_user_spread(
            author, gamma_worst
        )
        assert result.spread >= worst_spread - 1e-9


class TestScenario3PathExploration:
    """'OCTOPUS will visualize the influential paths ... the user may find
    the influenced users roughly form some clusters ... when the user
    clicks on any node, OCTOPUS will highlight the paths through it.'"""

    def _influencer(self, system):
        return system.find_influencers("data mining", k=1).seeds[0]

    def test_forward_tree(self, system):
        tree = system.explore_paths(self._influencer(system), threshold=0.02)
        assert tree.size > 1
        assert tree.direction == "influences"

    def test_clusters_exist(self, system):
        tree = system.explore_paths(self._influencer(system), threshold=0.02)
        clusters = tree.clusters()
        assert len(clusters) >= 1
        covered = {node for cluster in clusters for node in cluster}
        assert covered == set(tree.parents) - {tree.root}

    def test_click_highlight(self, system):
        tree = system.explore_paths(self._influencer(system), threshold=0.02)
        children = tree.children()[tree.root]
        assert children
        paths = tree.paths_through(children[0])
        assert all(path[0] == tree.root for path in paths)
        assert all(children[0] in path for path in paths)

    def test_reverse_exploration(self, system):
        """'OCTOPUS also supports the exploration of how a target user is
        influenced.'"""
        influencer = self._influencer(system)
        forward = system.explore_paths(influencer, threshold=0.02)
        some_influenced = next(
            node for node in forward.parents if node != influencer
        )
        reverse = system.explore_paths(
            some_influenced, direction="influenced_by", threshold=0.02
        )
        assert influencer in reverse.parents

    def test_d3_payload_for_ui(self, system):
        tree = system.explore_paths(self._influencer(system), threshold=0.02)
        payload = path_tree_to_d3_force(tree)
        root_nodes = [n for n in payload["nodes"] if n["root"]]
        assert len(root_nodes) == 1
        # the big yellow node: root has the largest size value
        assert root_nodes[0]["size"] == max(n["size"] for n in payload["nodes"])


class TestScenarioQQ:
    """The QQ deployment: 'input keywords "game" to find influential users
    on topic game' and food-related keyword suggestion."""

    @pytest.fixture(scope="class")
    def qq_system(self, qq_dataset):
        config = OctopusConfig(
            num_sketches=150,
            num_topic_samples=12,
            topic_sample_rr_sets=1000,
            oracle_samples=60,
            seed=808,
        )
        return Octopus.from_dataset(qq_dataset, config=config)

    def test_game_influencers(self, qq_system):
        result = qq_system.find_influencers("game", k=5)
        assert len(result.seeds) == 5
        assert result.spread > 0

    def test_food_keyword_suggestion(self, qq_system, qq_dataset):
        """A user whose posts are food-heavy should get food keywords."""
        model = qq_dataset.true_topic_model
        food_topic = qq_dataset.topic_names.index("food")
        candidates = [
            user
            for user, words in qq_dataset.user_keywords.items()
            if len(words) >= 4
            and np.argmax(qq_dataset.node_affinities[user]) == food_topic
            and qq_dataset.graph.out_degree(user) >= 4
        ]
        assert candidates, "dataset should contain food-focused users"
        user = candidates[0]
        result = qq_system.suggest_keywords(user, k=3)
        dominant = model.keyword_topic_posterior(result.keywords).argmax()
        assert qq_dataset.topic_names[dominant] == "food"

"""Property-based tests for the influencer index and RR-set machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.influencer_index import InfluencerIndex
from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights


@st.composite
def indexed_worlds(draw, max_nodes=7):
    num_nodes = draw(st.integers(2, max_nodes))
    possible = [
        (u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=1, max_size=12)
    )
    graph = SocialGraph.from_edges(num_nodes, edges)
    num_topics = draw(st.integers(1, 3))
    raw = draw(
        st.lists(
            st.lists(st.floats(0.0, 1.0), min_size=num_topics, max_size=num_topics),
            min_size=graph.num_edges,
            max_size=graph.num_edges,
        )
    )
    weights = TopicEdgeWeights(graph, np.asarray(raw, dtype=np.float64))
    seed = draw(st.integers(0, 2**16))
    return weights, seed


def _gamma(num_topics: int, hot: int) -> np.ndarray:
    gamma = np.zeros(num_topics)
    gamma[hot % num_topics] = 1.0
    return gamma


@given(indexed_worlds(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_estimates_bounded_by_node_count(case, hot):
    weights, seed = case
    index = InfluencerIndex(weights, num_sketches=40, seed=seed)
    gamma = _gamma(weights.num_topics, hot)
    n = weights.graph.num_nodes
    for user in range(n):
        estimate = index.estimate_user_spread(user, gamma)
        assert 0.0 <= estimate <= n + 1e-9


@given(indexed_worlds(), st.integers(0, 2))
@settings(max_examples=60, deadline=None)
def test_seed_set_estimate_monotone(case, hot):
    weights, seed = case
    index = InfluencerIndex(weights, num_sketches=40, seed=seed)
    gamma = _gamma(weights.num_topics, hot)
    n = weights.graph.num_nodes
    single = index.estimate_seed_set_spread([0], gamma)
    everyone = index.estimate_seed_set_spread(list(range(n)), gamma)
    assert everyone >= single - 1e-9
    # Seeding every node covers every sketch root: exactly n.
    assert everyone == pytest.approx(n)


@given(indexed_worlds(), st.integers(0, 2))
@settings(max_examples=50, deadline=None)
def test_many_gamma_batch_matches_single_queries(case, hot):
    weights, seed = case
    index = InfluencerIndex(weights, num_sketches=30, seed=seed)
    num_topics = weights.num_topics
    gammas = np.stack(
        [_gamma(num_topics, hot), np.full(num_topics, 1.0 / num_topics)]
    )
    for user in range(weights.graph.num_nodes):
        batch = index.estimate_user_spread_many(user, gammas)
        for query_index in range(gammas.shape[0]):
            single = index.estimate_user_spread(user, gammas[query_index])
            assert batch[query_index] == pytest.approx(single)


@given(indexed_worlds())
@settings(max_examples=50, deadline=None)
def test_chunked_equals_eager(case):
    """Delayed materialization must not change any estimate."""
    weights, seed = case
    eager = InfluencerIndex(weights, num_sketches=25, seed=seed)
    lazy = InfluencerIndex(weights, num_sketches=25, chunk_size=1, seed=seed)
    gamma = np.full(weights.num_topics, 1.0 / weights.num_topics)
    for user in range(weights.graph.num_nodes):
        assert lazy.estimate_user_spread(user, gamma) == pytest.approx(
            eager.estimate_user_spread(user, gamma)
        )

"""Property-based tests for LazyGreedyQueue, TopK and the LRU cache."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.cache import LRUCache
from repro.utils.heap import LazyGreedyQueue, TopK


@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.floats(-1e6, 1e6)),
        max_size=50,
    )
)
@settings(max_examples=200, deadline=None)
def test_queue_pops_in_descending_order_of_latest_gain(pushes):
    queue = LazyGreedyQueue()
    latest = {}
    for item, gain in pushes:
        queue.push(item, gain)
        latest[item] = gain
    popped = []
    while len(queue):
        item, gain, _fresh = queue.pop_best()
        assert latest[item] == gain
        popped.append(gain)
    assert popped == sorted(popped, reverse=True)
    assert len(popped) == len(latest)


@given(
    st.integers(1, 10),
    st.lists(st.tuples(st.integers(), st.floats(-1e6, 1e6)), max_size=60),
)
@settings(max_examples=200, deadline=None)
def test_topk_matches_sorted_reference(k, items):
    top = TopK(k)
    for index, (item, score) in enumerate(items):
        top.add((index, item), score)
    expected = heapq.nlargest(
        k, enumerate(items), key=lambda pair: (pair[1][1], -pair[0])
    )
    expected_scores = [score for _i, (_item, score) in expected]
    actual_scores = [score for _item, score in top.items()]
    assert actual_scores == expected_scores


@given(
    st.integers(1, 8),
    st.lists(
        st.tuples(st.integers(0, 15), st.booleans()),  # key, is_put
        max_size=100,
    ),
)
@settings(max_examples=200, deadline=None)
def test_lru_never_exceeds_capacity_and_tracks_reference(capacity, operations):
    cache = LRUCache(capacity)
    reference = {}
    order = []
    for key, is_put in operations:
        if is_put:
            cache.put(key, key * 10)
            reference[key] = key * 10
            if key in order:
                order.remove(key)
            order.append(key)
            while len(order) > capacity:
                evicted = order.pop(0)
                del reference[evicted]
        else:
            value = cache.get(key)
            if key in reference:
                assert value == reference[key]
                order.remove(key)
                order.append(key)
            else:
                assert value is None
        assert len(cache) <= capacity
    for key, value in reference.items():
        assert cache.get(key) == value

"""Property-based tests for the CSR digraph invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import SocialGraph


@st.composite
def edge_lists(draw, max_nodes=12):
    num_nodes = draw(st.integers(min_value=1, max_value=max_nodes))
    possible = [
        (u, v)
        for u in range(num_nodes)
        for v in range(num_nodes)
        if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=len(possible))
        if possible
        else st.just([])
    )
    return num_nodes, edges


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_csr_offsets_are_monotone_and_complete(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    assert graph.out_offsets[0] == 0
    assert graph.out_offsets[-1] == len(edges)
    assert np.all(np.diff(graph.out_offsets) >= 0)
    assert graph.in_offsets[-1] == len(edges)
    assert np.all(np.diff(graph.in_offsets) >= 0)


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_every_input_edge_is_represented_exactly_once(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    listed = [(u, v) for _e, u, v in graph.edges()]
    assert sorted(listed) == sorted(edges)


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_in_adjacency_mirrors_out_adjacency(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    out_pairs = {
        (u, int(v))
        for u in range(num_nodes)
        for v in graph.out_neighbors(u)
    }
    in_pairs = {
        (int(u), v)
        for v in range(num_nodes)
        for u in graph.in_neighbors(v)
    }
    assert out_pairs == in_pairs == set(edges)


@given(edge_lists())
@settings(max_examples=150, deadline=None)
def test_in_edge_ids_round_trip(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    for node in range(num_nodes):
        for source, edge_id in zip(
            graph.in_neighbors(node), graph.in_edge_ids_of(node)
        ):
            assert graph.edge_endpoints(int(edge_id)) == (int(source), node)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_degree_sums_equal_edge_count(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    assert graph.out_degree().sum() == len(edges)
    assert graph.in_degree().sum() == len(edges)


@given(edge_lists())
@settings(max_examples=100, deadline=None)
def test_double_reverse_is_identity(case):
    num_nodes, edges = case
    graph = SocialGraph.from_edges(num_nodes, edges)
    double = graph.reversed().reversed()
    assert sorted((u, v) for _e, u, v in double.edges()) == sorted(edges)

"""Property-based tests of the HTTP wire round-trip.

For every request type, randomized field values must survive the full
serving path losslessly::

    request.to_json() → HTTP POST → dispatch coercion → ServiceResponse
    → from_json

The server here runs a real socket (ephemeral port) but an *echo*
dispatcher: it coerces the wire body exactly like
:class:`~repro.service.OctopusService` does and returns the typed
request's dict form as the payload — so the properties isolate the
transport + envelope layers from (expensive, already-tested) index
compute.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.server import OctopusClient, serve_in_background
from repro.service import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    ServiceResponse,
    StatsRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    request_from_dict,
)
from repro.utils.validation import ValidationError


class _EchoService:
    """Coerces wire requests like the real dispatcher, echoes their dict."""

    def execute(self, request):
        try:
            typed = OctopusService._coerce(request)
        except ValidationError as error:
            return ServiceResponse.failure("echo", "malformed_request", str(error))
        return ServiceResponse.success(typed.service, {"request": typed.to_dict()})

    def execute_batch(self, requests):
        return [self.execute(request) for request in requests]

    def stats(self):
        return {"echo.service": 1.0}


@pytest.fixture(scope="module")
def echo_client():
    """One echo server + client shared by every example of the module."""
    server = serve_in_background(_EchoService(), request_timeout=30.0)
    client = OctopusClient(server.url, timeout=15.0)
    yield client
    client.close()
    server.shutdown_gracefully()


# --- strategies -------------------------------------------------------
# Values are drawn already-canonical (keywords without separators or edge
# whitespace) so request construction is the identity on them; what the
# properties then prove is that the wire changes nothing either.

WORDS = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=8
)
KEYWORDS = st.lists(WORDS, min_size=1, max_size=4).map(tuple)
USERS = st.one_of(st.integers(min_value=0, max_value=10**9), WORDS)

REQUEST_STRATEGIES = {
    "influencers": st.builds(
        FindInfluencersRequest,
        keywords=KEYWORDS,
        k=st.none() | st.integers(min_value=1, max_value=50),
    ),
    "targeted": st.builds(
        TargetedInfluencersRequest,
        keywords=KEYWORDS,
        k=st.none() | st.integers(min_value=1, max_value=50),
        audience_keywords=st.none() | KEYWORDS,
        num_sets=st.integers(min_value=1, max_value=5000),
    ),
    "suggest": st.builds(
        SuggestKeywordsRequest,
        user=USERS,
        k=st.integers(min_value=1, max_value=20),
        method=st.sampled_from(["greedy", "exact"]),
    ),
    "paths": st.builds(
        ExplorePathsRequest,
        user=USERS,
        keywords=st.none() | KEYWORDS,
        threshold=st.none()
        | st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        direction=st.sampled_from(["influences", "influenced_by"]),
        max_nodes=st.none() | st.integers(min_value=1, max_value=1000),
    ),
    "complete": st.builds(
        CompleteRequest,
        prefix=WORDS,
        kind=st.sampled_from(["keywords", "users"]),
        limit=st.integers(min_value=1, max_value=100),
    ),
    "radar": st.builds(RadarRequest, keywords=KEYWORDS),
    "stats": st.just(StatsRequest()),
}


@pytest.mark.parametrize("service_name", sorted(REQUEST_STRATEGIES))
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_every_request_type_round_trips_the_wire(
    service_name, data, echo_client
):
    """to_json → HTTP → dispatch → ServiceResponse → from_json is lossless."""
    request = data.draw(REQUEST_STRATEGIES[service_name])
    response = echo_client.execute(request)
    assert response.ok, response.error
    assert response.service == request.service

    # The dispatcher-side coercion saw exactly the fields we sent ...
    rebuilt = request_from_dict(response.payload["request"])
    assert rebuilt == request
    assert rebuilt.cache_key() == request.cache_key()

    # ... and the response envelope itself re-parses to an equal object.
    assert ServiceResponse.from_json(response.to_json()) == response


@pytest.mark.parametrize("service_name", sorted(REQUEST_STRATEGIES))
@given(data=st.data())
@settings(max_examples=25, deadline=None)
def test_batch_wire_round_trip_preserves_order(service_name, data, echo_client):
    """Batches of randomized requests come back lossless and in order."""
    requests = data.draw(
        st.lists(REQUEST_STRATEGIES[service_name], min_size=1, max_size=5)
    )
    responses = echo_client.execute_batch(requests)
    assert len(responses) == len(requests)
    for request, response in zip(requests, responses):
        assert response.ok
        assert request_from_dict(response.payload["request"]) == request

"""Property-based tests for influence path trees (§II-E)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.paths import InfluencePathExplorer
from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights


@st.composite
def weighted_worlds(draw, max_nodes=8):
    num_nodes = draw(st.integers(2, max_nodes))
    possible = [
        (u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=1, max_size=14)
    )
    graph = SocialGraph.from_edges(num_nodes, edges)
    raw = draw(
        st.lists(
            st.floats(0.05, 1.0),
            min_size=graph.num_edges,
            max_size=graph.num_edges,
        )
    )
    weights = TopicEdgeWeights(
        graph, np.asarray(raw, dtype=np.float64)[:, None]
    )
    root = draw(st.integers(0, num_nodes - 1))
    threshold = draw(st.sampled_from([0.0, 0.01, 0.1, 0.5]))
    return weights, root, threshold


@given(weighted_worlds())
@settings(max_examples=120, deadline=None)
def test_tree_is_well_formed(case):
    weights, root, threshold = case
    explorer = InfluencePathExplorer(weights)
    tree = explorer.explore(root, threshold=threshold)
    # Root present, parents point inside the tree, probabilities in (0, 1].
    assert tree.root in tree.parents
    assert tree.parents[root] == root
    for node, parent in tree.parents.items():
        assert parent in tree.parents
        assert 0.0 < tree.probabilities[node] <= 1.0 + 1e-12
        if node != root:
            assert tree.probabilities[node] >= threshold - 1e-12


@given(weighted_worlds())
@settings(max_examples=120, deadline=None)
def test_path_probability_is_product_along_path(case):
    weights, root, threshold = case
    explorer = InfluencePathExplorer(weights)
    tree = explorer.explore(root, threshold=threshold)
    probabilities = weights.edge_probabilities(np.array([1.0]))
    graph = weights.graph
    for node in tree.parents:
        path = tree.path_to(node)
        product = 1.0
        for source, target in zip(path, path[1:]):
            product *= probabilities[graph.edge_id(source, target)]
        assert tree.probabilities[node] == pytest.approx(product, rel=1e-9)


@given(weighted_worlds())
@settings(max_examples=100, deadline=None)
def test_parent_probability_dominates_child(case):
    """Along any root-to-node path the probability is non-increasing."""
    weights, root, threshold = case
    tree = InfluencePathExplorer(weights).explore(root, threshold=threshold)
    for node, parent in tree.parents.items():
        if node == root:
            continue
        assert tree.probabilities[parent] >= tree.probabilities[node] - 1e-12


@given(weighted_worlds())
@settings(max_examples=100, deadline=None)
def test_threshold_monotone_in_tree_size(case):
    weights, root, _threshold = case
    explorer = InfluencePathExplorer(weights)
    loose = explorer.explore(root, threshold=0.01)
    tight = explorer.explore(root, threshold=0.3)
    assert set(tight.parents) <= set(loose.parents)


@given(weighted_worlds())
@settings(max_examples=100, deadline=None)
def test_clusters_partition_non_root_nodes(case):
    weights, root, threshold = case
    tree = InfluencePathExplorer(weights).explore(root, threshold=threshold)
    clusters = tree.clusters()
    seen = set()
    for cluster in clusters:
        for node in cluster:
            assert node not in seen
            seen.add(node)
    assert seen == set(tree.parents) - {root}


@given(weighted_worlds())
@settings(max_examples=80, deadline=None)
def test_subtree_sizes_sum_correctly(case):
    weights, root, threshold = case
    tree = InfluencePathExplorer(weights).explore(root, threshold=threshold)
    children = tree.children()
    for node in tree.parents:
        assert tree.subtree_size(node) == 1 + sum(
            tree.subtree_size(child) for child in children[node]
        )
    assert tree.subtree_size(root) == tree.size

"""Property-based tests on influence-spread invariants.

These run on small random graphs where the invariants (monotonicity,
bounds soundness, estimator agreement) can be checked against brute force.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import walk_sum_bounds
from repro.graph.digraph import SocialGraph
from repro.im.mia import MIAModel
from repro.propagation.worlds import WorldEnsemble


@st.composite
def weighted_graphs(draw, max_nodes=7):
    num_nodes = draw(st.integers(2, max_nodes))
    possible = [
        (u, v) for u in range(num_nodes) for v in range(num_nodes) if u != v
    ]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, min_size=1, max_size=12)
    )
    probabilities = draw(
        st.lists(
            st.floats(0.0, 1.0),
            min_size=len(edges),
            max_size=len(edges),
        )
    )
    graph = SocialGraph.from_edges(num_nodes, edges)
    # Edge order in CSR differs from input order; rebuild by edge id.
    prob_map = {}
    for (u, v), p in zip(edges, probabilities):
        prob_map[(u, v)] = p
    ordered = np.array(
        [prob_map[(u, v)] for _e, u, v in graph.edges()], dtype=np.float64
    )
    return graph, ordered


def exact_spread(graph: SocialGraph, probabilities: np.ndarray, seeds) -> float:
    """Brute-force expected spread by enumerating all live-edge worlds."""
    m = graph.num_edges
    edges = list(graph.edges())
    total = 0.0
    for mask in range(2**m):
        world_probability = 1.0
        adjacency = {}
        for bit, (edge_id, u, v) in enumerate(edges):
            p = probabilities[edge_id]
            if mask >> bit & 1:
                world_probability *= p
                adjacency.setdefault(u, []).append(v)
            else:
                world_probability *= 1.0 - p
        if world_probability == 0.0:
            continue
        reached = set(seeds)
        stack = list(seeds)
        while stack:
            node = stack.pop()
            for neighbor in adjacency.get(node, ()):
                if neighbor not in reached:
                    reached.add(neighbor)
                    stack.append(neighbor)
        total += world_probability * len(reached)
    return total


@given(weighted_graphs())
@settings(max_examples=40, deadline=None)
def test_walk_sum_upper_bounds_exact_spread(case):
    graph, probabilities = case
    bounds = walk_sum_bounds(graph, probabilities)
    for node in range(graph.num_nodes):
        truth = exact_spread(graph, probabilities, [node])
        assert bounds[node] >= truth - 1e-9


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_world_ensemble_estimator_is_consistent(case):
    graph, probabilities = case
    truth = exact_spread(graph, probabilities, [0])
    ensemble = WorldEnsemble(graph, 3000, seed=0)
    estimate = ensemble.estimate_spread([0], probabilities)
    # 3000 worlds on ≤7 nodes: generous 3-sigma-ish tolerance.
    assert estimate == pytest.approx(truth, abs=0.35)


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_exact_spread_monotone_in_seeds(case):
    graph, probabilities = case
    single = exact_spread(graph, probabilities, [0])
    double = exact_spread(graph, probabilities, [0, graph.num_nodes - 1])
    assert double >= single - 1e-12


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_exact_spread_submodular_in_seeds(case):
    """σ(S∪{x}) − σ(S) ≥ σ(T∪{x}) − σ(T) for S ⊆ T (IC is submodular)."""
    graph, probabilities = case
    if graph.num_nodes < 3:
        return
    x = graph.num_nodes - 1
    small = [0]
    large = [0, 1]
    if x in large:
        return
    gain_small = exact_spread(graph, probabilities, small + [x]) - exact_spread(
        graph, probabilities, small
    )
    gain_large = exact_spread(graph, probabilities, large + [x]) - exact_spread(
        graph, probabilities, large
    )
    assert gain_small >= gain_large - 1e-9


@given(weighted_graphs())
@settings(max_examples=30, deadline=None)
def test_mia_spread_never_exceeds_node_count(case):
    graph, probabilities = case
    model = MIAModel(graph, probabilities, threshold=0.0)
    spread = model.spread([0])
    assert 1.0 - 1e-9 <= spread <= graph.num_nodes + 1e-9

"""Property-based tests for the auto-completion trie and the vocabulary."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.trie import Trie
from repro.topics.vocabulary import Vocabulary

keys = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
    min_size=1,
    max_size=10,
)


@given(st.lists(st.tuples(keys, st.floats(0, 100)), max_size=40), st.data())
@settings(max_examples=150, deadline=None)
def test_complete_returns_exactly_prefix_matches(entries, data):
    trie = Trie()
    for key, weight in entries:
        trie.insert(key, weight=weight)
    prefix = data.draw(keys | st.just(""))
    results = trie.complete(prefix.strip().lower(), limit=1000)
    expected = [
        key.strip()
        for key, _w in entries
        if key.strip().lower().startswith(prefix.strip().lower())
    ]
    assert sorted(key for key, _p in results) == sorted(expected)


@given(st.lists(st.tuples(keys, st.floats(0, 100)), max_size=40))
@settings(max_examples=150, deadline=None)
def test_completions_sorted_by_weight(entries):
    trie = Trie()
    for key, weight in entries:
        trie.insert(key, payload=weight, weight=weight)
    weights = [payload for _key, payload in trie.complete("", limit=1000)]
    assert all(a >= b for a, b in zip(weights, weights[1:]))
    assert len(weights) == len(entries)


@given(st.lists(keys, min_size=1, max_size=30))
@settings(max_examples=200, deadline=None)
def test_vocabulary_round_trip(words):
    vocab = Vocabulary()
    ids = [vocab.add(word) for word in words]
    for word, word_id in zip(words, ids):
        assert vocab.id_of(word) == word_id
        assert vocab.word_of(word_id) == Vocabulary.normalize(word)
    assert len(vocab) == len({Vocabulary.normalize(w) for w in words})


@given(st.lists(keys, min_size=1, max_size=30))
@settings(max_examples=150, deadline=None)
def test_vocabulary_counts_sum_to_additions(words):
    vocab = Vocabulary()
    for word in words:
        vocab.add(word)
    assert sum(vocab.counts()) == len(words)

"""Property-based tests for the topic model and keyword posterior."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.topics.model import TopicModel
from repro.topics.priors import normalize_distribution
from repro.topics.vocabulary import Vocabulary


@st.composite
def topic_models(draw, max_words=8, max_topics=5):
    num_words = draw(st.integers(2, max_words))
    num_topics = draw(st.integers(2, max_topics))
    raw = draw(
        hnp.arrays(
            dtype=np.float64,
            shape=(num_words, num_topics),
            elements=st.floats(0.01, 10.0),
        )
    )
    matrix = raw / raw.sum(axis=0, keepdims=True)
    vocab = Vocabulary([f"word{i}" for i in range(num_words)])
    return TopicModel(vocab, matrix)


@given(topic_models(), st.data())
@settings(max_examples=150, deadline=None)
def test_posterior_is_on_simplex(model, data):
    words = data.draw(
        st.lists(
            st.integers(0, len(model.vocabulary) - 1), min_size=1, max_size=6
        )
    )
    gamma = model.keyword_topic_posterior(words)
    assert gamma.shape == (model.num_topics,)
    assert np.all(gamma >= 0)
    assert gamma.sum() == pytest.approx(1.0)


@given(topic_models(), st.data())
@settings(max_examples=150, deadline=None)
def test_posterior_invariant_to_keyword_order(model, data):
    words = data.draw(
        st.lists(
            st.integers(0, len(model.vocabulary) - 1), min_size=2, max_size=6
        )
    )
    forward = model.keyword_topic_posterior(words)
    backward = model.keyword_topic_posterior(list(reversed(words)))
    np.testing.assert_allclose(forward, backward, atol=1e-12)


@given(topic_models(), st.data())
@settings(max_examples=100, deadline=None)
def test_repeating_a_keyword_sharpens_its_dominant_topic(model, data):
    word = data.draw(st.integers(0, len(model.vocabulary) - 1))
    single = model.keyword_topic_posterior([word])
    triple = model.keyword_topic_posterior([word, word, word])
    dominant = int(single.argmax())
    assert triple[dominant] >= single[dominant] - 1e-12


@given(topic_models())
@settings(max_examples=100, deadline=None)
def test_top_words_sorted_descending(model):
    for topic in range(model.num_topics):
        top = model.top_words(topic, k=len(model.vocabulary))
        probabilities = [p for _w, p in top]
        assert probabilities == sorted(probabilities, reverse=True)


@given(
    hnp.arrays(
        dtype=np.float64, shape=st.integers(1, 10), elements=st.floats(0, 100)
    )
)
@settings(max_examples=200, deadline=None)
def test_normalize_distribution_always_simplex(weights):
    gamma = normalize_distribution(weights)
    assert gamma.sum() == pytest.approx(1.0)
    assert np.all(gamma >= 0)

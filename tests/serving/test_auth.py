"""Shared-secret auth on the wire: ``Authorization: Bearer <token>``.

With ``auth_token`` set on the server, every endpoint except ``/healthz``
(liveness probes must not need secrets) demands the bearer token and
rejects everything else with a **structured 401 envelope** — parseable
like every other body, so clients and load balancers never scrape an HTML
error page.  Without the option, behaviour is untouched.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.service import CompleteRequest, OctopusService

TOKEN = "repro-secret-token"


@pytest.fixture
def auth_server(backend, running_server):
    """A server requiring the bearer token (context-managed)."""
    import contextlib

    @contextlib.contextmanager
    def boot():
        with running_server(OctopusService(backend), auth_token=TOKEN) as server:
            yield server

    return boot


class TestServerSideAuth:
    def test_missing_token_is_a_structured_401(self, auth_server):
        with auth_server() as server:
            body = CompleteRequest(prefix="da").to_json().encode()
            request = urllib.request.Request(
                f"{server.url}/query",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10.0)
            assert caught.value.code == 401
            envelope = json.loads(caught.value.read().decode())
            assert envelope["ok"] is False
            assert envelope["error"]["code"] == "unauthorized"

    def test_wrong_token_is_rejected(self, auth_server, connected_client):
        with auth_server() as server:
            with connected_client(server, auth_token="not-the-token") as client:
                response = client.execute(CompleteRequest(prefix="da"))
            assert not response.ok
            assert response.error.code == "unauthorized"

    def test_non_ascii_token_is_a_401_not_a_crash(self, auth_server):
        """compare_digest rejects non-ASCII str; the server must compare
        bytes so a garbage header still gets the structured envelope."""
        with auth_server() as server:
            request = urllib.request.Request(
                f"{server.url}/stats",
                headers={"Authorization": "Bearer café-token"},
            )
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(request, timeout=10.0)
            assert caught.value.code == 401
            envelope = json.loads(caught.value.read().decode())
            assert envelope["error"]["code"] == "unauthorized"

    def test_stats_is_protected_but_healthz_is_open(self, auth_server):
        with auth_server() as server:
            with pytest.raises(urllib.error.HTTPError) as caught:
                urllib.request.urlopen(f"{server.url}/stats", timeout=10.0)
            assert caught.value.code == 401
            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=10.0
            ) as reply:
                assert json.loads(reply.read().decode())["status"] == "ok"


class TestClientSideAuth:
    def test_client_with_token_round_trips(self, auth_server, connected_client):
        with auth_server() as server:
            with connected_client(server, auth_token=TOKEN) as client:
                response = client.execute(CompleteRequest(prefix="da", limit=3))
                assert response.ok
                batch = client.execute_batch(
                    [CompleteRequest(prefix="da"), CompleteRequest(prefix="cl")]
                )
                assert all(entry.ok for entry in batch)
                stats = client.stats()
            assert stats["http.responses.2xx"] >= 2.0
            assert stats["executor.kind"] == "serial"

    def test_cli_query_url_with_token(self, auth_server, capsys):
        from repro.cli import main

        with auth_server() as server:
            code = main(
                [
                    "query",
                    "--url",
                    server.url,
                    "--auth-token",
                    TOKEN,
                    CompleteRequest(prefix="da").to_json(),
                ]
            )
            output = capsys.readouterr().out
        assert code == 0
        assert json.loads(output)["ok"] is True

    def test_cli_query_url_without_token_reports_the_envelope(
        self, auth_server, capsys
    ):
        from repro.cli import main

        with auth_server() as server:
            code = main(
                [
                    "query",
                    "--url",
                    server.url,
                    CompleteRequest(prefix="da").to_json(),
                ]
            )
            output = capsys.readouterr().out
        assert code == 2
        assert json.loads(output)["error"]["code"] == "unauthorized"

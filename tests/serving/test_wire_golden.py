"""Golden replay: the determinism contract extended across the socket.

The contract so far (PR 2/3): a fixed seed produces identical results on
any execution backend at any worker count.  This module extends it one
layer out — identical **response payloads** no matter how a request
travels: executed in process, served by a threaded HTTP server, or served
by a process-executor HTTP server; driven by the library client or by
``octopus query --url``.  Comparisons are on
:func:`~repro.service.responses.deterministic_form` — canonical JSON of
the envelope minus wall-clock measurement fields — and must match **byte
for byte**.
"""

import json

import pytest

from repro.cli import main
from repro.server import OctopusClient, serve_in_background
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    ExplorePathsRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    deterministic_form,
)

WIRE_TIMEOUT = 15.0

#: The recorded workload: every deterministic service, duplicates included
#: (duplicates exercise cache/de-duplication paths, which must not change
#: payload bytes).  StatsRequest is excluded by design — its payload is
#: live counters, the one service the determinism contract does not cover.
GOLDEN_WORKLOAD = [
    CompleteRequest(prefix="da", limit=5),
    FindInfluencersRequest("data mining", k=3),
    RadarRequest("data mining"),
    SuggestKeywordsRequest(user=0, k=2),
    ExplorePathsRequest(user=0, threshold=0.02),
    FindInfluencersRequest("data mining", k=3),  # duplicate of slot 1
    TargetedInfluencersRequest("data mining", k=2, num_sets=150),
    CompleteRequest(prefix="da", limit=5),  # duplicate of slot 0
]


def golden_forms(responses):
    """The byte-comparable deterministic forms of a response list."""
    return [deterministic_form(response) for response in responses]


@pytest.fixture(scope="module")
def in_process_forms(backend):
    """The reference: the workload executed directly on a local service."""
    service = OctopusService(backend)
    return golden_forms([service.execute(r) for r in GOLDEN_WORKLOAD])


class TestThreeWayDeterminism:
    """Same seed + same workload ⇒ identical payloads on all three paths."""

    def test_threaded_server_matches_in_process(self, backend, in_process_forms):
        executor = ConcurrentOctopusService(
            OctopusService(backend), workers=4, mode="threads"
        )
        server = serve_in_background(executor, request_timeout=5.0)
        try:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                served = client.execute_batch(GOLDEN_WORKLOAD)
        finally:
            server.shutdown_gracefully()
        assert golden_forms(served) == in_process_forms

    def test_process_executor_server_matches_in_process(
        self, backend, in_process_forms
    ):
        executor = ConcurrentOctopusService(
            OctopusService(backend), workers=2, mode="processes"
        )
        server = serve_in_background(executor, request_timeout=5.0)
        try:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                served = client.execute_batch(GOLDEN_WORKLOAD)
        finally:
            server.shutdown_gracefully()
        assert golden_forms(served) == in_process_forms

    def test_single_requests_match_batched_requests(self, backend, in_process_forms):
        """/query and /batch serve the same bytes for the same request."""
        server = serve_in_background(OctopusService(backend), request_timeout=5.0)
        try:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                one_by_one = [client.execute(r) for r in GOLDEN_WORKLOAD]
        finally:
            server.shutdown_gracefully()
        assert golden_forms(one_by_one) == in_process_forms

    def test_wire_responses_survive_json_round_trip(self, backend):
        """What the client parsed re-encodes to the exact server bytes."""
        from repro.service import ServiceResponse

        server = serve_in_background(OctopusService(backend), request_timeout=5.0)
        try:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                response = client.execute(CompleteRequest(prefix="da"))
        finally:
            server.shutdown_gracefully()
        assert ServiceResponse.from_json(response.to_json()) == response


class TestCLIGoldenReplay:
    """The acceptance path: a workload file through ``octopus query --url``
    against a served dataset returns payloads byte-identical to local
    in-process execution with the same seed."""

    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("golden") / "dataset"
        assert (
            main(
                [
                    "generate",
                    "--kind",
                    "citation",
                    "--out",
                    str(directory),
                    "--size",
                    "120",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        return str(directory)

    @pytest.fixture(scope="class")
    def workload_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("golden") / "workload.json"
        path.write_text(
            json.dumps([request.to_dict() for request in GOLDEN_WORKLOAD])
        )
        return str(path)

    @pytest.fixture(scope="class")
    def local_replay(self, dataset_dir, workload_file):
        """The local CLI's output for the recorded workload (the golden)."""
        import contextlib
        import io

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(
                ["query", dataset_dir, f"@{workload_file}", "--batch", "--fast"]
            )
        assert code == 0
        return json.loads(stdout.getvalue())

    @pytest.mark.parametrize(
        "executor", ["serial", "threads", "processes", "cluster"]
    )
    def test_remote_replay_is_byte_identical(
        self, dataset_dir, workload_file, local_replay, executor, capsys
    ):
        """Replay over the wire against every server executor flavour."""
        import argparse

        from repro.cli import _load_service

        # Build the served system exactly the way `octopus serve` does,
        # from the same dataset directory with the same seed and budgets.
        arguments = argparse.Namespace(
            dataset=dataset_dir,
            seed=0,
            fast=True,
            backend="serial",
            workers=2 if executor != "serial" else None,
            rr_kernel="vectorized",
        )
        service = _load_service(arguments)
        if executor == "cluster":
            from repro.cluster import ClusterCoordinator

            service = ClusterCoordinator(service, shards=2)
        elif executor != "serial":
            service = ConcurrentOctopusService(
                service, workers=2, mode=executor
            )
        server = serve_in_background(service, request_timeout=5.0)
        try:
            capsys.readouterr()  # drop anything buffered before the replay
            code = main(
                [
                    "query",
                    "--url",
                    server.url,
                    f"@{workload_file}",
                    "--batch",
                    "--timeout",
                    str(WIRE_TIMEOUT),
                ]
            )
            remote_replay = json.loads(capsys.readouterr().out)
        finally:
            server.shutdown_gracefully()
        assert code == 0
        from repro.service import ServiceResponse

        local = golden_forms(
            ServiceResponse.from_dict(entry) for entry in local_replay
        )
        remote = golden_forms(
            ServiceResponse.from_dict(entry) for entry in remote_replay
        )
        assert remote == local

    def test_single_query_cli_matches_local(
        self, dataset_dir, local_replay, capsys
    ):
        """A single (non-batch) query --url also reproduces local bytes."""
        from repro.service import ServiceResponse

        request_json = GOLDEN_WORKLOAD[1].to_json()
        import argparse

        from repro.cli import _load_service

        arguments = argparse.Namespace(
            dataset=dataset_dir,
            seed=0,
            fast=True,
            backend="serial",
            workers=None,
            rr_kernel="vectorized",
        )
        server_service = _load_service(arguments)
        server = serve_in_background(server_service, request_timeout=5.0)
        try:
            capsys.readouterr()
            code = main(["query", "--url", server.url, request_json])
            remote = ServiceResponse.from_json(capsys.readouterr().out)
        finally:
            server.shutdown_gracefully()
        assert code == 0
        local = ServiceResponse.from_dict(local_replay[1])
        assert deterministic_form(remote) == deterministic_form(local)

"""Regression tests: a closed client must never mint new sockets.

The bug: ``OctopusClient._connection()`` never checked ``self.closed``.
``execute()`` after ``close()`` from the *same* thread was caught by the
transport guard in ``_exchange``, but a **second thread** (whose
thread-local had no connection yet) reached ``_connection()`` directly and
silently created a fresh socket, appending it to the post-close
``_connections`` list — where nothing would ever reclaim it, since
``close()`` had already swept that list.
"""

from __future__ import annotations

import threading

import pytest

from repro.server import OctopusClient, OctopusTransportError
from repro.service import CompleteRequest, OctopusService


def _run_in_thread(target):
    """Run *target* on a fresh thread (fresh thread-local state) and
    return its result or re-raise its exception."""
    box = {}

    def runner():
        try:
            box["value"] = target()
        except BaseException as error:  # noqa: BLE001 — re-raised below
            box["error"] = error

    thread = threading.Thread(target=runner)
    thread.start()
    thread.join(timeout=10.0)
    assert not thread.is_alive(), "worker thread hung"
    if "error" in box:
        raise box["error"]
    return box.get("value")


class TestClosedClient:
    def test_connection_raises_runtime_error_after_close(
        self, backend, running_server
    ):
        with running_server(OctopusService(backend)) as server:
            client = OctopusClient(server.url)
            client.close()
            with pytest.raises(RuntimeError, match="client is closed"):
                client._connection()
            assert client._connections == []

    def test_execute_from_second_thread_leaks_no_socket(
        self, backend, running_server
    ):
        with running_server(OctopusService(backend)) as server:
            client = OctopusClient(server.url)
            assert client.execute(CompleteRequest(prefix="da")).ok
            client.close()
            assert client._connections == []

            def post_close_execute():
                client.execute(CompleteRequest(prefix="da"))

            with pytest.raises((OctopusTransportError, RuntimeError)):
                _run_in_thread(post_close_execute)
            # The regression: the second thread's fresh thread-local used
            # to mint a new connection into the swept pool.
            assert client._connections == []

    def test_connection_from_second_thread_raises_and_leaks_nothing(
        self, backend, running_server
    ):
        """The internal guard itself, exercised where the bug lived: a
        thread whose thread-local has no connection yet."""
        with running_server(OctopusService(backend)) as server:
            client = OctopusClient(server.url)
            client.close()
            with pytest.raises(RuntimeError, match="client is closed"):
                _run_in_thread(client._connection)
            assert client._connections == []

    def test_close_is_idempotent_and_still_guards(
        self, backend, running_server
    ):
        with running_server(OctopusService(backend)) as server:
            client = OctopusClient(server.url)
            client.close()
            client.close()
            with pytest.raises(RuntimeError, match="client is closed"):
                client._connection()

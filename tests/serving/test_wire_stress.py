"""Multi-client concurrency stress against one HTTP server.

N client threads × M mixed requests each — valid, repeated, malformed and
validation-failing — hammering one server over persistent connections.
The serving invariants under fire:

* **no 5xx**: client mistakes are 4xx, good requests are 200 — the server
  never breaks;
* **counter consistency**: every exchange lands in exactly one counter
  bucket, ``cache.hits + cache.misses`` equals the cacheable requests that
  reached the cache, per-service request/error totals add up exactly;
* **in-flight de-duplication observable over the wire**: simultaneous
  identical requests against a concurrent-executor server share one
  computation.
"""

import threading

from repro.server import OctopusClient
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    OctopusService,
    RadarRequest,
    StatsRequest,
)

WIRE_TIMEOUT = 20.0
NUM_THREADS = 8
#: Per-thread script: (json body, kind) where kind tallies expectations.
#: 15 requests per thread: 10 valid cacheable, 1 valid uncacheable (stats),
#: 2 malformed (never reach the service), 2 invalid (fail validation).
REQUESTS_PER_THREAD = 15


def _thread_script(thread_index: int):
    """The request mix one client thread sends, with expectation tags."""
    script = []
    for _ in range(5):  # identical across all threads → cache/dedup food
        script.append((CompleteRequest(prefix="da", limit=5).to_json(), "cacheable"))
    for repeat in range(3):  # distinct per thread → guaranteed misses
        script.append(
            (
                CompleteRequest(
                    prefix=f"t{thread_index}r{repeat}", limit=5
                ).to_json(),
                "cacheable",
            )
        )
    for _ in range(2):
        script.append((RadarRequest("data mining").to_json(), "cacheable"))
    for _ in range(2):  # unknown service: malformed, never enters the stack
        script.append(('{"service": "teleport"}', "malformed"))
    for _ in range(2):  # bad limit: rejected by validation inside the stack
        script.append(
            ('{"service": "complete", "prefix": "da", "limit": 0}', "invalid")
        )
    script.append((StatsRequest().to_json(), "uncacheable"))
    assert len(script) == REQUESTS_PER_THREAD
    return script


class TestStress:
    def test_mixed_fire_no_5xx_and_exact_counters(self, backend, running_server):
        service = OctopusService(backend)
        statuses = []
        failures = []
        lock = threading.Lock()

        with running_server(service) as server:
            client = OctopusClient(server.url, timeout=WIRE_TIMEOUT)

            def hammer(thread_index: int) -> None:
                try:
                    for body, _kind in _thread_script(thread_index):
                        status, payload = client._request("POST", "/query", body)
                        with lock:
                            statuses.append((status, payload["ok"]))
                except Exception as error:  # noqa: BLE001 — collect, don't die
                    with lock:
                        failures.append(error)

            threads = [
                threading.Thread(target=hammer, args=(index,))
                for index in range(NUM_THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=WIRE_TIMEOUT * 4)
            assert not any(thread.is_alive() for thread in threads)
            client.close()
            final = server.shutdown_gracefully()

        assert not failures
        total = NUM_THREADS * REQUESTS_PER_THREAD
        assert len(statuses) == total

        # --- no 5xx, and status agrees with the envelope ---------------
        assert all(status < 500 for status, _ok in statuses)
        assert all((status == 200) == ok for status, ok in statuses)
        per_thread_4xx = 4  # 2 malformed + 2 invalid
        assert sum(status != 200 for status, _ok in statuses) == (
            NUM_THREADS * per_thread_4xx
        )

        # --- HTTP counters: every exchange in exactly one bucket -------
        assert final["http.requests"] == float(total)
        assert final["http.path.query"] == float(total)
        assert final.get("http.responses.5xx", 0.0) == 0.0
        assert final["http.responses.4xx"] == float(NUM_THREADS * per_thread_4xx)
        assert final["http.responses.2xx"] == float(
            total - NUM_THREADS * per_thread_4xx
        )

        # --- cache counters: hits + misses == cacheable lookups --------
        # Malformed requests never reach the service; invalid ones are
        # rejected by validation above the cache; stats is uncacheable.
        # Everything else does exactly one cache lookup.
        cacheable = NUM_THREADS * 10
        assert final["cache.hits"] + final["cache.misses"] == float(cacheable)
        # Distinct cacheable queries: 1 shared complete + 3 per-thread
        # completes + 1 shared radar — at most one miss each (threads may
        # race a popular key, so misses can exceed the distinct count by
        # at most the races; hits fill the rest exactly).
        distinct = 1 + 3 * NUM_THREADS + 1
        assert final["cache.misses"] >= float(distinct)
        assert final["cache.misses"] <= float(distinct + 2 * NUM_THREADS)

        # --- service metrics: request/error totals add up exactly ------
        assert final["service.complete.requests"] == float(
            NUM_THREADS * (5 + 3 + 2)  # valid completes + invalid-limit ones
        )
        assert final["service.complete.errors"] == float(NUM_THREADS * 2)
        assert final["service.radar.requests"] == float(NUM_THREADS * 2)
        assert final["service.radar.errors"] == 0.0
        assert final["service.stats.requests"] == float(NUM_THREADS)
        assert "service.teleport.requests" not in final  # never dispatched

    def test_inflight_deduplication_observable_over_the_wire(
        self, backend, running_server
    ):
        """Simultaneous identical HTTP requests share one computation."""
        service = OctopusService(backend)
        calls = []
        entered = threading.Event()
        release = threading.Event()
        original = service._handlers["complete"]

        def slow(request):
            calls.append(request)
            entered.set()
            assert release.wait(timeout=WIRE_TIMEOUT)
            return original(request)

        service._handlers["complete"] = slow
        executor = ConcurrentOctopusService(service, workers=4)
        try:
            with running_server(executor) as server:
                client = OctopusClient(server.url, timeout=WIRE_TIMEOUT)
                body = CompleteRequest(prefix="da", limit=5).to_json()
                results = []
                lock = threading.Lock()

                def fire() -> None:
                    status, payload = client._request("POST", "/query", body)
                    with lock:
                        results.append((status, payload))

                threads = [threading.Thread(target=fire) for _ in range(5)]
                threads[0].start()
                assert entered.wait(timeout=WIRE_TIMEOUT)  # leader computing
                for thread in threads[1:]:
                    thread.start()
                # Followers must be *in flight* before the leader finishes
                # for de-duplication to be observable: wait until the
                # executor has registered followers attached to the
                # leader's computation, then release it.
                import time

                deadline = time.monotonic() + WIRE_TIMEOUT
                while time.monotonic() < deadline:
                    if executor.stats()["executor.shared_inflight"] >= 4.0:
                        break
                    time.sleep(0.02)
                release.set()
                for thread in threads:
                    thread.join(timeout=WIRE_TIMEOUT)
                assert not any(thread.is_alive() for thread in threads)
                stats = executor.stats()
                client.close()
        finally:
            service._handlers["complete"] = original
            release.set()
            executor.close()

        assert len(results) == 5
        assert all(status == 200 for status, _payload in results)
        payloads = [payload["payload"] for _status, payload in results]
        assert all(payload == payloads[0] for payload in payloads)
        # One computation; every other response shared it in flight or hit
        # the shared cache after the leader landed.
        assert len(calls) == 1
        assert stats["executor.shared_inflight"] >= 1.0
        hits = sum(payload["cache_hit"] for _status, payload in results)
        assert hits == 4

"""Fixtures of the end-to-end serving test harness.

Everything here runs real sockets: ``running_server`` boots an
:class:`~repro.server.OctopusHTTPServer` on an **ephemeral port** (port 0,
so parallel test runs never collide) with a short ``request_timeout``, and
guarantees a graceful drain on the way out.  Every wait in this package is
bounded — client timeouts, gate timeouts, join timeouts — so a hung socket
fails a test instead of hanging the suite.
"""

from __future__ import annotations

import contextlib

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.server import OctopusClient, serve_in_background

#: Every wire wait in this package is bounded by this (seconds).
WIRE_TIMEOUT = 15.0


@pytest.fixture(scope="package")
def backend(citation_dataset):
    """One small Octopus backend shared by the whole serving package."""
    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=30,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        ),
    )


@contextlib.contextmanager
def _running_server(service, **server_kwargs):
    """Boot a server on an ephemeral port; always drain it afterwards."""
    server_kwargs.setdefault("request_timeout", 5.0)
    server = serve_in_background(service, **server_kwargs)
    try:
        yield server
    finally:
        server.shutdown_gracefully()


@pytest.fixture
def running_server():
    """The server-booting context manager (see :func:`_running_server`)."""
    return _running_server


@contextlib.contextmanager
def _connected_client(server, **client_kwargs):
    """An :class:`OctopusClient` for *server*, closed on exit."""
    client_kwargs.setdefault("timeout", WIRE_TIMEOUT)
    client = OctopusClient(server.url, **client_kwargs)
    try:
        yield client
    finally:
        client.close()


@pytest.fixture
def connected_client():
    """The client-connecting context manager (see :func:`_connected_client`)."""
    return _connected_client

"""Retry-After propagation: delta-seconds always round *up*, never down.

The bug class this pins: the limiter reports fractional deficits (e.g.
2.3 s), and a front end that truncates (``int(2.3)`` → ``"2"``) tells a
well-behaved client it may retry a second early — a guaranteed second
429 that burns one of its retry attempts.  Both front ends now derive
the header from :func:`repro.server.wire.retry_after_header_value`, and
the threaded server (which used to send *no* header at all on 429)
attaches it whenever the envelope carries a ``rate_limited`` hint.
"""

from __future__ import annotations

import http.client
import json
import math

from repro.gateway.http import _retry_after_header
from repro.server.wire import retry_after_header_value, retry_after_hint
from repro.service import OctopusService, StatsRequest
from repro.service.responses import ServiceResponse


class TestHeaderValue:
    def test_fractional_deficit_rounds_up(self):
        # The pin from the audit: a 2.3 s deficit must read "3", not "2".
        assert retry_after_header_value(2.3) == "3"

    def test_exact_integers_pass_through(self):
        assert retry_after_header_value(2.0) == "2"
        assert retry_after_header_value(5) == "5"

    def test_never_below_one_second(self):
        # Sub-second deficits still need a whole-second header; "0" would
        # invite an immediate retry into a still-empty bucket.
        assert retry_after_header_value(0.2) == "1"
        assert retry_after_header_value(0.0) == "1"

    def test_gateway_wrapper_delegates(self):
        # The asyncio gateway builds its header through the same helper.
        assert _retry_after_header(2.3) == "3"
        assert _retry_after_header(0.4) == "1"


class TestHint:
    def _rate_limited(self, details):
        return ServiceResponse.failure(
            "stats", "rate_limited", "shed", details=details
        )

    def test_extracts_fractional_hint(self):
        response = self._rate_limited({"retry_after_seconds": 2.3})
        assert retry_after_hint(response) == 2.3

    def test_ignores_other_error_codes(self):
        response = ServiceResponse.failure(
            "stats", "invalid_request", "bad", details={"retry_after_seconds": 2.3}
        )
        assert retry_after_hint(response) is None

    def test_ignores_success_and_missing_or_bogus_hints(self):
        assert retry_after_hint(ServiceResponse.success("stats", {})) is None
        assert retry_after_hint(self._rate_limited({})) is None
        assert (
            retry_after_hint(self._rate_limited({"retry_after_seconds": "2.3"}))
            is None
        )
        assert (
            retry_after_hint(self._rate_limited({"retry_after_seconds": True}))
            is None
        )


class TestThreadedServerHeader:
    def test_429_carries_ceiled_retry_after_header(
        self, backend, running_server
    ):
        # rate = 1/2.3 with the implied burst of one: the first request
        # spends the only token and the second sheds with a *fractional*
        # deficit of ~2.3 s — exactly the truncation-prone shape.
        service = OctopusService(backend, rate_limit=1.0 / 2.3)
        with running_server(service) as server:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            try:
                body = StatsRequest().to_json()
                headers = {"Content-Type": "application/json"}
                connection.request("POST", "/query", body, headers)
                first = connection.getresponse()
                first.read()
                assert first.status == 200

                connection.request("POST", "/query", body, headers)
                second = connection.getresponse()
                payload = json.loads(second.read())
            finally:
                connection.close()

        assert second.status == 429
        hint = payload["error"]["details"]["retry_after_seconds"]
        header = second.getheader("Retry-After")
        assert header is not None
        # The header is the hint rounded *up* to whole seconds — an
        # honest wait, never shorter than the bucket's actual deficit.
        assert int(header) == max(1, math.ceil(hint))
        assert int(header) >= hint

    def test_non_rate_limited_errors_have_no_retry_after(
        self, backend, running_server
    ):
        with running_server(OctopusService(backend)) as server:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=10.0)
            try:
                connection.request(
                    "POST", "/query", '{"bad json',
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                response.read()
            finally:
                connection.close()
        assert response.status == 400
        assert response.getheader("Retry-After") is None

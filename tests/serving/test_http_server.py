"""End-to-end tests of the HTTP wire transport: endpoints, error→status
mapping, client behaviour, graceful shutdown and the ``serve`` CLI.

Everything runs against a real server on an ephemeral port (see
``conftest.py``); responses are compared against in-process execution
through :func:`~repro.service.responses.deterministic_form`, the canonical
content the determinism contract promises to reproduce across transports.
"""

import json
import threading

import pytest

from repro.cli import main
from repro.server import (
    HTTP_STATUS_BY_ERROR_CODE,
    OctopusClient,
    OctopusHTTPServer,
    OctopusTransportError,
    status_for_response,
)
from repro.service import (
    CompleteRequest,
    FindInfluencersRequest,
    OctopusService,
    ServiceResponse,
    StatsRequest,
    deterministic_form,
)
from repro.utils.validation import ValidationError

WIRE_TIMEOUT = 15.0


class TestEndpoints:
    def test_healthz_reports_liveness(self, backend, running_server, connected_client):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0
        assert health["executor"] == "OctopusService"

    def test_query_matches_in_process_execution(
        self, backend, running_server, connected_client
    ):
        request = FindInfluencersRequest("data mining", k=3)
        expected = OctopusService(backend).execute(request)
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                served = client.execute(request)
        assert served.ok
        assert deterministic_form(served) == deterministic_form(expected)

    def test_query_accepts_every_wire_shape(
        self, backend, running_server, connected_client
    ):
        """Typed requests, dicts and raw JSON strings all serve identically."""
        typed = CompleteRequest(prefix="da", limit=5)
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                shapes = [typed, typed.to_dict(), typed.to_json()]
                forms = {
                    deterministic_form(client.execute(shape)) for shape in shapes
                }
        assert len(forms) == 1

    def test_batch_executes_in_order_and_isolates_failures(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                responses = client.execute_batch(
                    [
                        CompleteRequest(prefix="da"),
                        {"service": "teleport"},
                        FindInfluencersRequest("data mining", k=2),
                    ]
                )
        assert [response.ok for response in responses] == [True, False, True]
        assert responses[1].error.code == "malformed_request"
        assert [response.service for response in responses] == [
            "complete",
            "teleport",
            "influencers",
        ]

    def test_batch_shares_duplicate_results(
        self, backend, running_server, connected_client
    ):
        request = CompleteRequest(prefix="da")
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                responses = client.execute_batch([request] * 4)
        assert all(response.ok for response in responses)
        assert sum(response.cache_hit for response in responses) == 3

    def test_stats_merges_service_cache_and_http_counters(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                client.execute(CompleteRequest(prefix="da"))
                stats = client.stats()
        assert stats["service.complete.requests"] == 1.0
        assert stats["cache.misses"] >= 1.0
        assert stats["http.requests"] == 1.0  # the stats GET itself excluded
        assert stats["http.path.query"] == 1.0
        assert stats["http.responses.2xx"] == 1.0


class TestErrorMapping:
    def test_mapping_table_is_the_contract(self):
        """Success is 200; every failure code maps through the table."""
        ok = ServiceResponse.success("complete", {})
        assert status_for_response(ok) == 200
        for code, status in HTTP_STATUS_BY_ERROR_CODE.items():
            failure = ServiceResponse.failure("complete", code, "boom")
            assert status_for_response(failure) == status
        unknown = ServiceResponse.failure("complete", "martian_weather", "boom")
        assert status_for_response(unknown) == 500  # conservative default

    @pytest.mark.parametrize(
        "body, expected_status",
        [
            ('{"bad json', 400),  # malformed_request
            ('{"service": "teleport"}', 400),  # unknown service
            ('{"service": "complete", "prefix": "da", "limit": 0}', 400),
            ('{"service": "complete", "prefix": "da", "bogus": 1}', 400),
        ],
    )
    def test_client_mistakes_are_4xx(
        self, backend, running_server, connected_client, body, expected_status
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                status, payload = client._request("POST", "/query", body)
        assert status == expected_status
        assert payload["ok"] is False

    def test_unknown_path_is_404_with_envelope_body(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                status, payload = client._request("GET", "/teapot")
        assert status == 404
        assert payload["error"]["code"] == "not_found"
        assert "/query" in payload["error"]["message"]

    def test_wrong_method_is_405(self, backend, running_server, connected_client):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                get_query, _ = client._request("GET", "/query")
                post_stats, _ = client._request("POST", "/stats", "{}")
        assert get_query == 405
        assert post_stats == 405

    def test_missing_content_length_is_400(
        self, backend, running_server, connected_client
    ):
        import http.client

        with running_server(OctopusService(backend)) as server:
            connection = http.client.HTTPConnection(
                client_host(server), client_port(server), timeout=WIRE_TIMEOUT
            )
            try:
                connection.putrequest("POST", "/query", skip_accept_encoding=True)
                connection.endheaders()  # no Content-Length at all
                response = connection.getresponse()
                payload = json.loads(response.read())
            finally:
                connection.close()
        assert response.status == 400
        assert payload["error"]["code"] == "malformed_request"

    def test_unread_body_cannot_poison_keepalive(self, backend, running_server):
        """A POST whose body an error path never reads must not leave the
        bytes to be parsed as the next request on the same connection."""
        import http.client

        with running_server(OctopusService(backend)) as server:
            host, port = server.server_address[:2]
            connection = http.client.HTTPConnection(
                host, port, timeout=WIRE_TIMEOUT
            )
            try:
                # 405 path: the body of this POST is never consumed.
                connection.request(
                    "POST",
                    "/healthz",
                    body='{"service": "stats"}',
                    headers={"Content-Type": "application/json"},
                )
                first = connection.getresponse()
                first_body = json.loads(first.read())
                assert first.status == 405
                assert first.getheader("Connection") == "close"
                assert first_body["error"]["code"] == "method_not_allowed"
                # http.client reconnects transparently after the announced
                # close; the follow-up must be served normally — with the
                # old behaviour the leftover body bytes were parsed as the
                # next request line and produced an HTML 400 page here.
                connection.request(
                    "POST",
                    "/query",
                    body=CompleteRequest(prefix="da").to_json(),
                    headers={"Content-Type": "application/json"},
                )
                second = connection.getresponse()
                second_body = json.loads(second.read())
            finally:
                connection.close()
        assert second.status == 200
        assert second_body["ok"] is True

    def test_oversized_body_is_413(self, backend, running_server, connected_client):
        with running_server(
            OctopusService(backend), max_body_bytes=1024
        ) as server:
            with connected_client(server) as client:
                status, payload = client._request(
                    "POST", "/query", "x" * 2048
                )
        assert status == 413
        assert payload["error"]["code"] == "payload_too_large"

    def test_unknown_paths_share_one_counter(
        self, backend, running_server, connected_client
    ):
        """A URL scanner cannot grow the per-path stats dict unboundedly."""
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                for path in ("/a", "/b", "/c"):
                    status, _payload = client._request("GET", path)
                    assert status == 404
                stats = client.stats()
        assert stats["http.path.other"] == 3.0
        assert not any(key == "http.path.a" for key in stats)

    def test_internal_error_is_500(self, backend, running_server, connected_client):
        service = OctopusService(backend)
        original = service._handlers["complete"]
        service._handlers["complete"] = _raising_handler
        try:
            with running_server(service) as server:
                with connected_client(server) as client:
                    status, payload = client._request(
                        "POST", "/query", CompleteRequest(prefix="da").to_json()
                    )
        finally:
            service._handlers["complete"] = original
        assert status == 500
        assert payload["error"]["code"] == "internal_error"

    def test_rate_limited_is_429(self, backend, running_server, connected_client):
        # A near-zero refill rate with the implied burst of one: the first
        # request spends the only token and the second must be shed.
        service = OctopusService(backend, rate_limit=0.001)
        with running_server(service) as server:
            with connected_client(server) as client:
                first, _ = client._request(
                    "POST", "/query", StatsRequest().to_json()
                )
                second, payload = client._request(
                    "POST", "/query", StatsRequest().to_json()
                )
        assert first == 200
        assert second == 429
        assert payload["error"]["code"] == "rate_limited"
        assert payload["error"]["details"]["retry_after_seconds"] > 0


class TestClient:
    def test_connection_refused_raises_transport_error(
        self, backend, running_server
    ):
        with running_server(OctopusService(backend)) as server:
            url = server.url
        # server fully shut down: the port is free again
        with OctopusClient(url, timeout=2.0) as client:
            with pytest.raises(OctopusTransportError):
                client.execute(CompleteRequest(prefix="da"))

    def test_stale_keepalive_connection_is_retried(
        self, backend, running_server
    ):
        import time

        with running_server(
            OctopusService(backend), request_timeout=0.3
        ) as server:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                assert client.execute(CompleteRequest(prefix="da")).ok
                time.sleep(0.8)  # server times the idle connection out
                assert client.execute(CompleteRequest(prefix="da")).ok

    def test_closed_client_refuses_requests(self, backend, running_server):
        with running_server(OctopusService(backend)) as server:
            client = OctopusClient(server.url)
            client.close()
            with pytest.raises(OctopusTransportError):
                client.execute(CompleteRequest(prefix="da"))

    def test_rejects_non_http_urls(self):
        with pytest.raises(ValueError):
            OctopusClient("ftp://example.org")
        with pytest.raises(ValueError):
            OctopusClient("http://")
        with pytest.raises(ValueError):
            OctopusClient("http://example.org", retries=-1)

    def test_https_urls_are_accepted(self):
        client = OctopusClient("https://example.org", verify=False)
        assert client.scheme == "https"
        assert client.port == 443
        client.close()

    def test_bad_batch_entry_rejected_client_side(
        self, backend, running_server, connected_client
    ):
        with running_server(OctopusService(backend)) as server:
            with connected_client(server) as client:
                with pytest.raises(ValidationError):
                    client.execute_batch(['{"bad json'])


class TestGracefulShutdown:
    @pytest.fixture(autouse=True)
    def _bind_running_server(self, running_server):
        self._booted = running_server

    def test_inflight_request_drains_into_final_stats(self, backend):
        """Shutdown waits for in-flight requests and counts them."""
        service = OctopusService(backend)
        entered = threading.Event()
        release = threading.Event()
        original = service._handlers["complete"]

        def slow(request):
            entered.set()
            assert release.wait(timeout=WIRE_TIMEOUT)
            return original(request)

        service._handlers["complete"] = slow
        results = []
        try:
            with self._booted(service) as server:
                client = OctopusClient(server.url, timeout=WIRE_TIMEOUT)

                def request_thread():
                    results.append(client.execute(CompleteRequest(prefix="da")))

                poster = threading.Thread(target=request_thread)
                poster.start()
                assert entered.wait(timeout=WIRE_TIMEOUT)
                # Drain concurrently with the in-flight request: release the
                # handler only once the drain has begun waiting on it.
                releaser = threading.Timer(0.2, release.set)
                releaser.start()
                final = server.shutdown_gracefully()
                poster.join(timeout=WIRE_TIMEOUT)
                client.close()
        finally:
            service._handlers["complete"] = original
            release.set()
        assert results and results[0].ok  # the response was fully served
        assert final["service.complete.requests"] == 1.0
        assert final["http.responses.2xx"] == 1.0

    def test_shutdown_is_idempotent_and_closes_executor(self, backend):
        from repro.service import ConcurrentOctopusService

        executor = ConcurrentOctopusService(OctopusService(backend), workers=2)
        with self._booted(executor) as server:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                assert client.execute(CompleteRequest(prefix="da")).ok
            first = server.shutdown_gracefully()
            second = server.shutdown_gracefully()
        assert first is second  # the final snapshot is taken exactly once
        assert executor.closed

    def test_draining_health_status(self, backend, running_server):
        with running_server(OctopusService(backend)) as server:
            assert server.health()["status"] == "ok"
            final = server.shutdown_gracefully()
        assert server.health()["status"] == "draining"
        assert server.final_stats is final


class TestServeCLI:
    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("serve-cli") / "dataset"
        code = main(
            [
                "generate",
                "--kind",
                "citation",
                "--out",
                str(directory),
                "--size",
                "120",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        return str(directory)

    def test_serve_boots_and_drains_on_interrupt(
        self, dataset_dir, monkeypatch, capsys
    ):
        """The serve command's whole lifecycle, with the accept loop elided."""
        monkeypatch.setattr(
            OctopusHTTPServer,
            "serve_forever",
            lambda self, poll_interval=0.5: (_ for _ in ()).throw(
                KeyboardInterrupt()
            ),
        )
        code = main(["serve", dataset_dir, "--fast", "--port", "0"])
        output = capsys.readouterr().out
        assert code == 0
        assert "serving" in output
        assert "POST /query" in output
        assert "http.requests" in output  # the final metrics report

    def test_serve_concurrent_executor_closes_pool(
        self, dataset_dir, monkeypatch, capsys
    ):
        monkeypatch.setattr(
            OctopusHTTPServer,
            "serve_forever",
            lambda self, poll_interval=0.5: (_ for _ in ()).throw(
                KeyboardInterrupt()
            ),
        )
        code = main(
            [
                "serve",
                dataset_dir,
                "--fast",
                "--port",
                "0",
                "--executor",
                "threads",
                "--workers",
                "2",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "executor=threads" in output
        assert "executor.workers" in output

    def test_query_without_dataset_or_url_errors(self, capsys):
        code = main(["query", '{"service": "stats"}'])
        assert code == 2
        assert "dataset directory or --url" in capsys.readouterr().err

    def test_query_url_transport_error_is_reported(self, capsys):
        # An unroutable port: nothing listens on port 1 on loopback.
        code = main(
            [
                "query",
                "--url",
                "http://127.0.0.1:1",
                "--timeout",
                "2",
                '{"service": "stats"}',
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


def _raising_handler(request):
    raise RuntimeError("index on fire")


def client_host(server) -> str:
    return server.server_address[0]


def client_port(server) -> int:
    return server.server_address[1]

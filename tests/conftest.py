"""Shared fixtures: small deterministic graphs, weights and datasets.

Expensive fixtures are session-scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.social import SocialNetworkGenerator
from repro.graph.digraph import SocialGraph
from repro.graph.generators import preferential_attachment_digraph
from repro.topics.edges import TopicEdgeWeights


@pytest.fixture
def line_graph() -> SocialGraph:
    """0 → 1 → 2 → 3 (a path)."""
    return SocialGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])


@pytest.fixture
def diamond_graph() -> SocialGraph:
    """0 → {1, 2} → 3 (two parallel two-hop paths)."""
    return SocialGraph.from_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture
def star_graph() -> SocialGraph:
    """0 → 1..5 (hub and spokes)."""
    return SocialGraph.from_edges(6, [(0, i) for i in range(1, 6)])


@pytest.fixture
def labelled_graph() -> SocialGraph:
    """Small labelled triangle-ish graph."""
    return SocialGraph.from_edges(
        3, [(0, 1), (1, 2), (0, 2)], labels=["alice", "bob", "carol"]
    )


@pytest.fixture(scope="session")
def medium_graph() -> SocialGraph:
    """A 200-node power-law digraph used across algorithm tests."""
    return preferential_attachment_digraph(200, 3, seed=42)


@pytest.fixture(scope="session")
def medium_weights(medium_graph: SocialGraph) -> TopicEdgeWeights:
    """4-topic weighted-cascade weights on the medium graph."""
    return TopicEdgeWeights.weighted_cascade(medium_graph, 4, seed=43)


@pytest.fixture(scope="session")
def medium_probabilities(
    medium_graph: SocialGraph, medium_weights: TopicEdgeWeights
) -> np.ndarray:
    """Collapsed edge probabilities for a fixed topic distribution."""
    gamma = np.array([0.55, 0.25, 0.15, 0.05])
    return medium_weights.edge_probabilities(gamma)


@pytest.fixture(scope="session")
def citation_dataset():
    """A small ACMCite-like dataset (session-scoped; do not mutate)."""
    return CitationNetworkGenerator(
        num_researchers=250,
        citations_per_paper=4,
        papers_per_author=3,
        seed=1234,
    ).generate()


@pytest.fixture(scope="session")
def qq_dataset():
    """A small QQ-like dataset (session-scoped; do not mutate)."""
    return SocialNetworkGenerator(
        num_users=200,
        friends_per_user=5,
        posts_per_user=3,
        seed=4321,
    ).generate()

"""Unit tests for repro.topics.edges."""

import numpy as np
import pytest

from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


class TestConstruction:
    def test_shape_validation(self, diamond_graph):
        with pytest.raises(ValidationError):
            TopicEdgeWeights(diamond_graph, np.zeros((3, 2)))

    def test_range_validation(self, diamond_graph):
        weights = np.zeros((4, 2))
        weights[0, 0] = 1.5
        with pytest.raises(ValidationError, match="\\[0, 1\\]"):
            TopicEdgeWeights(diamond_graph, weights)

    def test_weights_read_only(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.full((4, 2), 0.5))
        with pytest.raises(ValueError):
            weights.weights[0, 0] = 0.9


class TestCollapse:
    def test_edge_probabilities_matvec(self, diamond_graph):
        matrix = np.array(
            [[0.2, 0.8], [0.4, 0.0], [0.0, 0.6], [1.0, 1.0]]
        )
        weights = TopicEdgeWeights(diamond_graph, matrix)
        gamma = np.array([0.25, 0.75])
        np.testing.assert_allclose(
            weights.edge_probabilities(gamma), matrix @ gamma
        )

    def test_single_edge_probability(self, diamond_graph):
        matrix = np.array([[0.2, 0.8], [0.4, 0.0], [0.0, 0.6], [1.0, 1.0]])
        weights = TopicEdgeWeights(diamond_graph, matrix)
        gamma = np.array([0.5, 0.5])
        assert weights.edge_probability(0, gamma) == pytest.approx(0.5)

    def test_gamma_dimension_checked(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.full((4, 2), 0.1))
        with pytest.raises(ValidationError):
            weights.edge_probabilities(np.array([1.0]))

    def test_gamma_simplex_checked(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.full((4, 2), 0.1))
        with pytest.raises(ValidationError):
            weights.edge_probabilities(np.array([0.9, 0.9]))

    def test_one_hot_selects_column(self, diamond_graph):
        matrix = np.array([[0.2, 0.8], [0.4, 0.0], [0.0, 0.6], [1.0, 1.0]])
        weights = TopicEdgeWeights(diamond_graph, matrix)
        np.testing.assert_allclose(
            weights.edge_probabilities(np.array([1.0, 0.0])), matrix[:, 0]
        )

    def test_topic_column(self, diamond_graph):
        matrix = np.array([[0.2, 0.8], [0.4, 0.0], [0.0, 0.6], [1.0, 1.0]])
        weights = TopicEdgeWeights(diamond_graph, matrix)
        np.testing.assert_allclose(weights.topic_column(1), matrix[:, 1])
        with pytest.raises(ValidationError):
            weights.topic_column(5)

    def test_max_over_topics_dominates_all_gammas(self, diamond_graph):
        matrix = np.array([[0.2, 0.8], [0.4, 0.0], [0.0, 0.6], [1.0, 1.0]])
        weights = TopicEdgeWeights(diamond_graph, matrix)
        envelope = weights.max_over_topics()
        for gamma in ([1.0, 0.0], [0.0, 1.0], [0.3, 0.7]):
            assert np.all(
                weights.edge_probabilities(np.array(gamma)) <= envelope + 1e-12
            )


class TestConstructors:
    def test_random_trivalency_values(self, medium_graph):
        weights = TopicEdgeWeights.random_trivalency(medium_graph, 3, seed=0)
        allowed = {0.1, 0.01, 0.001}
        assert set(np.unique(weights.weights).tolist()) <= allowed
        assert weights.num_topics == 3

    def test_weighted_cascade_mean_preserved(self, medium_graph):
        weights = TopicEdgeWeights.weighted_cascade(medium_graph, 4, seed=1)
        # Average across topics should approximate the 1/in_degree base.
        in_degree = medium_graph.in_degree().astype(float)
        base = np.array(
            [
                1.0 / max(in_degree[v], 1.0)
                for _e, _u, v in medium_graph.edges()
            ]
        )
        mean_across_topics = weights.weights.mean(axis=1)
        # Clipping at 1 only reduces values; allow generous tolerance.
        assert mean_across_topics.mean() == pytest.approx(base.mean(), rel=0.2)

    def test_from_node_affinities_requires_shared_interest(self, line_graph):
        affinities = np.array(
            [
                [1.0, 0.0],
                [1.0, 0.0],
                [0.0, 1.0],
                [0.0, 1.0],
            ]
        )
        weights = TopicEdgeWeights.from_node_affinities(
            line_graph, affinities, base_probability=0.5, noise=0.0
        )
        # edge 0: both endpoints topic-0 → positive on topic 0 only
        assert weights.weights[0, 0] == pytest.approx(0.5)
        assert weights.weights[0, 1] == 0.0
        # edge 1: endpoints disagree → zero on both topics
        np.testing.assert_allclose(weights.weights[1], [0.0, 0.0])

    def test_from_node_affinities_shape_checked(self, line_graph):
        with pytest.raises(ValidationError):
            TopicEdgeWeights.from_node_affinities(line_graph, np.ones((2, 2)))

    def test_deterministic_given_seed(self, medium_graph):
        a = TopicEdgeWeights.weighted_cascade(medium_graph, 3, seed=7)
        b = TopicEdgeWeights.weighted_cascade(medium_graph, 3, seed=7)
        np.testing.assert_array_equal(a.weights, b.weights)

"""Unit tests for repro.propagation.worlds."""

import numpy as np
import pytest

from repro.propagation.worlds import LiveEdgeWorld, WorldEnsemble
from repro.utils.validation import ValidationError


class TestLiveEdgeWorld:
    def test_threshold_shape_validated(self, line_graph):
        with pytest.raises(ValidationError):
            LiveEdgeWorld(line_graph, np.zeros(2))

    def test_live_mask_semantics(self, line_graph):
        world = LiveEdgeWorld(line_graph, np.array([0.3, 0.6, 0.9]))
        mask = world.live_mask(np.array([0.5, 0.5, 0.5]))
        np.testing.assert_array_equal(mask, [True, False, False])

    def test_reachability_follows_live_edges(self, line_graph):
        world = LiveEdgeWorld(line_graph, np.array([0.1, 0.1, 0.9]))
        reached = world.reachable_from([0], np.full(3, 0.5))
        assert reached == {0, 1, 2}

    def test_reaches(self, line_graph):
        world = LiveEdgeWorld(line_graph, np.array([0.1, 0.1, 0.1]))
        probabilities = np.full(3, 0.5)
        assert world.reaches(0, 3, probabilities)
        assert world.reaches(2, 2, probabilities)
        assert not world.reaches(3, 0, probabilities)

    def test_monotone_coupling(self, medium_graph, medium_weights):
        """If p ≤ p' edgewise, the live-edge graph is a subgraph."""
        world = LiveEdgeWorld.sample(medium_graph, seed=0)
        low = medium_weights.edge_probabilities(
            np.array([1.0, 0.0, 0.0, 0.0])
        ) * 0.5
        high = low * 2.0
        reached_low = world.reachable_from([0, 1, 2], low)
        reached_high = world.reachable_from([0, 1, 2], high)
        assert reached_low <= reached_high

    def test_sample_deterministic(self, line_graph):
        a = LiveEdgeWorld.sample(line_graph, seed=5)
        b = LiveEdgeWorld.sample(line_graph, seed=5)
        np.testing.assert_array_equal(a.thresholds, b.thresholds)


class TestWorldEnsemble:
    def test_len_and_iter(self, line_graph):
        ensemble = WorldEnsemble(line_graph, 7, seed=0)
        assert len(ensemble) == 7
        assert len(list(ensemble)) == 7

    def test_spread_estimate_unbiased_on_line(self, line_graph):
        p = 0.5
        ensemble = WorldEnsemble(line_graph, 3000, seed=1)
        estimate = ensemble.estimate_spread([0], np.full(3, p))
        exact = 1 + p + p**2 + p**3
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_spread_monotone_in_probabilities(self, line_graph):
        ensemble = WorldEnsemble(line_graph, 500, seed=2)
        low = ensemble.estimate_spread([0], np.full(3, 0.2))
        high = ensemble.estimate_spread([0], np.full(3, 0.8))
        assert high >= low

    def test_invalid_world_count(self, line_graph):
        with pytest.raises(ValidationError):
            WorldEnsemble(line_graph, 0)

"""Unit tests for repro.index.trie."""

import pytest

from repro.index.trie import Trie
from repro.utils.validation import ValidationError


class TestInsert:
    def test_size(self):
        trie = Trie()
        trie.insert("data mining", 1)
        trie.insert("databases", 2)
        assert len(trie) == 2

    def test_rejects_empty_key(self):
        with pytest.raises(ValidationError):
            Trie().insert("   ")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            Trie().insert(42)


class TestComplete:
    def _trie(self):
        trie = Trie()
        trie.insert("data mining", 1, weight=10)
        trie.insert("databases", 2, weight=5)
        trie.insert("data integration", 3, weight=7)
        trie.insert("deep learning", 4, weight=20)
        return trie

    def test_prefix_filtering(self):
        results = self._trie().complete("data")
        keys = [key for key, _payload in results]
        assert keys == ["data mining", "data integration", "databases"]

    def test_weight_ordering(self):
        results = self._trie().complete("d")
        assert results[0][0] == "deep learning"

    def test_limit(self):
        assert len(self._trie().complete("d", limit=2)) == 2

    def test_no_match(self):
        assert self._trie().complete("zzz") == []

    def test_empty_prefix_returns_heaviest(self):
        results = self._trie().complete("", limit=1)
        assert results[0][0] == "deep learning"

    def test_case_insensitive(self):
        results = self._trie().complete("DaTa M")
        assert results[0] == ("data mining", 1)

    def test_payload_returned(self):
        assert self._trie().complete("databases")[0][1] == 2

    def test_tie_broken_alphabetically(self):
        trie = Trie()
        trie.insert("bb", 1, weight=1)
        trie.insert("ba", 2, weight=1)
        assert [key for key, _p in trie.complete("b")] == ["ba", "bb"]

    def test_invalid_limit(self):
        with pytest.raises(ValidationError):
            self._trie().complete("d", limit=0)


class TestContains:
    def test_exact_membership(self):
        trie = Trie()
        trie.insert("graph")
        assert trie.contains("graph")
        assert trie.contains("GRAPH")
        assert not trie.contains("gra")
        assert not trie.contains("graphs")

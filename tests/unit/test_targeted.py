"""Unit tests for repro.core.targeted (targeted keyword IM, ref. [7])."""

import numpy as np
import pytest

from repro.core.targeted import TargetedKeywordIM
from repro.graph.digraph import SocialGraph
from repro.index.inverted import InvertedIndex
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture
def two_hub_world():
    """Two disjoint stars: hub 0 → 1..4, hub 5 → 6..9.

    The audience lives entirely in the second star, so a targeted query
    must pick hub 5 even though both hubs have equal structural influence.
    """
    edges = [(0, i) for i in range(1, 5)] + [(5, i) for i in range(6, 10)]
    graph = SocialGraph.from_edges(10, edges)
    weights = TopicEdgeWeights(graph, np.full((len(edges), 2), 0.9))
    audience = np.zeros(10)
    audience[6:10] = 1.0
    return graph, weights, audience


GAMMA = np.array([0.5, 0.5])


class TestQuery:
    def test_targets_audience_hub(self, two_hub_world):
        _graph, weights, audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=300, seed=0)
        result = engine.query(GAMMA, 1, audience)
        assert result.seeds == [5]

    def test_untargeted_equivalent_with_uniform_audience(self, two_hub_world):
        graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=300, seed=0)
        uniform = np.ones(graph.num_nodes)
        result = engine.query(GAMMA, 2, uniform)
        assert set(result.seeds) == {0, 5}  # both hubs matter now

    def test_weighted_spread_units(self, two_hub_world):
        _graph, weights, audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=500, seed=1)
        result = engine.query(GAMMA, 1, audience)
        # Hub 5 activates each audience member with probability 0.9;
        # weighted spread ≈ 4 × 0.9 = 3.6 (hub itself has weight 0).
        assert result.spread == pytest.approx(3.6, abs=0.5)

    def test_estimator_agrees_with_monte_carlo(self, two_hub_world):
        _graph, weights, audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=2000, seed=2)
        result = engine.query(GAMMA, 1, audience)
        reference = engine.estimate_weighted_spread(
            result.seeds, GAMMA, audience, num_samples=2000, seed=3
        )
        assert result.spread == pytest.approx(reference, rel=0.15)

    def test_statistics(self, two_hub_world):
        _graph, weights, audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=100, seed=0)
        result = engine.query(GAMMA, 1, audience)
        assert result.statistics["audience_users"] == 4.0
        assert result.statistics["audience_total_weight"] == 4.0

    def test_empty_audience_rejected(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=100, seed=0)
        with pytest.raises(ValidationError, match="empty"):
            engine.query(GAMMA, 1, np.zeros(10))

    def test_negative_audience_rejected(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=100, seed=0)
        bad = np.ones(10)
        bad[0] = -1.0
        with pytest.raises(ValidationError, match="non-negative"):
            engine.query(GAMMA, 1, bad)

    def test_wrong_audience_shape_rejected(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=100, seed=0)
        with pytest.raises(ValidationError, match="shape"):
            engine.query(GAMMA, 1, np.ones(3))


class TestAudienceFromIndex:
    def test_audience_from_keywords(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        index = InvertedIndex()
        index.add_document(6, [0, 0, 1])
        index.add_document(7, [0])
        engine = TargetedKeywordIM(weights, index, num_sets=100, seed=0)
        audience = engine.audience_for_keywords([0])
        assert audience[6] == 2.0
        assert audience[7] == 1.0
        assert audience[0] == 0.0

    def test_requires_index(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(weights, num_sets=100, seed=0)
        with pytest.raises(ValidationError, match="inverted index"):
            engine.audience_for_keywords([0])

    def test_empty_word_ids_rejected(self, two_hub_world):
        _graph, weights, _audience = two_hub_world
        engine = TargetedKeywordIM(
            weights, InvertedIndex(), num_sets=100, seed=0
        )
        with pytest.raises(ValidationError, match="empty"):
            engine.audience_for_keywords([])


class TestOctopusIntegration:
    def test_facade_targeted_query(self, citation_dataset):
        from repro.core.octopus import Octopus, OctopusConfig

        system = Octopus.from_dataset(
            citation_dataset,
            config=OctopusConfig(
                num_sketches=40,
                num_topic_samples=4,
                topic_sample_rr_sets=200,
                oracle_samples=20,
                seed=4,
            ),
        )
        result = system.find_targeted_influencers(
            "data mining", k=3, num_sets=500
        )
        assert len(result.seeds) == 3
        assert result.statistics["audience_users"] > 0
        # cached on repeat
        again = system.find_targeted_influencers(
            "data mining", k=3, num_sets=500
        )
        assert again.seeds == result.seeds

    def test_facade_separate_audience(self, citation_dataset):
        from repro.core.octopus import Octopus, OctopusConfig

        system = Octopus.from_dataset(
            citation_dataset,
            config=OctopusConfig(
                num_sketches=40,
                num_topic_samples=4,
                topic_sample_rr_sets=200,
                oracle_samples=20,
                seed=4,
            ),
        )
        result = system.find_targeted_influencers(
            "data mining",
            k=2,
            audience_keywords="clustering",
            num_sets=300,
        )
        assert len(result.seeds) == 2

"""Unit tests for repro.core.suggestion."""

import numpy as np
import pytest

from repro.core.influencer_index import InfluencerIndex
from repro.core.suggestion import KeywordSuggester
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def setup():
    """Planted two-topic world where user 0 is influential on topic 0 only."""
    from repro.graph.digraph import SocialGraph

    # user 0 → 1..6; topic-0 edges are strong, topic-1 edges are dead.
    graph = SocialGraph.from_edges(
        7, [(0, i) for i in range(1, 7)], labels=[f"user-{i}" for i in range(7)]
    )
    weights = TopicEdgeWeights(
        graph,
        np.column_stack(
            [np.full(6, 0.9), np.full(6, 0.01)]
        ),
    )
    vocab = Vocabulary(["alpha", "beta", "gamma", "delta"])
    # alpha,beta → topic 0; gamma,delta → topic 1
    word_topic = np.array(
        [
            [0.45, 0.05],
            [0.45, 0.05],
            [0.05, 0.45],
            [0.05, 0.45],
        ]
    )
    model = TopicModel(vocab, word_topic)
    index = InfluencerIndex(weights, num_sketches=600, seed=1)
    user_keywords = {
        0: [0, 0, 1, 2, 3],  # uses all four words, alpha most often
        1: [2],
    }
    suggester = KeywordSuggester(model, index, user_keywords)
    return graph, model, index, suggester


class TestCandidates:
    def test_frequency_ordered(self, setup):
        _graph, _model, _index, suggester = setup
        assert suggester.candidates_for(0)[0] == 0  # alpha used twice

    def test_unknown_user_empty(self, setup):
        _graph, _model, _index, suggester = setup
        assert suggester.candidates_for(5) == []


class TestSuggest:
    def test_picks_influential_topic_keywords(self, setup):
        _graph, _model, _index, suggester = setup
        result = suggester.suggest(0, k=2)
        assert set(result.keywords) <= {"alpha", "beta"}
        assert len(result.keywords) == 2
        assert result.spread > 0

    def test_gamma_matches_keywords(self, setup):
        _graph, model, _index, suggester = setup
        result = suggester.suggest(0, k=2)
        expected = model.keyword_topic_posterior(result.keywords)
        np.testing.assert_allclose(result.gamma, expected)
        assert result.gamma.argmax() == 0

    def test_exact_at_least_greedy(self, setup):
        _graph, _model, _index, suggester = setup
        greedy = suggester.suggest(0, k=2, method="greedy")
        exact = suggester.suggest(0, k=2, method="exact")
        assert exact.spread >= greedy.spread - 1e-9

    def test_per_keyword_spread_recorded(self, setup):
        _graph, _model, _index, suggester = setup
        result = suggester.suggest(0, k=1)
        assert "alpha" in result.per_keyword_spread
        # topic-0 words must dominate topic-1 words for this user
        assert (
            result.per_keyword_spread["alpha"]
            > result.per_keyword_spread["gamma"]
        )

    def test_statistics(self, setup):
        _graph, _model, _index, suggester = setup
        result = suggester.suggest(0, k=2)
        assert result.statistics["candidates_total"] == 4.0
        assert result.statistics["candidates_after_pruning"] <= 4.0

    def test_target_label(self, setup):
        _graph, _model, _index, suggester = setup
        assert suggester.suggest(0, k=1).target_label == "user-0"

    def test_user_without_keywords_raises(self, setup):
        _graph, _model, _index, suggester = setup
        with pytest.raises(ValidationError, match="no recorded keywords"):
            suggester.suggest(3, k=1)

    def test_invalid_method(self, setup):
        _graph, _model, _index, suggester = setup
        with pytest.raises(ValidationError, match="method"):
            suggester.suggest(0, k=1, method="annealing")

    def test_invalid_k(self, setup):
        _graph, _model, _index, suggester = setup
        with pytest.raises(ValidationError):
            suggester.suggest(0, k=0)

    def test_radar_series(self, setup):
        _graph, _model, _index, suggester = setup
        series = suggester.suggest(0, k=1).radar_series()
        assert len(series) == 2
        assert sum(series) == pytest.approx(1.0)


class TestCandidateLimit:
    def test_limit_applies(self, setup):
        graph, model, index, _suggester = setup
        limited = KeywordSuggester(
            model, index, {0: [0, 1, 2, 3]}, candidate_limit=2
        )
        result = limited.suggest(0, k=1)
        assert result.statistics["candidates_after_pruning"] == 2.0

    def test_consistency_filter(self, setup):
        graph, model, index, _suggester = setup
        filtered = KeywordSuggester(
            model, index, {0: [0, 1, 2, 3]}, consistency_filter=True
        )
        result = filtered.suggest(0, k=3)
        # With the filter, only topic-0 words survive.
        assert set(result.keywords) <= {"alpha", "beta"}

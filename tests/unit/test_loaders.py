"""Unit tests for repro.datasets.loaders (persistence round-trips)."""

import numpy as np
import pytest

from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.loaders import load_dataset, save_dataset
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def dataset():
    return CitationNetworkGenerator(
        num_researchers=60, citations_per_paper=3, papers_per_author=2, seed=2
    ).generate()


class TestRoundTrip:
    def test_full_round_trip(self, dataset, tmp_path):
        directory = tmp_path / "bundle"
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)

        assert loaded.name == dataset.name
        assert loaded.topic_names == dataset.topic_names
        assert loaded.graph.num_nodes == dataset.graph.num_nodes
        assert list(loaded.graph.edges()) == list(dataset.graph.edges())
        assert loaded.graph.labels == dataset.graph.labels
        assert loaded.vocabulary.words() == dataset.vocabulary.words()
        assert len(loaded.items) == len(dataset.items)
        assert loaded.items[0].keywords == dataset.items[0].keywords
        assert loaded.items[0].events == dataset.items[0].events
        assert loaded.user_keywords == dataset.user_keywords

    def test_ground_truth_round_trip(self, dataset, tmp_path):
        directory = tmp_path / "bundle"
        save_dataset(dataset, directory)
        loaded = load_dataset(directory)
        np.testing.assert_array_equal(
            loaded.true_edge_weights.weights,
            dataset.true_edge_weights.weights,
        )
        np.testing.assert_array_equal(
            loaded.true_topic_model.word_given_topic,
            dataset.true_topic_model.word_given_topic,
        )
        np.testing.assert_array_equal(
            loaded.node_affinities, dataset.node_affinities
        )

    def test_metadata_round_trip(self, dataset, tmp_path):
        directory = tmp_path / "bundle"
        save_dataset(dataset, directory)
        assert load_dataset(directory).metadata == dataset.metadata

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            load_dataset(tmp_path / "nope")

    def test_save_creates_directory(self, dataset, tmp_path):
        directory = tmp_path / "deep" / "bundle"
        save_dataset(dataset, directory)
        assert (directory / "dataset.json").exists()
        assert (directory / "graph.tsv").exists()
        assert (directory / "items.jsonl").exists()

"""Unit tests for repro.topics.model."""

import numpy as np
import pytest

from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError


@pytest.fixture
def model() -> TopicModel:
    """3 words, 2 topics; word i strongly loads on topic i%2."""
    vocab = Vocabulary(["apple", "banana", "cherry"])
    matrix = np.array(
        [
            [0.8, 0.1],
            [0.1, 0.8],
            [0.1, 0.1],
        ]
    )
    return TopicModel(vocab, matrix)


class TestConstruction:
    def test_rejects_non_normalised_columns(self):
        vocab = Vocabulary(["a", "b"])
        with pytest.raises(ValidationError, match="sum to 1"):
            TopicModel(vocab, np.array([[0.5, 0.5], [0.4, 0.5]]))

    def test_rejects_negative(self):
        vocab = Vocabulary(["a", "b"])
        with pytest.raises(ValidationError, match="non-negative"):
            TopicModel(vocab, np.array([[1.5, 0.5], [-0.5, 0.5]]))

    def test_rejects_row_mismatch(self):
        vocab = Vocabulary(["a", "b", "c"])
        with pytest.raises(ValidationError):
            TopicModel(vocab, np.full((2, 2), 0.5))

    def test_rejects_bad_prior(self, model):
        vocab = Vocabulary(["a", "b"])
        matrix = np.full((2, 2), 0.5)
        with pytest.raises(ValidationError):
            TopicModel(vocab, matrix, topic_prior=np.array([0.9, 0.2]))

    def test_default_prior_uniform(self, model):
        np.testing.assert_allclose(model.topic_prior, [0.5, 0.5])


class TestPosterior:
    def test_returns_simplex(self, model):
        gamma = model.keyword_topic_posterior(["apple"])
        assert gamma.sum() == pytest.approx(1.0)
        assert np.all(gamma >= 0)

    def test_single_keyword_prefers_its_topic(self, model):
        assert model.keyword_topic_posterior(["apple"]).argmax() == 0
        assert model.keyword_topic_posterior(["banana"]).argmax() == 1

    def test_more_evidence_sharpens(self, model):
        one = model.keyword_topic_posterior(["apple"])
        two = model.keyword_topic_posterior(["apple", "apple"])
        assert two[0] > one[0]

    def test_conflicting_keywords_flatten(self, model):
        gamma = model.keyword_topic_posterior(["apple", "banana"])
        np.testing.assert_allclose(gamma, [0.5, 0.5], atol=1e-6)

    def test_accepts_word_ids(self, model):
        by_word = model.keyword_topic_posterior(["apple"])
        by_id = model.keyword_topic_posterior([0])
        np.testing.assert_allclose(by_word, by_id)

    def test_neutral_keyword_follows_prior(self):
        vocab = Vocabulary(["x", "y"])
        matrix = np.array([[0.5, 0.5], [0.5, 0.5]])
        model = TopicModel(vocab, matrix, topic_prior=np.array([0.8, 0.2]))
        gamma = model.keyword_topic_posterior(["x"])
        np.testing.assert_allclose(gamma, [0.8, 0.2], atol=1e-6)

    def test_empty_keywords_raise(self, model):
        with pytest.raises(ValidationError, match="at least one"):
            model.keyword_topic_posterior([])

    def test_unknown_keyword_raises(self, model):
        with pytest.raises(ValidationError, match="unknown"):
            model.keyword_topic_posterior(["durian"])

    def test_out_of_range_id_raises(self, model):
        with pytest.raises(ValidationError, match="out of range"):
            model.keyword_topic_posterior([99])

    def test_bool_rejected(self, model):
        with pytest.raises(ValidationError):
            model.keyword_topic_posterior([True])


class TestIntrospection:
    def test_top_words(self, model):
        top = model.top_words(0, 2)
        assert top[0][0] == "apple"
        assert len(top) == 2

    def test_top_words_invalid_topic(self, model):
        with pytest.raises(ValidationError):
            model.top_words(5)

    def test_dominant_topic(self, model):
        assert model.dominant_topic(["banana"]) == 1

    def test_topic_profile_of_word(self, model):
        profile = model.topic_profile_of_word("apple")
        assert profile.argmax() == 0

    def test_word_likelihood_positive_and_ordered(self, model):
        coherent = model.word_likelihood(["apple", "apple"])
        incoherent = model.word_likelihood(["apple", "banana"])
        assert coherent > incoherent > 0

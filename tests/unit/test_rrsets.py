"""Unit tests for repro.propagation.rrsets."""

import numpy as np
import pytest

from repro.backend import ProcessPoolBackend, SerialBackend, ThreadPoolBackend
from repro.propagation.ic import IndependentCascade
from repro.propagation.rrsets import RRSetCollection, generate_rr_set
from repro.utils.validation import ValidationError


class TestGenerateRRSet:
    def test_contains_root(self, line_graph):
        rr = generate_rr_set(line_graph, np.zeros(3), 2, seed=0)
        assert rr == {2}

    def test_deterministic_edges_reach_all_ancestors(self, line_graph):
        rr = generate_rr_set(line_graph, np.ones(3), 3, seed=0)
        assert rr == {0, 1, 2, 3}

    def test_respects_direction(self, line_graph):
        rr = generate_rr_set(line_graph, np.ones(3), 0, seed=0)
        assert rr == {0}  # nothing points into node 0

    def test_invalid_root(self, line_graph):
        with pytest.raises(ValidationError):
            generate_rr_set(line_graph, np.ones(3), 9)


class TestRRSetCollection:
    def test_requires_sets(self, line_graph):
        with pytest.raises(ValidationError):
            RRSetCollection(line_graph, [])

    def test_sample_count(self, medium_graph, medium_probabilities):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 50, seed=0
        )
        assert len(collection) == 50

    def test_coverage_of(self, line_graph):
        collection = RRSetCollection(line_graph, [{0, 1}, {1, 2}, {3}])
        assert collection.coverage_of(1) == 2
        assert collection.coverage_of(3) == 1
        assert collection.coverage_of(99) == 0

    def test_estimate_spread_formula(self, line_graph):
        collection = RRSetCollection(line_graph, [{0, 1}, {1, 2}, {3}, {2}])
        # seeds {1} cover 2 of 4 sets; n = 4 → spread = 4 * 2/4 = 2.
        assert collection.estimate_spread([1]) == pytest.approx(2.0)
        assert collection.estimate_spread([0, 3]) == pytest.approx(2.0)

    def test_estimator_agrees_with_monte_carlo(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 6000, seed=1
        )
        cascade = IndependentCascade(medium_graph, medium_probabilities)
        seeds = [0, 1]
        ris = collection.estimate_spread(seeds)
        mc = cascade.estimate_spread(seeds, num_samples=2000, seed=2)
        assert ris == pytest.approx(mc, rel=0.15, abs=1.0)

    def test_greedy_max_cover_prefers_high_coverage(self, line_graph):
        collection = RRSetCollection(
            line_graph, [{0, 1}, {1, 2}, {1, 3}, {0}]
        )
        seeds, spread = collection.greedy_max_cover(1)
        assert seeds == [1]
        assert spread == pytest.approx(4 * 3 / 4)

    def test_greedy_max_cover_diminishing(self, line_graph):
        collection = RRSetCollection(
            line_graph, [{0, 1}, {1, 2}, {1, 3}, {0}]
        )
        seeds, spread = collection.greedy_max_cover(2)
        assert seeds[0] == 1
        assert seeds[1] == 0
        assert spread == pytest.approx(4.0)

    def test_greedy_stops_when_everything_covered(self, line_graph):
        collection = RRSetCollection(line_graph, [{0}, {0, 1}])
        seeds, _spread = collection.greedy_max_cover(3)
        assert seeds == [0]

    def test_fixed_roots(self, line_graph):
        collection = RRSetCollection.sample(
            line_graph, np.zeros(3), 4, seed=0, roots=[3]
        )
        assert all(rr == {3} for rr in collection.rr_sets)

    def test_invalid_fixed_root(self, line_graph):
        with pytest.raises(ValidationError):
            RRSetCollection.sample(line_graph, np.zeros(3), 4, seed=0, roots=[9])

    def test_shared_generator_advances_stream(
        self, medium_graph, medium_probabilities
    ):
        """Passing one Generator across calls must consume it (no rewrap)."""
        rng = np.random.default_rng(7)
        first = generate_rr_set(medium_graph, medium_probabilities, 0, rng)
        second = generate_rr_set(medium_graph, medium_probabilities, 0, rng)
        replay = np.random.default_rng(7)
        assert first == generate_rr_set(
            medium_graph, medium_probabilities, 0, replay
        )
        assert second == generate_rr_set(
            medium_graph, medium_probabilities, 0, replay
        )


class TestPackedStorage:
    """The collection is packed internally; the set view is derived."""

    def test_accepts_packed_batches(self, line_graph):
        from repro.propagation.packed import PackedRRSets

        packed = PackedRRSets.from_sets(4, [{0, 1}, {1, 2}, {3}])
        collection = RRSetCollection(line_graph, packed)
        assert len(collection) == 3
        assert collection.rr_sets == [{0, 1}, {1, 2}, {3}]
        assert collection.coverage_of(1) == 2

    def test_packed_and_set_construction_agree(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 150, seed=12
        )
        rebuilt = RRSetCollection(medium_graph, collection.rr_sets)
        assert rebuilt.estimate_spread([0, 5]) == pytest.approx(
            collection.estimate_spread([0, 5])
        )
        assert rebuilt.greedy_max_cover(4) == collection.greedy_max_cover(4)

    def test_greedy_matches_reference_implementation(
        self, medium_graph, medium_probabilities
    ):
        """Vectorized greedy equals a straightforward set-based greedy.

        Tie-breaking contract: among max-coverage nodes, pick the one that
        appears first in the packed batch (the membership-dict insertion
        order of the historical implementation).
        """
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 250, seed=21
        )
        rr_sets = collection.rr_sets
        first_seen = {}
        for position, node in enumerate(collection.packed.nodes.tolist()):
            first_seen.setdefault(node, position)
        chosen, remaining = [], list(range(len(rr_sets)))
        for _ in range(5):
            counts = {}
            for index in remaining:
                for node in rr_sets[index]:
                    counts[node] = counts.get(node, 0) + 1
            if not counts:
                break
            best_cover = max(counts.values())
            best = min(
                (node for node, count in counts.items() if count == best_cover),
                key=first_seen.__getitem__,
            )
            if best_cover <= 0:
                break
            chosen.append(best)
            remaining = [
                index for index in remaining if best not in rr_sets[index]
            ]
        seeds, spread = collection.greedy_max_cover(5)
        assert seeds == chosen
        covered = len(rr_sets) - len(remaining)
        assert spread == pytest.approx(
            medium_graph.num_nodes * covered / len(rr_sets)
        )


class TestParallelSampling:
    """Acceptance bar: same seed ⇒ identical collection on every backend."""

    def test_backends_agree_exactly(self, medium_graph, medium_probabilities):
        serial = RRSetCollection.sample(
            medium_graph,
            medium_probabilities,
            700,
            seed=31,
            backend=SerialBackend(),
        )
        with ThreadPoolBackend(4) as threads:
            threaded = RRSetCollection.sample(
                medium_graph, medium_probabilities, 700, seed=31, backend=threads
            )
        with ProcessPoolBackend(4) as processes:
            forked = RRSetCollection.sample(
                medium_graph,
                medium_probabilities,
                700,
                seed=31,
                backend=processes,
            )
        assert serial.rr_sets == threaded.rr_sets  # same sets, same order
        assert serial.rr_sets == forked.rr_sets

    def test_worker_count_does_not_matter(
        self, medium_graph, medium_probabilities
    ):
        with ThreadPoolBackend(2) as two, ThreadPoolBackend(7) as seven:
            a = RRSetCollection.sample(
                medium_graph, medium_probabilities, 300, seed=5, backend=two
            )
            b = RRSetCollection.sample(
                medium_graph, medium_probabilities, 300, seed=5, backend=seven
            )
        assert a.rr_sets == b.rr_sets

    def test_membership_index_matches_serial(
        self, medium_graph, medium_probabilities
    ):
        with ThreadPoolBackend(3) as backend:
            parallel = RRSetCollection.sample(
                medium_graph, medium_probabilities, 200, seed=9, backend=backend
            )
        rebuilt = RRSetCollection(medium_graph, list(parallel.rr_sets))
        for node in range(medium_graph.num_nodes):
            assert parallel.coverage_of(node) == rebuilt.coverage_of(node)

    def test_parallel_roots_preserved(self, line_graph):
        with ThreadPoolBackend(2) as backend:
            collection = RRSetCollection.sample(
                line_graph, np.zeros(3), 6, seed=0, roots=[2], backend=backend
            )
        assert all(rr == {2} for rr in collection.rr_sets)


class TestCollectionInvariants:
    """Structural invariants the estimators rest on."""

    def test_coverage_matches_spread_estimate(
        self, medium_graph, medium_probabilities
    ):
        """n · coverage_of(v) / R  ==  estimate_spread([v]) for every v."""
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 400, seed=3
        )
        n, total = medium_graph.num_nodes, len(collection)
        for node in range(0, medium_graph.num_nodes, 17):
            assert collection.estimate_spread([node]) == pytest.approx(
                n * collection.coverage_of(node) / total
            )

    def test_every_rr_set_contains_a_node_of_the_graph(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 100, seed=4
        )
        for rr_set in collection.rr_sets:
            assert rr_set
            assert all(0 <= node < medium_graph.num_nodes for node in rr_set)

    def test_greedy_spread_never_exceeds_union_bound(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 500, seed=6
        )
        seeds, spread = collection.greedy_max_cover(5)
        assert spread <= medium_graph.num_nodes
        assert spread == pytest.approx(collection.estimate_spread(seeds))

    def test_spread_monotone_in_seed_set(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 300, seed=8
        )
        assert collection.estimate_spread([0, 1]) >= collection.estimate_spread(
            [0]
        )

"""Unit tests for repro.propagation.rrsets."""

import numpy as np
import pytest

from repro.propagation.ic import IndependentCascade
from repro.propagation.rrsets import RRSetCollection, generate_rr_set
from repro.utils.validation import ValidationError


class TestGenerateRRSet:
    def test_contains_root(self, line_graph):
        rr = generate_rr_set(line_graph, np.zeros(3), 2, seed=0)
        assert rr == {2}

    def test_deterministic_edges_reach_all_ancestors(self, line_graph):
        rr = generate_rr_set(line_graph, np.ones(3), 3, seed=0)
        assert rr == {0, 1, 2, 3}

    def test_respects_direction(self, line_graph):
        rr = generate_rr_set(line_graph, np.ones(3), 0, seed=0)
        assert rr == {0}  # nothing points into node 0

    def test_invalid_root(self, line_graph):
        with pytest.raises(ValidationError):
            generate_rr_set(line_graph, np.ones(3), 9)


class TestRRSetCollection:
    def test_requires_sets(self, line_graph):
        with pytest.raises(ValidationError):
            RRSetCollection(line_graph, [])

    def test_sample_count(self, medium_graph, medium_probabilities):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 50, seed=0
        )
        assert len(collection) == 50

    def test_coverage_of(self, line_graph):
        collection = RRSetCollection(line_graph, [{0, 1}, {1, 2}, {3}])
        assert collection.coverage_of(1) == 2
        assert collection.coverage_of(3) == 1
        assert collection.coverage_of(99) == 0

    def test_estimate_spread_formula(self, line_graph):
        collection = RRSetCollection(line_graph, [{0, 1}, {1, 2}, {3}, {2}])
        # seeds {1} cover 2 of 4 sets; n = 4 → spread = 4 * 2/4 = 2.
        assert collection.estimate_spread([1]) == pytest.approx(2.0)
        assert collection.estimate_spread([0, 3]) == pytest.approx(2.0)

    def test_estimator_agrees_with_monte_carlo(
        self, medium_graph, medium_probabilities
    ):
        collection = RRSetCollection.sample(
            medium_graph, medium_probabilities, 6000, seed=1
        )
        cascade = IndependentCascade(medium_graph, medium_probabilities)
        seeds = [0, 1]
        ris = collection.estimate_spread(seeds)
        mc = cascade.estimate_spread(seeds, num_samples=2000, seed=2)
        assert ris == pytest.approx(mc, rel=0.15, abs=1.0)

    def test_greedy_max_cover_prefers_high_coverage(self, line_graph):
        collection = RRSetCollection(
            line_graph, [{0, 1}, {1, 2}, {1, 3}, {0}]
        )
        seeds, spread = collection.greedy_max_cover(1)
        assert seeds == [1]
        assert spread == pytest.approx(4 * 3 / 4)

    def test_greedy_max_cover_diminishing(self, line_graph):
        collection = RRSetCollection(
            line_graph, [{0, 1}, {1, 2}, {1, 3}, {0}]
        )
        seeds, spread = collection.greedy_max_cover(2)
        assert seeds[0] == 1
        assert seeds[1] == 0
        assert spread == pytest.approx(4.0)

    def test_greedy_stops_when_everything_covered(self, line_graph):
        collection = RRSetCollection(line_graph, [{0}, {0, 1}])
        seeds, _spread = collection.greedy_max_cover(3)
        assert seeds == [0]

    def test_fixed_roots(self, line_graph):
        collection = RRSetCollection.sample(
            line_graph, np.zeros(3), 4, seed=0, roots=[3]
        )
        assert all(rr == {3} for rr in collection.rr_sets)

"""Unit tests for repro.core.paths."""

import numpy as np
import pytest

from repro.core.paths import InfluencePathExplorer, PathTree
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture
def explorer(diamond_graph):
    weights = TopicEdgeWeights(
        diamond_graph,
        np.array(
            [
                [0.9, 0.1],  # 0→1
                [0.5, 0.5],  # 0→2
                [0.8, 0.2],  # 1→3
                [0.1, 0.9],  # 2→3
            ]
        ),
    )
    return InfluencePathExplorer(weights)


@pytest.fixture
def tree(explorer):
    return explorer.explore(0, gamma=np.array([1.0, 0.0]), threshold=0.05)


class TestExplore:
    def test_tree_contains_reachable_nodes(self, tree):
        assert set(tree.parents) == {0, 1, 2, 3}
        assert tree.root == 0
        assert tree.size == 4

    def test_best_path_selected(self, tree):
        # Under topic 0: path 0→1→3 has 0.72 vs 0→2→3 with 0.05.
        assert tree.parents[3] == 1
        assert tree.probabilities[3] == pytest.approx(0.72)

    def test_threshold_prunes(self, explorer):
        tree = explorer.explore(0, gamma=np.array([0.0, 1.0]), threshold=0.5)
        # Topic 1: 0→2 (0.5) survives; 0→1 (0.1) pruned; 3 via 2 = 0.45 < 0.5.
        assert set(tree.parents) == {0, 2}

    def test_reverse_direction(self, explorer):
        tree = explorer.explore(
            3, gamma=np.array([1.0, 0.0]), direction="influenced_by", threshold=0.0
        )
        assert tree.direction == "influenced_by"
        assert 0 in tree.parents
        assert tree.probabilities[0] == pytest.approx(0.72)

    def test_default_gamma_uniform(self, explorer):
        tree = explorer.explore(0, threshold=0.0)
        np.testing.assert_allclose(tree.gamma, [0.5, 0.5])

    def test_invalid_direction(self, explorer):
        with pytest.raises(ValidationError, match="direction"):
            explorer.explore(0, direction="sideways")

    def test_invalid_user(self, explorer):
        with pytest.raises(ValidationError):
            explorer.explore(99)

    def test_labels_populated_for_labelled_graph(self, labelled_graph):
        weights = TopicEdgeWeights(labelled_graph, np.full((3, 2), 0.5))
        tree = InfluencePathExplorer(weights).explore(0, threshold=0.0)
        assert tree.label_of(0) == "alice"


class TestPathTreeStructure:
    def test_children_sorted_by_probability(self, tree):
        children = tree.children()
        assert children[0] == [1, 2]  # 0.9 before 0.5

    def test_subtree_size(self, tree):
        assert tree.subtree_size(0) == 4
        assert tree.subtree_size(1) == 2  # 1 and 3
        assert tree.subtree_size(2) == 1

    def test_subtree_size_unknown_node(self, tree):
        with pytest.raises(ValidationError):
            tree.subtree_size(42)

    def test_path_to(self, tree):
        assert tree.path_to(3) == [0, 1, 3]
        assert tree.path_to(0) == [0]

    def test_path_to_unknown(self, tree):
        with pytest.raises(ValidationError):
            tree.path_to(42)

    def test_depth_of(self, tree):
        assert tree.depth_of(0) == 0
        assert tree.depth_of(3) == 2

    def test_paths_through_internal_node(self, tree):
        paths = tree.paths_through(1)
        assert paths == [[0, 1, 3]]

    def test_paths_through_leaf(self, tree):
        assert tree.paths_through(2) == [[0, 2]]

    def test_clusters_are_root_subtrees(self, tree):
        clusters = tree.clusters()
        assert sorted(map(tuple, clusters)) == [(1, 3), (2,)]

    def test_clusters_min_size(self, tree):
        clusters = tree.clusters(min_size=2)
        assert clusters == [[1, 3]]

    def test_to_dict_shape(self, tree):
        payload = tree.to_dict()
        assert payload["root"] == 0
        assert len(payload["nodes"]) == 4
        root_entry = [n for n in payload["nodes"] if n["id"] == 0][0]
        assert root_entry["parent"] is None

    def test_invalid_direction_rejected_in_dataclass(self):
        with pytest.raises(ValidationError):
            PathTree(
                root=0,
                direction="bogus",
                threshold=0.1,
                gamma=np.array([1.0]),
                parents={0: 0},
                probabilities={0: 1.0},
            )

"""Unit tests for repro.im.mia (maximum influence arborescence)."""

import numpy as np
import pytest

from repro.im.mia import MIAModel, mia_im
from repro.propagation.ic import IndependentCascade
from repro.utils.validation import ValidationError


class TestMIAModel:
    def test_line_activation_probabilities(self, line_graph):
        p = 0.5
        model = MIAModel(line_graph, np.full(3, p), threshold=0.0)
        assert model.activation_probability(0, {0}) == 1.0
        assert model.activation_probability(1, {0}) == pytest.approx(p)
        assert model.activation_probability(3, {0}) == pytest.approx(p**3)

    def test_spread_on_line_matches_exact(self, line_graph):
        # On a tree MIA is exact: σ({0}) = 1 + p + p² + p³.
        p = 0.4
        model = MIAModel(line_graph, np.full(3, p), threshold=0.0)
        assert model.spread([0]) == pytest.approx(1 + p + p**2 + p**3)

    def test_diamond_underestimates_union(self, diamond_graph):
        """MIA keeps only the best path, so it lower-bounds the true
        two-path activation probability of the sink."""
        p = 0.6
        model = MIAModel(diamond_graph, np.full(4, p), threshold=0.0)
        ap = model.activation_probability(3, {0})
        exact = 1 - (1 - p * p) ** 2
        assert ap == pytest.approx(p * p)
        assert ap <= exact

    def test_threshold_prunes_members(self, line_graph):
        model = MIAModel(line_graph, np.full(3, 0.3), threshold=0.1)
        # MIIA(3) keeps nodes whose best path into 3 has probability ≥ 0.1:
        # node 2 (0.3) stays; node 1 (0.09) and node 0 (0.027) are pruned.
        members = set(model.arborescence(3))
        assert members == {2, 3}

    def test_seed_in_arborescence_counts(self, line_graph):
        model = MIAModel(line_graph, np.ones(3), threshold=0.0)
        assert model.spread([1]) == pytest.approx(3.0)  # 1, 2, 3

    def test_shape_validation(self, line_graph):
        with pytest.raises(ValidationError):
            MIAModel(line_graph, np.ones(2))

    def test_multiple_seeds_saturate(self, line_graph):
        model = MIAModel(line_graph, np.ones(3), threshold=0.0)
        assert model.spread([0, 1, 2, 3]) == pytest.approx(4.0)

    def test_spread_close_to_monte_carlo_on_sparse_graph(
        self, medium_graph, medium_probabilities
    ):
        model = MIAModel(medium_graph, medium_probabilities, threshold=0.001)
        cascade = IndependentCascade(medium_graph, medium_probabilities)
        mia_spread = model.spread([0, 1])
        mc_spread = cascade.estimate_spread([0, 1], num_samples=2000, seed=0)
        assert mia_spread == pytest.approx(mc_spread, rel=0.35, abs=2.0)


class TestMiaIM:
    def test_hub_selected(self, star_graph):
        result = mia_im(star_graph, np.ones(5), 1, threshold=0.0)
        assert result.seeds == [0]
        assert result.spread == pytest.approx(6.0)

    def test_deterministic(self, medium_graph, medium_probabilities):
        a = mia_im(medium_graph, medium_probabilities, 3, threshold=0.01)
        b = mia_im(medium_graph, medium_probabilities, 3, threshold=0.01)
        assert a.seeds == b.seeds
        assert a.spread == b.spread

    def test_candidates_respected(self, star_graph):
        result = mia_im(star_graph, np.ones(5), 1, candidates=[2, 3])
        assert result.seeds[0] in (2, 3)

    def test_empty_candidates(self, star_graph):
        with pytest.raises(ValidationError, match="empty"):
            mia_im(star_graph, np.ones(5), 1, candidates=[])

    def test_reuses_model(self, star_graph):
        model = MIAModel(star_graph, np.ones(5), threshold=0.0)
        result = mia_im(star_graph, np.ones(5), 2, model=model)
        assert result.seeds[0] == 0

    def test_gains_diminish(self, medium_graph, medium_probabilities):
        result = mia_im(medium_graph, medium_probabilities, 4, threshold=0.01)
        gains = result.marginal_gains
        for earlier, later in zip(gains, gains[1:]):
            assert later <= earlier + 1e-9

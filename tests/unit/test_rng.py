"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        sequence = np.random.SeedSequence(9)
        rng = as_generator(sequence)
        assert isinstance(rng, np.random.Generator)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_deterministic_streams(self):
        first = [g.random(3) for g in spawn_generators(11, 3)]
        second = [g.random(3) for g in spawn_generators(11, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_streams_are_independent(self):
        streams = spawn_generators(5, 2)
        a = streams[0].random(100)
        b = streams[1].random(100)
        assert not np.allclose(a, b)

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(3)
        children = spawn_generators(rng, 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)

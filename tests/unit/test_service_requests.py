"""Unit tests for the typed request/response wire format.

The acceptance bar: every request type round-trips request → JSON →
request losslessly, and every response round-trips response → JSON →
response losslessly.
"""

import json

import pytest

from repro.service import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    RadarRequest,
    TargetedInfluencersRequest,
    ServiceResponse,
    StatsRequest,
    SuggestKeywordsRequest,
    jsonify,
    known_services,
    request_from_dict,
    request_from_json,
)
from repro.utils.validation import ValidationError

ALL_REQUESTS = [
    FindInfluencersRequest(keywords=("data mining",), k=5),
    FindInfluencersRequest(keywords="data mining, clustering"),
    TargetedInfluencersRequest(
        keywords=("data mining",), k=3, audience_keywords="clustering", num_sets=500
    ),
    SuggestKeywordsRequest(user=7, k=2, method="exact"),
    SuggestKeywordsRequest(user="Ada Abadi"),
    ExplorePathsRequest(user=3, keywords=("data mining",), threshold=0.05),
    ExplorePathsRequest(
        user="Bo Chen", direction="influenced_by", max_nodes=50
    ),
    CompleteRequest(prefix="da", kind="keywords", limit=4),
    CompleteRequest(prefix="A", kind="users"),
    RadarRequest(keywords=("em algorithm",)),
    StatsRequest(),
]


class TestRequestRoundTrip:
    @pytest.mark.parametrize(
        "request_obj", ALL_REQUESTS, ids=lambda r: type(r).__name__
    )
    def test_dict_round_trip(self, request_obj):
        rebuilt = request_from_dict(request_obj.to_dict())
        assert rebuilt == request_obj
        assert type(rebuilt) is type(request_obj)

    @pytest.mark.parametrize(
        "request_obj", ALL_REQUESTS, ids=lambda r: type(r).__name__
    )
    def test_json_round_trip(self, request_obj):
        rebuilt = request_from_json(request_obj.to_json())
        assert rebuilt == request_obj

    @pytest.mark.parametrize(
        "request_obj", ALL_REQUESTS, ids=lambda r: type(r).__name__
    )
    def test_wire_form_is_plain_json(self, request_obj):
        payload = json.loads(request_obj.to_json())
        assert payload["service"] == request_obj.service

    def test_known_services_cover_all_types(self):
        assert set(known_services()) == {
            "influencers",
            "targeted",
            "suggest",
            "paths",
            "complete",
            "radar",
            "stats",
        }


class TestKeywordNormalisation:
    def test_string_splits_on_commas(self):
        request = FindInfluencersRequest("data mining,  clustering ")
        assert request.keywords == ("data mining", "clustering")

    def test_sequence_kept_in_order(self):
        request = FindInfluencersRequest(["b", "a"])
        assert request.keywords == ("b", "a")

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="at least one keyword"):
            FindInfluencersRequest("  , ")

    def test_normalisation_is_canonical(self):
        by_string = FindInfluencersRequest("data mining, clustering", k=3)
        by_tuple = FindInfluencersRequest(("data mining", "clustering"), k=3)
        assert by_string == by_tuple
        assert by_string.cache_key() == by_tuple.cache_key()


class TestRequestValidation:
    def test_bad_k(self):
        with pytest.raises(ValidationError):
            FindInfluencersRequest("x", k=0).validate()

    def test_bad_method(self):
        with pytest.raises(ValidationError, match="method"):
            SuggestKeywordsRequest(user=1, method="oracle").validate()

    def test_bad_direction(self):
        with pytest.raises(ValidationError, match="direction"):
            ExplorePathsRequest(user=1, direction="sideways").validate()

    def test_bad_threshold(self):
        with pytest.raises(ValidationError, match="threshold"):
            ExplorePathsRequest(user=1, threshold=2.0).validate()

    def test_bad_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            CompleteRequest(prefix="a", kind="emails").validate()

    def test_bool_user_rejected(self):
        with pytest.raises(ValidationError, match="user"):
            SuggestKeywordsRequest(user=True).validate()


class TestRequestParsingErrors:
    def test_missing_service(self):
        with pytest.raises(ValidationError, match="service"):
            request_from_dict({"keywords": ["x"]})

    def test_unknown_service(self):
        with pytest.raises(ValidationError, match="unknown service"):
            request_from_dict({"service": "teleport"})

    def test_unexpected_field(self):
        with pytest.raises(ValidationError, match="unexpected"):
            request_from_dict(
                {"service": "stats", "surprise": 1}
            )

    def test_not_json(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            request_from_json("{nope")

    def test_not_an_object(self):
        with pytest.raises(ValidationError, match="JSON object"):
            request_from_json("[1, 2]")


class TestCacheKeys:
    def test_stats_is_uncacheable(self):
        assert StatsRequest().cache_key() is None

    def test_distinct_requests_distinct_keys(self):
        a = FindInfluencersRequest("x y", k=3)
        b = FindInfluencersRequest("x y", k=4)
        assert a.cache_key() != b.cache_key()

    def test_key_includes_service(self):
        radar = RadarRequest("data mining")
        find = FindInfluencersRequest("data mining")
        assert radar.cache_key() != find.cache_key()


class TestResponseRoundTrip:
    def test_success_round_trip(self):
        response = ServiceResponse.success(
            "influencers",
            {"seeds": [1, 2], "spread": 3.5, "labels": ["a", "b"]},
        )
        assert ServiceResponse.from_json(response.to_json()) == response

    def test_failure_round_trip(self):
        response = ServiceResponse.failure(
            "suggest",
            "invalid_request",
            "unknown user 'Zed'",
            details={"suggestions": ["Zed A", "Zed B"]},
        )
        rebuilt = ServiceResponse.from_json(response.to_json())
        assert rebuilt == response
        assert rebuilt.error.code == "invalid_request"

    def test_raise_for_error(self):
        response = ServiceResponse.failure("stats", "internal_error", "boom")
        with pytest.raises(ValidationError, match="internal_error"):
            response.raise_for_error()

    def test_success_raise_for_error_passthrough(self):
        response = ServiceResponse.success("stats", {"x": 1.0})
        assert response.raise_for_error() is response


class TestDeterministicForm:
    def test_strips_wall_clock_fields_at_any_depth(self):
        from repro.service import deterministic_form

        slow = ServiceResponse.success(
            "influencers",
            {
                "seeds": [1, 2],
                "elapsed_seconds": 0.123,
                "statistics": {"exact_evaluations": 3.0, "elapsed_seconds": 9.9},
            },
        )
        fast = ServiceResponse(
            service="influencers",
            ok=True,
            payload={
                "seeds": [1, 2],
                "elapsed_seconds": 0.456,
                "statistics": {"exact_evaluations": 3.0, "elapsed_seconds": 0.1},
            },
            latency_ms=42.0,
            cache_hit=True,
        )
        assert deterministic_form(slow) == deterministic_form(fast)
        assert "elapsed_seconds" not in deterministic_form(slow)

    def test_distinguishes_different_content(self):
        from repro.service import deterministic_form

        one = ServiceResponse.success("complete", {"completions": [["a", 1]]})
        two = ServiceResponse.success("complete", {"completions": [["b", 1]]})
        assert deterministic_form(one) != deterministic_form(two)

    def test_errors_are_part_of_the_form(self):
        from repro.service import deterministic_form

        failure = ServiceResponse.failure("complete", "invalid_request", "bad")
        success = ServiceResponse.success("complete", {})
        assert deterministic_form(failure) != deterministic_form(success)
        assert "invalid_request" in deterministic_form(failure)

    def test_form_is_canonical_json(self):
        from repro.service import deterministic_form

        form = deterministic_form(ServiceResponse.success("stats", {"b": 1, "a": 2}))
        assert json.loads(form)  # parseable
        assert form.index('"a"') < form.index('"b"')  # sorted keys


class TestJsonify:
    def test_numpy_conversion(self):
        import numpy as np

        payload = jsonify(
            {"a": np.float64(1.5), "b": np.arange(3), "c": (1, 2), 5: "x"}
        )
        assert payload == {"a": 1.5, "b": [0, 1, 2], "c": [1, 2], "5": "x"}
        json.dumps(payload)  # actually serializable

    def test_unserializable_rejected(self):
        with pytest.raises(ValidationError, match="not JSON-serializable"):
            jsonify({"f": object()})

"""Unit tests for repro.propagation.estimators."""

import numpy as np
import pytest

from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
)
from repro.propagation.rrsets import RRSetCollection


class TestMonteCarloEstimator:
    def test_matches_closed_form(self, line_graph):
        p = 0.5
        estimator = MonteCarloSpreadEstimator(
            line_graph, np.full(3, p), num_samples=4000, seed=0
        )
        exact = 1 + p + p**2 + p**3
        assert estimator.spread([0]) == pytest.approx(exact, rel=0.05)

    def test_invalid_samples(self, line_graph):
        with pytest.raises(Exception):
            MonteCarloSpreadEstimator(line_graph, np.ones(3), num_samples=0)


class TestRRSetEstimator:
    def test_deterministic_repeated_evaluation(
        self, medium_graph, medium_probabilities
    ):
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=500, seed=0
        )
        assert estimator.spread([0, 1]) == estimator.spread([0, 1])

    def test_accepts_existing_collection(self, line_graph):
        collection = RRSetCollection(line_graph, [{0}, {1}])
        estimator = RRSetSpreadEstimator(
            line_graph, np.ones(3), collection=collection
        )
        assert estimator.spread([0]) == pytest.approx(2.0)

    def test_agreement_between_estimators(
        self, medium_graph, medium_probabilities
    ):
        mc = MonteCarloSpreadEstimator(
            medium_graph, medium_probabilities, num_samples=1500, seed=1
        )
        ris = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=6000, seed=2
        )
        seeds = [0, 3, 7]
        assert mc.spread(seeds) == pytest.approx(
            ris.spread(seeds), rel=0.15, abs=1.5
        )

    def test_backend_sampling_deterministic(
        self, medium_graph, medium_probabilities
    ):
        from repro.backend import SerialBackend, ThreadPoolBackend

        serial = RRSetSpreadEstimator(
            medium_graph,
            medium_probabilities,
            num_sets=400,
            seed=5,
            backend=SerialBackend(),
        )
        with ThreadPoolBackend(3) as backend:
            threaded = RRSetSpreadEstimator(
                medium_graph,
                medium_probabilities,
                num_sets=400,
                seed=5,
                backend=backend,
            )
        assert serial.collection.rr_sets == threaded.collection.rr_sets
        assert serial.spread([0, 1]) == threaded.spread([0, 1])

    def test_spread_bounds(self, medium_graph, medium_probabilities):
        """Estimates live in [1, n] for a single valid seed."""
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=800, seed=3
        )
        for node in (0, 5, 11):
            spread = estimator.spread([node])
            assert 0.0 <= spread <= medium_graph.num_nodes

    def test_empty_seed_set_spreads_nothing(
        self, medium_graph, medium_probabilities
    ):
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=200, seed=4
        )
        assert estimator.spread([]) == 0.0

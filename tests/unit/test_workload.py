"""Unit tests for repro.engine.workload."""

import pytest

from repro.engine.workload import (
    LatencyReport,
    QueryWorkload,
    WorkloadConfig,
    run_workload,
)
from repro.service import (
    CompleteRequest,
    OctopusService,
    SuggestKeywordsRequest,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def small_system(citation_dataset):
    from repro.core.octopus import Octopus, OctopusConfig

    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=40,
            num_topic_samples=4,
            topic_sample_rr_sets=200,
            oracle_samples=20,
            seed=90,
        ),
    )


class TestWorkloadConfig:
    def test_defaults_valid(self):
        WorkloadConfig()

    def test_unknown_service_rejected(self):
        with pytest.raises(ValidationError, match="unknown services"):
            WorkloadConfig(mix={"teleport": 1.0})

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(mix={"influencers": -1.0})

    def test_zero_total_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(mix={"influencers": 0.0})

    def test_empty_mix_rejected(self):
        with pytest.raises(ValidationError):
            WorkloadConfig(mix={})


class TestGenerate:
    def test_length_and_services(self, small_system):
        workload = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=50, seed=1)
        )
        assert len(workload) == 50
        services = {request.service for request in workload.queries}
        assert services <= {"influencers", "suggest", "paths", "complete"}

    def test_deterministic(self, small_system):
        a = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=30, seed=2)
        )
        b = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=30, seed=2)
        )
        assert a.queries == b.queries

    def test_mix_respected(self, small_system):
        workload = QueryWorkload.generate(
            small_system,
            WorkloadConfig(
                num_queries=80, mix={"complete": 1.0}, seed=3
            ),
        )
        assert all(
            request.service == "complete" for request in workload.queries
        )

    def test_zipf_skew_repeats_queries(self, small_system):
        workload = QueryWorkload.generate(
            small_system,
            WorkloadConfig(
                num_queries=100,
                mix={"influencers": 1.0},
                zipf_s=2.0,
                seed=4,
            ),
        )
        arguments = [request.keywords for request in workload.queries]
        assert len(set(arguments)) < len(arguments)  # repetition exists

    def test_workload_is_a_replayable_json_log(self, small_system):
        import json

        from repro.service import request_from_dict

        workload = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=25, seed=8)
        )
        log = json.loads(json.dumps(workload.to_dicts()))
        replayed = [request_from_dict(entry) for entry in log]
        assert replayed == workload.queries


class TestRunWorkload:
    def test_report_shape(self, small_system):
        workload = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=40, seed=5)
        )
        report = run_workload(small_system, workload)
        assert isinstance(report, LatencyReport)
        assert report.total_queries == 40
        for stats in report.per_service.values():
            assert stats["p50_ms"] <= stats["p95_ms"] <= stats["max_ms"]

    def test_cache_improves_second_pass(self, small_system):
        service = OctopusService(small_system)
        workload = QueryWorkload.generate(
            service,
            WorkloadConfig(
                num_queries=30, mix={"influencers": 1.0}, zipf_s=2.0, seed=6
            ),
        )
        first = run_workload(service, workload)
        second = run_workload(service, workload)
        assert second.cache_hit_rate >= first.cache_hit_rate
        assert second.cache_hit_rate == 1.0  # every query repeats, all cached
        assert (
            second.per_service["influencers"]["p50_ms"]
            <= first.per_service["influencers"]["p50_ms"] + 1e-6
        )

    def test_errors_counted_not_raised(self, small_system):
        workload = QueryWorkload(
            queries=[
                SuggestKeywordsRequest(user=10_000),
                CompleteRequest(prefix="da"),
            ]
        )
        report = run_workload(small_system, workload)
        assert report.per_service["errors"]["count"] == 1.0
        assert report.per_service["complete"]["count"] == 1.0

    def test_service_stats_reported(self, small_system):
        workload = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=10, seed=9)
        )
        report = run_workload(small_system, workload)
        assert any(key.startswith("service.") for key in report.service_stats)
        payload = report.to_dict()
        assert payload["total_queries"] == 10

    def test_empty_workload_rejected(self, small_system):
        with pytest.raises(ValidationError, match="empty"):
            run_workload(small_system, QueryWorkload(queries=[]))

    def test_report_lines_render(self, small_system):
        workload = QueryWorkload.generate(
            small_system, WorkloadConfig(num_queries=20, seed=7)
        )
        report = run_workload(small_system, workload)
        lines = report.lines()
        assert any("p95" in line for line in lines)
        assert any("cache hit rate" in line for line in lines)

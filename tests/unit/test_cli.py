"""Unit tests for the octopus CLI."""

import json

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("cli") / "dataset"
    code = main(
        [
            "generate",
            "--kind",
            "citation",
            "--out",
            str(directory),
            "--size",
            "120",
            "--seed",
            "3",
        ]
    )
    assert code == 0
    return str(directory)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        arguments = build_parser().parse_args(
            ["generate", "--out", "x", "--kind", "social"]
        )
        assert arguments.kind == "social"

    def test_complete_requires_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["complete", "dir"])

    def test_serve_args(self):
        arguments = build_parser().parse_args(
            ["serve", "dir", "--port", "0", "--executor", "threads"]
        )
        assert arguments.executor == "threads"
        assert arguments.port == 0
        assert arguments.host == "127.0.0.1"

    def test_query_url_without_dataset(self):
        """With --url the dataset positional may be omitted entirely."""
        arguments = build_parser().parse_args(
            ["query", "--url", "http://127.0.0.1:1", '{"service": "stats"}']
        )
        assert arguments.dataset is None
        assert arguments.request == '{"service": "stats"}'

    def test_query_with_dataset_still_parses(self):
        arguments = build_parser().parse_args(["query", "dir", "req"])
        assert arguments.dataset == "dir"
        assert arguments.request == "req"


class TestGenerate:
    def test_generate_social(self, tmp_path, capsys):
        out = tmp_path / "qq"
        code = main(
            ["generate", "--kind", "social", "--out", str(out), "--size", "60"]
        )
        assert code == 0
        assert (out / "dataset.json").exists()
        assert "qq-synthetic" in capsys.readouterr().out


class TestCommands:
    def test_influencers(self, dataset_dir, capsys):
        code = main(
            ["influencers", dataset_dir, "data mining", "-k", "3", "--fast"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "spread" in output
        assert "  1. " in output or "1. " in output

    def test_suggest_by_id(self, dataset_dir, capsys):
        code = main(["suggest", dataset_dir, "0", "-k", "2", "--fast"])
        assert code == 0
        output = capsys.readouterr().out
        assert "keywords :" in output
        assert "dominant topic" in output

    def test_paths_with_json_export(self, dataset_dir, tmp_path, capsys):
        payload_path = tmp_path / "tree.json"
        code = main(
            [
                "paths",
                dataset_dir,
                "0",
                "--threshold",
                "0.05",
                "--json",
                str(payload_path),
                "--fast",
            ]
        )
        assert code == 0
        payload = json.loads(payload_path.read_text())
        assert "nodes" in payload and "links" in payload

    def test_paths_reverse(self, dataset_dir, capsys):
        code = main(
            ["paths", dataset_dir, "50", "--reverse", "--fast"]
        )
        assert code == 0
        assert "influenced_by" in capsys.readouterr().out

    def test_radar(self, dataset_dir, capsys):
        code = main(["radar", dataset_dir, "em algorithm", "--fast"])
        assert code == 0
        assert "machine learning" in capsys.readouterr().out

    def test_complete_keywords(self, dataset_dir, capsys):
        code = main(
            ["complete", dataset_dir, "--keywords", "data", "--fast"]
        )
        assert code == 0
        assert "data mining" in capsys.readouterr().out

    def test_complete_users(self, dataset_dir, capsys):
        code = main(["complete", dataset_dir, "--users", "a", "--fast"])
        assert code == 0
        assert capsys.readouterr().out.strip()

    def test_stats(self, dataset_dir, capsys):
        code = main(["stats", dataset_dir, "--fast"])
        assert code == 0
        assert "graph.num_nodes" in capsys.readouterr().out


class TestQueryCommand:
    def test_query_influencers_json(self, dataset_dir, capsys):
        request = json.dumps(
            {"service": "influencers", "keywords": ["data mining"], "k": 3}
        )
        code = main(["query", dataset_dir, request, "--fast"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True
        assert response["service"] == "influencers"
        assert len(response["payload"]["seeds"]) == 3

    def test_query_stats(self, dataset_dir, capsys):
        code = main(["query", dataset_dir, '{"service": "stats"}', "--fast"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["payload"]["graph.num_nodes"] > 0

    def test_query_error_envelope_and_exit_code(self, dataset_dir, capsys):
        request = json.dumps(
            {"service": "influencers", "keywords": ["definitely not real"]}
        )
        code = main(["query", dataset_dir, request, "--fast"])
        assert code == 2
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is False
        assert response["error"]["code"] == "invalid_request"

    def test_query_malformed_json(self, dataset_dir, capsys):
        code = main(["query", dataset_dir, "{not json", "--fast"])
        assert code == 2
        response = json.loads(capsys.readouterr().out)
        assert response["error"]["code"] == "malformed_request"

    def test_query_batch(self, dataset_dir, capsys):
        batch = json.dumps(
            [
                {"service": "complete", "prefix": "da"},
                {"service": "complete", "prefix": "da"},
                {"service": "stats"},
            ]
        )
        code = main(["query", dataset_dir, batch, "--batch", "--fast"])
        assert code == 0
        responses = json.loads(capsys.readouterr().out)
        assert len(responses) == 3
        assert all(response["ok"] for response in responses)
        assert responses[1]["cache_hit"] is True

    def test_query_request_file(self, dataset_dir, tmp_path, capsys):
        request_path = tmp_path / "request.json"
        request_path.write_text('{"service": "complete", "prefix": "da"}')
        code = main(["query", dataset_dir, f"@{request_path}", "--fast"])
        assert code == 0
        response = json.loads(capsys.readouterr().out)
        assert response["ok"] is True


class TestErrors:
    def test_unknown_keyword_exit_code(self, dataset_dir, capsys):
        code = main(
            ["influencers", dataset_dir, "definitely not a keyword", "--fast"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_user_exit_code(self, dataset_dir, capsys):
        code = main(["suggest", dataset_dir, "Nobody Nowhere", "--fast"])
        assert code == 2

    def test_missing_dataset(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope"), "--fast"])
        assert code == 2


class TestBackendOptions:
    def test_parser_accepts_backend_and_workers(self):
        parser = build_parser()
        arguments = parser.parse_args(
            ["stats", "dir", "--backend", "threads", "--workers", "4"]
        )
        assert arguments.backend == "threads"
        assert arguments.workers == 4

    def test_parser_rejects_unknown_backend(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "dir", "--backend", "quantum"])

    def test_parser_accepts_rr_kernel(self):
        parser = build_parser()
        arguments = parser.parse_args(["stats", "dir", "--rr-kernel", "legacy"])
        assert arguments.rr_kernel == "legacy"
        assert parser.parse_args(["stats", "dir"]).rr_kernel == "vectorized"
        assert (
            parser.parse_args(["stats", "dir", "--rr-kernel", "native"]).rr_kernel
            == "native"
        )

    def test_parser_rejects_unknown_rr_kernel(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["stats", "dir", "--rr-kernel", "cuda"])

    def test_threads_backend_answers_match_worker_counts(
        self, dataset_dir, capsys
    ):
        """--backend threads gives the same answer at any --workers."""
        outputs = []
        for workers in ("1", "3"):
            code = main(
                [
                    "influencers",
                    dataset_dir,
                    "data mining",
                    "-k",
                    "3",
                    "--fast",
                    "--backend",
                    "threads",
                    "--workers",
                    workers,
                ]
            )
            assert code == 0
            captured = capsys.readouterr().out
            # drop the latency line: wall clock is not part of the answer
            outputs.append(
                "\n".join(
                    line
                    for line in captured.splitlines()
                    if not line.startswith("latency")
                )
            )
        assert outputs[0] == outputs[1]

    def test_query_batch_with_workers(self, dataset_dir, capsys):
        request = {"service": "complete", "prefix": "da", "limit": 3}
        code = main(
            [
                "query",
                dataset_dir,
                json.dumps([request, request]),
                "--batch",
                "--fast",
                "--workers",
                "2",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [entry["ok"] for entry in payload] == [True, True]
        assert payload[0]["payload"] == payload[1]["payload"]

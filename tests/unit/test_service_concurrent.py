"""Unit tests for ConcurrentOctopusService (thread and process modes).

The sequential-equivalence matrix lives in ``test_service_dispatcher.py``
(which runs against both executors); this module covers what is *specific*
to concurrency — in-flight de-duplication, failure isolation among
duplicates, the process-mode parent cache/metrics, and lifecycle.
"""

import threading

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    FindInfluencersRequest,
    OctopusService,
    StatsRequest,
    TargetedInfluencersRequest,
)
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def backend(citation_dataset):
    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=30,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        ),
    )


class TestConstruction:
    def test_wraps_bare_octopus_with_kwargs(self, backend):
        with ConcurrentOctopusService(
            backend, workers=2, cache_capacity=7
        ) as executor:
            assert executor.cache.capacity == 7
            assert executor.backend is backend

    def test_rejects_kwargs_with_existing_service(self, backend):
        service = OctopusService(backend)
        with pytest.raises(ValidationError):
            ConcurrentOctopusService(service, cache_capacity=7)

    def test_rejects_unknown_mode(self, backend):
        with pytest.raises(ValidationError):
            ConcurrentOctopusService(backend, mode="fibers")

    def test_rejects_non_service(self):
        with pytest.raises(ValidationError):
            ConcurrentOctopusService(object())

    def test_rejects_nonpositive_workers(self, backend):
        with pytest.raises(ValidationError):
            ConcurrentOctopusService(backend, workers=0)


class TestInFlightDeduplication:
    def test_duplicates_share_one_computation(self, backend):
        service = OctopusService(backend)
        calls = []
        gate = threading.Event()
        original = service._handlers["complete"]

        def slow(request):
            calls.append(request)
            gate.wait(timeout=5.0)
            return original(request)

        service._handlers["complete"] = slow
        try:
            with ConcurrentOctopusService(service, workers=4) as executor:
                futures = [
                    executor.submit(CompleteRequest(prefix="da"))
                    for _ in range(4)
                ]
                gate.set()
                responses = [future.result(timeout=10) for future in futures]
        finally:
            service._handlers["complete"] = original
        assert len(calls) == 1  # one leader computed
        assert all(response.ok for response in responses)
        assert sum(response.cache_hit for response in responses) == 3
        assert all(
            response.payload == responses[0].payload for response in responses
        )
        assert executor.stats()["executor.shared_inflight"] == 3.0

    def test_leader_failure_not_shared(self, backend):
        service = OctopusService(backend)
        calls = []
        gate = threading.Event()

        def broken(request):
            calls.append(request)
            gate.wait(timeout=5.0)
            raise RuntimeError("index on fire")

        original = service._handlers["complete"]
        service._handlers["complete"] = broken
        try:
            with ConcurrentOctopusService(service, workers=4) as executor:
                futures = [
                    executor.submit(CompleteRequest(prefix="da"))
                    for _ in range(3)
                ]
                gate.set()
                responses = [future.result(timeout=10) for future in futures]
        finally:
            service._handlers["complete"] = original
        # every duplicate recomputed for itself; nobody was handed a failure
        assert len(calls) == 3
        assert all(not response.ok for response in responses)
        assert all(not response.cache_hit for response in responses)
        assert all(
            response.error.code == "internal_error" for response in responses
        )

    def test_uncacheable_requests_never_deduplicate(self, backend):
        with ConcurrentOctopusService(backend, workers=2) as executor:
            first = executor.execute(StatsRequest())
            second = executor.execute(StatsRequest())
            assert first.ok and second.ok
            assert executor.stats()["executor.shared_inflight"] == 0.0

    def test_concurrent_submissions_from_many_threads(self, backend):
        with ConcurrentOctopusService(backend, workers=4) as executor:
            request = FindInfluencersRequest("data mining", k=2)
            responses = []
            lock = threading.Lock()

            def client() -> None:
                response = executor.execute(request)
                with lock:
                    responses.append(response)

            pool = [threading.Thread(target=client) for _ in range(6)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            assert all(response.ok for response in responses)
            payloads = [response.payload for response in responses]
            assert all(payload == payloads[0] for payload in payloads)
            # exactly one computation: everyone else shared in flight or hit
            # the LRU cache afterwards
            assert sum(not response.cache_hit for response in responses) == 1


class TestProcessMode:
    def test_executes_and_caches_at_the_parent(self, backend):
        service = OctopusService(backend)
        with ConcurrentOctopusService(
            service, workers=2, mode="processes"
        ) as executor:
            request = TargetedInfluencersRequest(
                keywords="data mining", k=2, num_sets=150
            )
            first = executor.execute(request)
            second = executor.execute(request)
            assert first.ok
            assert not first.cache_hit
            assert second.cache_hit  # served by the parent-side cache
            assert second.payload["seeds"] == first.payload["seeds"]
            snapshot = executor.metrics.snapshot()
            assert snapshot["service.targeted.requests"] == 2.0
            assert snapshot["service.targeted.cache_hits"] == 1.0

    def test_batch_preserves_order_and_isolates_failures(self, backend):
        with ConcurrentOctopusService(
            backend, workers=2, mode="processes"
        ) as executor:
            responses = executor.execute_batch(
                [
                    CompleteRequest(prefix="da"),
                    {"service": "teleport"},
                    FindInfluencersRequest("data mining", k=2),
                ]
            )
            assert [response.ok for response in responses] == [True, False, True]
            assert responses[1].error.code == "malformed_request"
            assert [response.service for response in responses] == [
                "complete",
                "teleport",
                "influencers",
            ]

    def test_parent_cache_clear_reaches_workers(self, backend):
        """Forked workers must not serve results the parent has dropped.

        Worker replicas have their result cache disabled at pool init, so
        after a parent-side ``cache.clear()`` a repeated query really
        recomputes instead of coming back as a stale worker-cache hit.
        """
        service = OctopusService(backend)
        with ConcurrentOctopusService(
            service, workers=1, mode="processes"
        ) as executor:
            request = TargetedInfluencersRequest(
                keywords="data mining", k=2, num_sets=150
            )
            first = executor.execute(request)
            assert first.ok and not first.cache_hit
            service.cache.clear()
            again = executor.execute(request)
            assert again.ok
            assert not again.cache_hit  # recomputed, not a stale replica hit
            assert again.payload["seeds"] == first.payload["seeds"]

    def test_stats_report_mode(self, backend):
        with ConcurrentOctopusService(
            backend, workers=2, mode="processes"
        ) as executor:
            executor.execute(CompleteRequest(prefix="da"))
            stats = executor.stats()
            assert stats["executor.process_mode"] == 1.0
            assert stats["executor.workers"] == 2.0


class TestLifecycle:
    def test_close_is_idempotent(self, backend):
        executor = ConcurrentOctopusService(backend, workers=2)
        assert executor.execute(CompleteRequest(prefix="da")).ok
        executor.close()
        executor.close()
        assert executor.closed

    def test_workload_engine_accepts_executor(self, backend):
        from repro.engine.workload import (
            QueryWorkload,
            WorkloadConfig,
            run_workload,
        )

        service = OctopusService(backend)
        workload = QueryWorkload.generate(
            service, WorkloadConfig(num_queries=12, seed=5)
        )
        with ConcurrentOctopusService(service, workers=2) as executor:
            report = run_workload(executor, workload)
        assert report.total_queries == 12
        answered = sum(
            stats["count"]
            for name, stats in report.per_service.items()
            if name != "errors"
        )
        errors = report.per_service.get("errors", {}).get("count", 0)
        assert answered + errors == 12

    def test_run_workload_workers_parameter(self, backend):
        from repro.engine.workload import (
            QueryWorkload,
            WorkloadConfig,
            run_workload,
        )

        service = OctopusService(backend)
        workload = QueryWorkload.generate(
            service, WorkloadConfig(num_queries=10, seed=6)
        )
        report = run_workload(service, workload, workers=3)
        assert report.total_queries == 10

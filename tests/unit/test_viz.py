"""Unit tests for repro.viz (d3 exports, radar data, text rendering)."""

import json

import numpy as np
import pytest

from repro.core.paths import InfluencePathExplorer
from repro.topics.edges import TopicEdgeWeights
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError
from repro.viz.d3 import path_tree_to_d3_force, path_tree_to_d3_hierarchy
from repro.viz.radar import radar_chart_data
from repro.viz.text import render_path_tree, render_radar


@pytest.fixture
def tree(diamond_graph):
    weights = TopicEdgeWeights(
        diamond_graph,
        np.array([[0.9, 0.1], [0.5, 0.5], [0.8, 0.2], [0.1, 0.9]]),
    )
    explorer = InfluencePathExplorer(weights)
    return explorer.explore(0, gamma=np.array([1.0, 0.0]), threshold=0.01)


@pytest.fixture
def model():
    vocab = Vocabulary(["apple", "banana"])
    return TopicModel(vocab, np.array([[0.9, 0.1], [0.1, 0.9]]))


class TestD3Force:
    def test_payload_is_json_serialisable(self, tree):
        payload = path_tree_to_d3_force(tree)
        json.dumps(payload)

    def test_node_and_link_counts(self, tree):
        payload = path_tree_to_d3_force(tree)
        assert len(payload["nodes"]) == tree.size
        assert len(payload["links"]) == tree.size - 1

    def test_root_flagged(self, tree):
        payload = path_tree_to_d3_force(tree)
        roots = [n for n in payload["nodes"] if n["root"]]
        assert len(roots) == 1
        assert roots[0]["id"] == 0

    def test_sizes_scale_with_probability(self, tree):
        payload = path_tree_to_d3_force(tree, size_scale=10.0, min_size=0.5)
        by_id = {n["id"]: n for n in payload["nodes"]}
        assert by_id[1]["size"] > by_id[3]["size"]  # 0.9 vs 0.72

    def test_links_follow_influence_direction(self, tree):
        payload = path_tree_to_d3_force(tree)
        for link in payload["links"]:
            assert tree.parents[link["target"]] == link["source"]

    def test_clusters_assigned(self, tree):
        payload = path_tree_to_d3_force(tree)
        non_root_clusters = {
            n["cluster"] for n in payload["nodes"] if not n["root"]
        }
        assert -1 not in non_root_clusters

    def test_reverse_direction_flips_links(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.full((4, 2), 0.5))
        tree = InfluencePathExplorer(weights).explore(
            3, direction="influenced_by", threshold=0.0
        )
        payload = path_tree_to_d3_force(tree)
        for link in payload["links"]:
            # rendered along the original influence direction: source → target
            assert tree.parents[link["source"]] == link["target"]


class TestD3Hierarchy:
    def test_root_and_children(self, tree):
        payload = path_tree_to_d3_hierarchy(tree)
        assert payload["id"] == 0
        child_ids = {child["id"] for child in payload["children"]}
        assert child_ids == {1, 2}

    def test_subtree_sizes_attached(self, tree):
        payload = path_tree_to_d3_hierarchy(tree)
        assert payload["subtree_size"] == tree.size

    def test_json_serialisable(self, tree):
        json.dumps(path_tree_to_d3_hierarchy(tree))


class TestRadar:
    def test_payload(self, model):
        payload = radar_chart_data(model, ["apple"], ["fruit-a", "fruit-b"])
        assert payload["axes"] == ["fruit-a", "fruit-b"]
        assert payload["dominant"] == "fruit-a"
        assert sum(payload["values"]) == pytest.approx(1.0)
        json.dumps(payload)

    def test_accepts_word_ids(self, model):
        payload = radar_chart_data(model, [1], ["a", "b"])
        assert payload["keywords"] == ["banana"]
        assert payload["dominant"] == "b"

    def test_topic_name_count_checked(self, model):
        with pytest.raises(ValidationError):
            radar_chart_data(model, ["apple"], ["only-one"])


class TestTextRendering:
    def test_render_tree_contains_labels(self, tree):
        text = render_path_tree(tree)
        assert "node-0" in text
        assert "→" in text

    def test_render_tree_depth_cap(self, tree):
        text = render_path_tree(tree, max_depth=1, max_children=1)
        assert "more" in text

    def test_render_radar(self, model):
        payload = radar_chart_data(model, ["apple"], ["a", "b"])
        text = render_radar(payload)
        assert "dominant topic: a" in text
        assert "#" in text

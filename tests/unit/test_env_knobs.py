"""Unit tests for repro.utils.env: validated REPRO_* knob parsing.

The contract under test: recognized spellings parse, unset means the
documented default, and anything else raises one clear ValidationError
naming the knob — never a raw ValueError traceback and never a silently
wrong transport or kernel.
"""

import pytest

from repro.propagation import native
from repro.utils.env import env_positive_int, env_switch
from repro.utils.validation import ValidationError


class TestEnvSwitch:
    def test_on_off_and_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SWITCH", "on")
        assert env_switch("REPRO_TEST_SWITCH", on=("", "on"), off=("off",))
        monkeypatch.setenv("REPRO_TEST_SWITCH", "OFF")
        assert not env_switch("REPRO_TEST_SWITCH", on=("", "on"), off=("off",))
        monkeypatch.delenv("REPRO_TEST_SWITCH")
        assert env_switch("REPRO_TEST_SWITCH", on=("", "on"), off=("off",))

    def test_whitespace_and_case_are_forgiven(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SWITCH", "  On ")
        assert env_switch("REPRO_TEST_SWITCH", on=("", "on"), off=("off",))

    def test_unrecognized_value_raises_with_accepted_spellings(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_TEST_SWITCH", "maybe")
        with pytest.raises(ValidationError) as excinfo:
            env_switch("REPRO_TEST_SWITCH", on=("", "on"), off=("off",))
        message = str(excinfo.value)
        assert "REPRO_TEST_SWITCH" in message
        assert "'maybe'" in message
        assert "on" in message and "off" in message


class TestEnvPositiveInt:
    def test_unset_and_empty_mean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_BYTES", raising=False)
        assert env_positive_int("REPRO_TEST_BYTES", 77) == 77
        monkeypatch.setenv("REPRO_TEST_BYTES", "  ")
        assert env_positive_int("REPRO_TEST_BYTES", 77) == 77

    def test_valid_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_BYTES", "4096")
        assert env_positive_int("REPRO_TEST_BYTES", 77) == 4096

    @pytest.mark.parametrize("bad", ["abc", "1.5", "-3", "0"])
    def test_invalid_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv("REPRO_TEST_BYTES", bad)
        with pytest.raises(ValidationError, match="REPRO_TEST_BYTES"):
            env_positive_int("REPRO_TEST_BYTES", 77)


class TestNativeKnob:
    def test_unrecognized_repro_native_raises(self, monkeypatch):
        monkeypatch.setattr(native, "_FORCED_FALLBACK", None)
        monkeypatch.setenv("REPRO_NATIVE", "2")
        with pytest.raises(ValidationError, match="REPRO_NATIVE"):
            native.use_compiled()

    def test_recognized_values_select_a_path(self, monkeypatch):
        monkeypatch.setattr(native, "_FORCED_FALLBACK", None)
        for value in ("0", "off", "fallback"):
            monkeypatch.setenv("REPRO_NATIVE", value)
            assert not native.use_compiled()
            assert native.kernel_provenance() == "native-fallback"
        monkeypatch.setenv("REPRO_NATIVE", "1")
        assert native.use_compiled() == native.HAVE_COMPILED

    def test_attribute_override_bypasses_environment(self, monkeypatch):
        # Tests pin native._FORCED_FALLBACK directly; the env must not be
        # consulted (even an invalid value) while the override is set.
        monkeypatch.setenv("REPRO_NATIVE", "2")
        monkeypatch.setattr(native, "_FORCED_FALLBACK", True)
        assert not native.use_compiled()

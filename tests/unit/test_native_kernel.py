"""Contracts specific to the ``native`` RR kernel.

The shared kernel contracts — exact world-enumeration distribution, seed
stability across serial/threads/processes at workers 1/2/4 — run over
``native`` in ``test_rr_kernels.py`` alongside the other kernels.  This
module covers what is unique to ``native``:

* the splitmix64 coin stream is counter-based, so call-size interleaving
  (per level in NumPy, per edge in C) cannot change the draws;
* the compiled extension and the pure-Python fallback are draw-for-draw
  **bitwise** identical, all the way up to service
  ``deterministic_form()`` bytes;
* contiguous chunk-range partitions — the cluster coordinator's shard
  seam — concatenate to the serial batch at 1/2/4 shards;
* the compiled greedy cover-update preserves the exact selection and
  tie-break sequence;
* kernel provenance strings and the ``REPRO_NATIVE`` escape hatch.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.backend import SerialBackend
from repro.backend.base import rr_chunk_plan
from repro.cluster.merge import partition_contiguous
from repro.graph.digraph import SocialGraph
from repro.propagation import native
from repro.propagation.native import (
    HAVE_COMPILED,
    SplitMix64Stream,
    kernel_provenance,
    sample_rr_chunk,
    use_compiled,
)
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import RRSetCollection

needs_compiled = pytest.mark.skipif(
    not HAVE_COMPILED,
    reason="compiled _rrnative extension not built in this environment",
)


def _reference_splitmix64(seed: int, count: int) -> list:
    """Scalar splitmix64 (Steele, Lea & Flood 2014), straight off the paper."""
    mask = (1 << 64) - 1
    state = seed
    out = []
    for _ in range(count):
        state = (state + 0x9E3779B97F4A7C15) & mask
        z = state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
        z = z ^ (z >> 31)
        out.append((z >> 11) * 2.0**-53)
    return out


class TestSplitMix64Stream:
    def test_matches_scalar_reference(self):
        stream = SplitMix64Stream(0xDEADBEEF)
        np.testing.assert_array_equal(
            stream.random(32), _reference_splitmix64(0xDEADBEEF, 32)
        )

    def test_call_size_invariance(self):
        """Drawing 100 at once == drawing 7 + 13 + 80 (C vs NumPy seam)."""
        whole = SplitMix64Stream(424242).random(100)
        split = SplitMix64Stream(424242)
        parts = np.concatenate(
            [split.random(7), split.random(13), split.random(80)]
        )
        np.testing.assert_array_equal(whole, parts)

    def test_unit_interval(self):
        draws = SplitMix64Stream(7).random(4096)
        assert draws.min() >= 0.0
        assert draws.max() < 1.0
        # 53-bit mantissas actually spread over the interval
        assert draws.std() > 0.2

    def test_zero_count(self):
        assert SplitMix64Stream(1).random(0).size == 0


class TestProvenance:
    def test_provenance_matches_dispatch(self):
        assert kernel_provenance() in ("native-compiled", "native-fallback")
        expected = "native-compiled" if use_compiled() else "native-fallback"
        assert kernel_provenance() == expected

    def test_forced_fallback_flag(self, monkeypatch):
        monkeypatch.setattr(native, "_FORCED_FALLBACK", True)
        assert not use_compiled()
        assert kernel_provenance() == "native-fallback"

    def test_env_knob_forces_fallback_in_fresh_interpreter(self):
        """``REPRO_NATIVE=0`` downgrades provenance without code changes."""
        env = dict(os.environ, REPRO_NATIVE="0")
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        result = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.propagation.native import kernel_provenance;"
                "print(kernel_provenance())",
            ],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == "native-fallback"


class TestCompiledFallbackIdentity:
    """The compiled core and the NumPy twin emit the same bytes."""

    def _chunk(self, graph, probabilities, forced, monkeypatch, roots=None):
        monkeypatch.setattr(native, "_FORCED_FALLBACK", forced)
        rng = np.random.default_rng(5)
        return sample_rr_chunk(graph, probabilities, 200, rng, roots)

    @needs_compiled
    def test_chunk_draws_identical(
        self, medium_graph, medium_probabilities, monkeypatch
    ):
        compiled = self._chunk(
            medium_graph, medium_probabilities, False, monkeypatch
        )
        fallback = self._chunk(
            medium_graph, medium_probabilities, True, monkeypatch
        )
        np.testing.assert_array_equal(compiled[0], fallback[0])
        np.testing.assert_array_equal(compiled[1], fallback[1])

    @needs_compiled
    def test_chunk_draws_identical_with_fixed_roots(
        self, medium_graph, medium_probabilities, monkeypatch
    ):
        roots = np.arange(200, dtype=np.int64) % medium_graph.num_nodes
        compiled = self._chunk(
            medium_graph, medium_probabilities, False, monkeypatch, roots
        )
        fallback = self._chunk(
            medium_graph, medium_probabilities, True, monkeypatch, roots
        )
        np.testing.assert_array_equal(compiled[0], fallback[0])
        np.testing.assert_array_equal(compiled[1], fallback[1])

    @needs_compiled
    def test_backend_batches_identical(
        self, medium_graph, medium_probabilities, monkeypatch
    ):
        batches = []
        for forced in (False, True):
            monkeypatch.setattr(native, "_FORCED_FALLBACK", forced)
            batches.append(
                SerialBackend().sample_rr_sets_packed(
                    medium_graph,
                    medium_probabilities,
                    300,
                    seed=17,
                    kernel="native",
                )
            )
        np.testing.assert_array_equal(batches[0].nodes, batches[1].nodes)
        np.testing.assert_array_equal(batches[0].offsets, batches[1].offsets)

    @needs_compiled
    def test_greedy_selection_identical(
        self, medium_graph, medium_probabilities, monkeypatch
    ):
        """Sampling *and* the cover-update inner loop, end to end."""
        results = []
        for forced in (False, True):
            monkeypatch.setattr(native, "_FORCED_FALLBACK", forced)
            collection = RRSetCollection.sample(
                medium_graph,
                medium_probabilities,
                800,
                seed=23,
                kernel="native",
            )
            results.append(collection.greedy_max_cover(8))
        assert results[0][0] == results[1][0]  # seed lists, in order
        assert results[0][1] == results[1][1]  # spreads, exactly


class TestShardPartitionStability:
    """Contiguous chunk ranges — the cluster seam — recombine exactly.

    This simulates what :class:`repro.cluster.coordinator.ClusterCoordinator`
    does for the distributed cover path: one chunk plan, split into
    contiguous ranges per shard, each range sampled independently, results
    concatenated in plan order.  At any shard count the bytes must equal
    the serial backend's batch.
    """

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_partitioned_sampling_matches_serial(
        self, medium_graph, medium_probabilities, shards
    ):
        reference = SerialBackend().sample_rr_sets_packed(
            medium_graph,
            medium_probabilities,
            300,
            seed=21,
            chunk_size=64,
            kernel="native",
        )
        plan = rr_chunk_plan(300, 64, np.random.SeedSequence(21), None)
        payloads = []
        for low, high in partition_contiguous(len(plan), shards):
            for count, child, chunk_roots in plan[low:high]:
                assert chunk_roots is None
                rng = np.random.default_rng(child)
                payloads.append(
                    sample_rr_chunk(
                        medium_graph, medium_probabilities, count, rng
                    )
                )
        recombined = PackedRRSets.from_chunks(
            medium_graph.num_nodes, payloads
        )
        np.testing.assert_array_equal(recombined.nodes, reference.nodes)
        np.testing.assert_array_equal(recombined.offsets, reference.offsets)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_partitioned_sampling_with_root_cycle(
        self, medium_graph, medium_probabilities, shards
    ):
        """The weighted/targeted path pre-assigns roots per chunk slice."""
        root_cycle = [3, 1, 4, 1, 5, 9, 2, 6]
        reference = SerialBackend().sample_rr_sets_packed(
            medium_graph,
            medium_probabilities,
            300,
            seed=34,
            roots=root_cycle,
            chunk_size=64,
            kernel="native",
        )
        plan = rr_chunk_plan(300, 64, np.random.SeedSequence(34), root_cycle)
        payloads = []
        for low, high in partition_contiguous(len(plan), shards):
            for count, child, chunk_roots in plan[low:high]:
                rng = np.random.default_rng(child)
                payloads.append(
                    sample_rr_chunk(
                        medium_graph,
                        medium_probabilities,
                        count,
                        rng,
                        np.asarray(chunk_roots, dtype=np.int64),
                    )
                )
        recombined = PackedRRSets.from_chunks(
            medium_graph.num_nodes, payloads
        )
        np.testing.assert_array_equal(recombined.nodes, reference.nodes)
        np.testing.assert_array_equal(recombined.offsets, reference.offsets)


class TestNativeAgreesWithVectorizedWhenDrawsCannotMatter:
    """With 0/1 probabilities the coin stream is irrelevant: both
    frontier-ordered kernels must emit byte-identical packed arrays, and
    greedy selection over them must pick the same seeds with tied spreads.
    """

    @pytest.fixture(scope="class")
    def sure_graph(self):
        return SocialGraph.from_edges(
            6, [(0, 2), (1, 2), (2, 4), (3, 4), (4, 5), (0, 5)]
        )

    def test_packed_arrays_identical_on_sure_edges(self, sure_graph):
        roots = list(range(6))
        batches = {}
        for kernel in ("vectorized", "native"):
            batches[kernel] = SerialBackend().sample_rr_sets_packed(
                sure_graph,
                np.ones(6),
                60,
                seed=2,
                roots=roots,
                kernel=kernel,
            )
        np.testing.assert_array_equal(
            batches["native"].nodes, batches["vectorized"].nodes
        )
        np.testing.assert_array_equal(
            batches["native"].offsets, batches["vectorized"].offsets
        )

    def test_greedy_seeds_identical_on_sure_edges(self, sure_graph):
        selections = {}
        for kernel in ("vectorized", "legacy", "native"):
            collection = RRSetCollection.sample(
                sure_graph,
                np.ones(6),
                60,
                seed=2,
                roots=list(range(6)),
                kernel=kernel,
            )
            selections[kernel] = collection.greedy_max_cover(2)
        assert selections["native"] == selections["vectorized"]
        # legacy packs members in set-iteration order, but selection and
        # spread are order-free facts and must still tie exactly
        assert selections["native"][0] == selections["legacy"][0]
        assert selections["native"][1] == selections["legacy"][1]

    def test_blocked_edges_give_singletons(self, sure_graph):
        rng = np.random.default_rng(0)
        nodes, offsets = sample_rr_chunk(
            sure_graph,
            np.zeros(6),
            6,
            rng,
            np.arange(6, dtype=np.int64),
        )
        np.testing.assert_array_equal(nodes, np.arange(6))
        np.testing.assert_array_equal(offsets, np.arange(7))

    def test_single_node_graph(self):
        graph = SocialGraph.from_edges(1, [])
        rng = np.random.default_rng(3)
        nodes, offsets = sample_rr_chunk(
            graph, np.empty(0), 5, rng, np.zeros(5, dtype=np.int64)
        )
        np.testing.assert_array_equal(nodes, np.zeros(5, dtype=np.int64))
        np.testing.assert_array_equal(offsets, np.arange(6))


class TestServiceBytesAcrossPaths:
    """``deterministic_form`` bytes survive the compiled/fallback switch."""

    @pytest.fixture(scope="class")
    def small_dataset(self):
        from repro.datasets.citation import CitationNetworkGenerator

        return CitationNetworkGenerator(
            num_researchers=120,
            citations_per_paper=3,
            papers_per_author=2,
            seed=11,
        ).generate()

    @needs_compiled
    def test_influencer_response_bytes_identical(
        self, small_dataset, monkeypatch
    ):
        from repro.core.octopus import Octopus, OctopusConfig
        from repro.service import (
            FindInfluencersRequest,
            OctopusService,
            deterministic_form,
        )

        forms = []
        for forced in (False, True):
            monkeypatch.setattr(native, "_FORCED_FALLBACK", forced)
            config = OctopusConfig(
                num_sketches=20,
                num_topic_samples=3,
                topic_sample_rr_sets=120,
                oracle_samples=10,
                rr_kernel="native",
                seed=91,
            )
            service = OctopusService(
                Octopus.from_dataset(small_dataset, config=config)
            )
            response = service.execute(
                FindInfluencersRequest("data mining", k=3)
            )
            assert response.ok
            forms.append(deterministic_form(response))
        assert forms[0] == forms[1]

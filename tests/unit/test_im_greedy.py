"""Unit tests for repro.im.greedy (CELF lazy greedy)."""

import numpy as np
import pytest

from repro.im.greedy import greedy_im
from repro.propagation.estimators import RRSetSpreadEstimator
from repro.utils.validation import ValidationError


class TestGreedyIM:
    def test_picks_obvious_hub(self, star_graph):
        result = greedy_im(star_graph, np.ones(5), 1, num_samples=20, seed=0)
        assert result.seeds == [0]
        assert result.spread == pytest.approx(6.0)

    def test_k_exceeding_nodes(self, line_graph):
        result = greedy_im(line_graph, np.zeros(3), 10, num_samples=5, seed=0)
        assert len(result.seeds) == 4
        assert len(set(result.seeds)) == 4

    def test_lazy_matches_plain_greedy_with_deterministic_oracle(
        self, medium_graph, medium_probabilities
    ):
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=2000, seed=1
        )
        lazy = greedy_im(
            medium_graph, medium_probabilities, 3, estimator=estimator, lazy=True
        )
        plain = greedy_im(
            medium_graph, medium_probabilities, 3, estimator=estimator, lazy=False
        )
        assert lazy.seeds == plain.seeds
        assert lazy.spread == pytest.approx(plain.spread)

    def test_lazy_uses_fewer_evaluations(self, medium_graph, medium_probabilities):
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=1000, seed=2
        )
        lazy = greedy_im(
            medium_graph, medium_probabilities, 3, estimator=estimator, lazy=True
        )
        plain = greedy_im(
            medium_graph, medium_probabilities, 3, estimator=estimator, lazy=False
        )
        assert lazy.evaluations < plain.evaluations

    def test_candidate_restriction(self, star_graph):
        result = greedy_im(
            star_graph, np.ones(5), 1, candidates=[1, 2], num_samples=5, seed=0
        )
        assert result.seeds[0] in (1, 2)

    def test_invalid_candidate(self, star_graph):
        with pytest.raises(ValidationError):
            greedy_im(star_graph, np.ones(5), 1, candidates=[99])

    def test_empty_candidates(self, star_graph):
        with pytest.raises(ValidationError, match="empty"):
            greedy_im(star_graph, np.ones(5), 1, candidates=[])

    def test_invalid_k(self, star_graph):
        with pytest.raises(ValidationError):
            greedy_im(star_graph, np.ones(5), 0)

    def test_marginal_gains_diminish_with_exact_oracle(self, diamond_graph):
        estimator = RRSetSpreadEstimator(
            diamond_graph, np.ones(4), num_sets=100, seed=0
        )
        result = greedy_im(diamond_graph, np.ones(4), 3, estimator=estimator)
        gains = result.marginal_gains
        for earlier, later in zip(gains, gains[1:]):
            assert later <= earlier + 1e-9

    def test_spread_at_least_best_singleton(self, medium_graph, medium_probabilities):
        estimator = RRSetSpreadEstimator(
            medium_graph, medium_probabilities, num_sets=1500, seed=3
        )
        result = greedy_im(
            medium_graph, medium_probabilities, 2, estimator=estimator
        )
        best_single = max(
            estimator.spread([node]) for node in range(medium_graph.num_nodes)
        )
        assert result.spread >= best_single - 1e-9

"""Meta-tests on the public API surface.

A production library's contract: every public package exports what its
``__all__`` promises, and every public item carries a docstring.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.utils",
    "repro.graph",
    "repro.topics",
    "repro.propagation",
    "repro.im",
    "repro.core",
    "repro.index",
    "repro.datasets",
    "repro.viz",
    "repro.engine",
    "repro.service",
    "repro.server",
    "repro.cluster",
    "repro.gateway",
    "repro.obs",
]

MODULES = [
    "repro.cli",
    "repro.cluster.coordinator",
    "repro.cluster.merge",
    "repro.cluster.protocol",
    "repro.cluster.worker",
    "repro.core.besteffort",
    "repro.core.bounds",
    "repro.core.dynamic",
    "repro.core.influencer_index",
    "repro.core.octopus",
    "repro.core.paths",
    "repro.core.query",
    "repro.core.suggestion",
    "repro.core.targeted",
    "repro.core.topic_samples",
    "repro.datasets.loaders",
    "repro.engine.workload",
    "repro.gateway.admission",
    "repro.gateway.http",
    "repro.gateway.limits",
    "repro.graph.digraph",
    "repro.server.client",
    "repro.server.http",
    "repro.server.wire",
    "repro.service.dispatcher",
    "repro.service.middleware",
    "repro.service.requests",
    "repro.service.responses",
    "repro.im.mia",
    "repro.obs.histogram",
    "repro.obs.prometheus",
    "repro.obs.trace",
    "repro.propagation.kernels",
    "repro.propagation.packed",
    "repro.propagation.rrsets",
    "repro.topics.em",
    "repro.topics.model",
]


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_module_imports_and_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} is missing a module docstring"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_all_entries_exist(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for item in exported:
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", PACKAGES + MODULES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for item in exported:
        obj = getattr(module, item)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name}.{item} is missing a docstring"
            if inspect.isclass(obj):
                for method_name, method in inspect.getmembers(
                    obj, predicate=inspect.isfunction
                ):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    assert method.__doc__, (
                        f"{name}.{item}.{method_name} is missing a docstring"
                    )


def test_version_exposed():
    import repro

    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


def test_top_level_quickstart_names():
    """The README quickstart's imports must keep working."""
    from repro import (  # noqa: F401
        CitationNetworkGenerator,
        Octopus,
        OctopusConfig,
        SocialNetworkGenerator,
    )


def test_top_level_service_and_engine_names():
    """The service/engine layers are reachable without deep imports."""
    from repro import (  # noqa: F401
        FindInfluencersRequest,
        LatencyReport,
        OctopusService,
        QueryWorkload,
        ServiceError,
        ServiceResponse,
        WorkloadConfig,
        request_from_dict,
        request_from_json,
        run_workload,
    )


def test_top_level_server_names():
    """The HTTP wire transport is reachable without deep imports."""
    from repro import (  # noqa: F401
        OctopusClient,
        OctopusHTTPServer,
        OctopusTransportError,
        serve_in_background,
    )

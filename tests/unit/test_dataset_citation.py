"""Unit tests for repro.datasets.citation."""

import numpy as np
import pytest

from repro.datasets.citation import (
    RESEARCH_TOPICS,
    CitationNetworkGenerator,
    build_topic_model,
)


class TestBuildTopicModel:
    def test_columns_normalised(self):
        _vocab, model = build_topic_model(RESEARCH_TOPICS)
        np.testing.assert_allclose(
            model.word_given_topic.sum(axis=0), 1.0, atol=1e-9
        )

    def test_own_keywords_dominate(self):
        vocab, model = build_topic_model(RESEARCH_TOPICS)
        for topic, (_name, words) in enumerate(RESEARCH_TOPICS):
            for word in words[:3]:
                assert model.topic_profile_of_word(word).argmax() == topic

    def test_vocabulary_frozen(self):
        vocab, _model = build_topic_model(RESEARCH_TOPICS)
        assert vocab.frozen

    def test_all_words_have_positive_probability(self):
        _vocab, model = build_topic_model(RESEARCH_TOPICS)
        assert np.all(model.word_given_topic > 0)


class TestGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return CitationNetworkGenerator(
            num_researchers=150,
            citations_per_paper=3,
            papers_per_author=2,
            seed=10,
        ).generate()

    def test_sizes(self, dataset):
        assert dataset.graph.num_nodes == 150
        assert len(dataset.items) == 150 * 2
        assert dataset.num_topics == len(RESEARCH_TOPICS)

    def test_graph_labelled_with_names(self, dataset):
        assert dataset.graph.labels is not None
        assert len(set(dataset.graph.labels)) == 150

    def test_ground_truth_present(self, dataset):
        assert dataset.true_topic_model is not None
        assert dataset.true_edge_weights is not None
        assert dataset.node_affinities.shape == (150, len(RESEARCH_TOPICS))

    def test_items_reference_real_edges(self, dataset):
        for item in dataset.items[:100]:
            for event in item.events:
                assert dataset.graph.has_edge(event.source, event.target)

    def test_item_keywords_within_vocabulary(self, dataset):
        vocab_size = len(dataset.vocabulary)
        for item in dataset.items:
            assert all(0 <= w < vocab_size for w in item.keywords)

    def test_user_keywords_match_items(self, dataset):
        assert set(dataset.user_keywords) <= set(range(150))
        assert all(words for words in dataset.user_keywords.values())

    def test_activation_rate_consistent_with_model(self, dataset):
        """Observed activation frequency should match the planted
        probabilities in aggregate (law of large numbers)."""
        total_expected = 0.0
        total_observed = 0
        total_events = 0
        weights = dataset.true_edge_weights.weights
        graph = dataset.graph
        for item in dataset.items:
            if not item.events:
                continue
            # infer the item's planted topic as its keyword majority topic
            gamma = dataset.true_topic_model.keyword_topic_posterior(
                list(item.keywords)
            )
            topic = int(gamma.argmax())
            for event in item.events:
                edge = graph.edge_id(event.source, event.target)
                total_expected += weights[edge, topic]
                total_observed += int(event.activated)
                total_events += 1
        assert total_events > 0
        expected_rate = total_expected / total_events
        observed_rate = total_observed / total_events
        assert observed_rate == pytest.approx(expected_rate, abs=0.05)

    def test_deterministic(self):
        def make():
            return CitationNetworkGenerator(
                num_researchers=60, seed=5
            ).generate()

        a, b = make(), make()
        assert list(a.graph.edges()) == list(b.graph.edges())
        np.testing.assert_array_equal(
            a.true_edge_weights.weights, b.true_edge_weights.weights
        )
        assert a.items[0].keywords == b.items[0].keywords

    def test_summary_keys(self, dataset):
        summary = dataset.summary()
        assert summary["num_users"] == 150.0
        assert summary["num_activations"] <= summary["num_exposures"]

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            CitationNetworkGenerator(num_researchers=0)
        with pytest.raises(Exception):
            CitationNetworkGenerator(title_length=(5, 2))

"""Unit tests for repro.index.cache."""

import pytest

from repro.index.cache import LRUCache
from repro.utils.validation import ValidationError


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_miss_returns_none(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_unused(self):
        assert LRUCache(1).hit_rate == 0.0

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.get("a") is None

    def test_contains_and_len(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
        assert len(cache) == 1

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            LRUCache(0)

    def test_eviction_counter(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.evictions == 0
        cache.put("c", 3)
        cache.put("d", 4)
        assert cache.evictions == 2

    def test_clear_resets_evictions(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0

    def test_stats_snapshot(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("zz")
        cache.put("b", 2)
        cache.put("c", 3)
        stats = cache.stats()
        assert stats == {
            "size": 2.0,
            "capacity": 2.0,
            "hits": 1.0,
            "misses": 1.0,
            "evictions": 1.0,
            "hit_rate": pytest.approx(0.5),
        }


class TestThreadSafety:
    """The cache is shared by the concurrent service executor's workers."""

    def test_counters_consistent_under_concurrent_mutation(self):
        import threading

        cache = LRUCache(capacity=32)
        lookups_per_thread = 400
        threads = 8

        def hammer(worker: int) -> None:
            for step in range(lookups_per_thread):
                key = (worker * step) % 64
                if cache.get(key) is None:
                    cache.put(key, worker)

        pool = [
            threading.Thread(target=hammer, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        stats = cache.stats()
        # every lookup is counted exactly once, size never exceeds capacity
        assert stats["hits"] + stats["misses"] == threads * lookups_per_thread
        assert len(cache) <= cache.capacity
        assert stats["size"] == float(len(cache))

    def test_eviction_counter_exact_under_concurrent_puts(self):
        import threading

        cache = LRUCache(capacity=8)
        per_thread = 200
        threads = 6

        def fill(worker: int) -> None:
            for step in range(per_thread):
                cache.put((worker, step), step)

        pool = [
            threading.Thread(target=fill, args=(worker,))
            for worker in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()

        # all keys distinct: insertions - evictions == final size
        assert threads * per_thread - cache.evictions == len(cache)
        assert len(cache) == cache.capacity

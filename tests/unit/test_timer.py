"""Unit tests for repro.utils.timer and repro.utils.logging."""

import logging
import time

from repro.utils.logging import enable_console_logging, get_logger
from repro.utils.timer import Stopwatch, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= first


class TestStopwatch:
    def test_phase_accumulates(self):
        watch = Stopwatch()
        with watch.phase("a"):
            pass
        with watch.phase("a"):
            pass
        assert watch.counts()["a"] == 2
        assert watch.totals()["a"] >= 0.0

    def test_multiple_phases(self):
        watch = Stopwatch()
        with watch.phase("x"):
            pass
        with watch.phase("y"):
            time.sleep(0.005)
        totals = watch.totals()
        assert set(totals) == {"x", "y"}
        assert totals["y"] >= totals["x"]

    def test_reset(self):
        watch = Stopwatch()
        with watch.phase("a"):
            pass
        watch.reset()
        assert watch.totals() == {}
        assert watch.counts() == {}

    def test_report_lines(self):
        watch = Stopwatch()
        with watch.phase("alpha"):
            pass
        lines = watch.report()
        assert len(lines) == 1
        assert "alpha" in lines[0]


class TestLogging:
    def test_namespaced_logger(self):
        assert get_logger("topics.em").name == "repro.topics.em"
        assert get_logger().name == "repro"

    def test_enable_console_logging_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            enable_console_logging(logging.DEBUG)
            enable_console_logging(logging.INFO)
            assert len(logger.handlers) == 1
        finally:
            for handler in list(logger.handlers):
                logger.removeHandler(handler)
            for handler in before:
                logger.addHandler(handler)

"""Unit tests for repro.graph.traversal."""

import numpy as np
import pytest

from repro.graph.digraph import SocialGraph
from repro.graph.traversal import bfs_reachable, max_probability_paths
from repro.utils.validation import ValidationError


class TestBfsReachable:
    def test_forward(self, line_graph):
        np.testing.assert_array_equal(bfs_reachable(line_graph, 1), [1, 2, 3])

    def test_reverse(self, line_graph):
        np.testing.assert_array_equal(
            bfs_reachable(line_graph, 2, reverse=True), [0, 1, 2]
        )

    def test_max_depth(self, line_graph):
        np.testing.assert_array_equal(
            bfs_reachable(line_graph, 0, max_depth=1), [0, 1]
        )

    def test_isolated_node(self):
        graph = SocialGraph.from_edges(3, [(0, 1)])
        np.testing.assert_array_equal(bfs_reachable(graph, 2), [2])

    def test_invalid_source(self, line_graph):
        with pytest.raises(ValidationError):
            bfs_reachable(line_graph, 10)


class TestMaxProbabilityPaths:
    def test_path_probabilities_multiply(self, line_graph):
        probs = np.array([0.5, 0.4, 0.2])
        result, parents = max_probability_paths(line_graph, 0, probs)
        assert result[0] == 1.0
        assert result[1] == pytest.approx(0.5)
        assert result[2] == pytest.approx(0.2)
        assert result[3] == pytest.approx(0.04)
        assert parents[3] == 2

    def test_picks_best_of_parallel_paths(self, diamond_graph):
        # edge order: (0,1)=0, (0,2)=1, (1,3)=2, (2,3)=3
        probs = np.array([0.9, 0.5, 0.5, 0.9])
        result, parents = max_probability_paths(diamond_graph, 0, probs)
        assert result[3] == pytest.approx(0.45)
        assert parents[3] in (1, 2)  # both routes give 0.45; either is valid

    def test_threshold_prunes(self, line_graph):
        probs = np.array([0.5, 0.4, 0.2])
        result, _parents = max_probability_paths(
            line_graph, 0, probs, threshold=0.1
        )
        assert 3 not in result  # 0.04 < 0.1
        assert 2 in result

    def test_reverse_direction(self, line_graph):
        probs = np.array([0.5, 0.4, 0.2])
        result, parents = max_probability_paths(
            line_graph, 3, probs, reverse=True
        )
        assert result[0] == pytest.approx(0.04)
        assert parents[0] == 1  # next hop toward 3 along original direction

    def test_zero_probability_edges_ignored(self, line_graph):
        probs = np.array([0.5, 0.0, 0.2])
        result, _parents = max_probability_paths(line_graph, 0, probs)
        assert set(result) == {0, 1}

    def test_max_nodes_caps_exploration(self, line_graph):
        probs = np.ones(3)
        result, _parents = max_probability_paths(
            line_graph, 0, probs, max_nodes=2
        )
        assert len(result) <= 3

    def test_source_always_present(self, diamond_graph):
        probs = np.zeros(4)
        result, parents = max_probability_paths(diamond_graph, 0, probs)
        assert result == {0: 1.0}
        assert parents == {0: 0}

    def test_invalid_threshold(self, line_graph):
        with pytest.raises(ValidationError):
            max_probability_paths(line_graph, 0, np.ones(3), threshold=1.5)

    def test_cycle_terminates(self):
        graph = SocialGraph.from_edges(3, [(0, 1), (1, 2), (2, 0)])
        probs = np.array([0.9, 0.9, 0.9])
        result, _parents = max_probability_paths(graph, 0, probs)
        assert set(result) == {0, 1, 2}
        assert result[2] == pytest.approx(0.81)

"""Unit tests for repro.propagation.packed — flat-array RR-set storage."""

import pickle

import numpy as np
import pytest

from repro.propagation.packed import PackedRRSets, PackedSetSequence
from repro.utils.validation import ValidationError


def _example() -> PackedRRSets:
    """Three sets over 5 nodes: {0, 1}, {1, 2, 3}, {3}."""
    return PackedRRSets.from_sets(5, [{0, 1}, {1, 2, 3}, {3}])


class TestConstruction:
    def test_from_sets_roundtrip(self):
        packed = _example()
        assert packed.num_sets == 3
        assert len(packed) == 3
        assert packed.to_sets() == [{0, 1}, {1, 2, 3}, {3}]

    def test_from_node_arrays(self):
        packed = PackedRRSets.from_node_arrays(
            4, [np.array([2, 0], dtype=np.int64), np.array([3], dtype=np.int64)]
        )
        assert packed.to_sets() == [{0, 2}, {3}]
        assert set(packed.set_nodes(0).tolist()) == {0, 2}

    def test_empty_batch(self):
        packed = PackedRRSets.from_sets(3, [])
        assert packed.num_sets == 0
        assert packed.to_sets() == []

    def test_empty_set_member(self):
        packed = PackedRRSets.from_sets(3, [set(), {1}])
        assert packed.to_sets() == [set(), {1}]
        assert packed.coverage_counts().tolist() == [0, 1, 0]

    def test_rejects_bad_offsets(self):
        with pytest.raises(ValidationError):
            PackedRRSets(3, np.array([0, 1]), np.array([1, 2]))
        with pytest.raises(ValidationError):
            PackedRRSets(3, np.array([0, 1]), np.array([0, 1]))

    def test_rejects_out_of_range_members(self):
        with pytest.raises(ValidationError):
            PackedRRSets.from_sets(2, [{0, 5}])
        with pytest.raises(ValidationError):
            PackedRRSets.from_sets(2, [{-1}])

    def test_arrays_are_immutable(self):
        packed = _example()
        with pytest.raises(ValueError):
            packed.nodes[0] = 9

    def test_set_nodes_bounds(self):
        with pytest.raises(ValidationError):
            _example().set_nodes(3)


class TestChunks:
    def test_from_chunks_concatenates_in_order(self):
        first = PackedRRSets.from_sets(4, [{0}, {1, 2}])
        second = PackedRRSets.from_sets(4, [{3}])
        merged = PackedRRSets.from_chunks(
            4, [first.chunk_payload(), second.chunk_payload()]
        )
        assert merged.to_sets() == [{0}, {1, 2}, {3}]

    def test_from_chunks_empty(self):
        merged = PackedRRSets.from_chunks(4, [])
        assert merged.num_sets == 0

    def test_chunk_payload_pickle_roundtrip(self):
        """Chunk payloads cross process boundaries as two flat buffers."""
        rng = np.random.default_rng(0)
        sets = [set(rng.integers(0, 1000, size=30).tolist()) for _ in range(50)]
        packed = PackedRRSets.from_sets(1000, sets)
        nodes, offsets = pickle.loads(pickle.dumps(packed.chunk_payload()))
        rebuilt = PackedRRSets(1000, nodes, offsets)
        assert rebuilt.to_sets() == packed.to_sets()


class TestPackedSetSequence:
    """The lazy Sequence[Set[int]] facade ``sample_rr_sets`` now returns —
    no up-front materialization of every set."""

    def test_lazy_indexing_and_len(self):
        sequence = _example().as_set_sequence()
        assert isinstance(sequence, PackedSetSequence)
        assert len(sequence) == 3
        assert sequence[1] == {1, 2, 3}
        assert sequence[-1] == {3}
        assert list(sequence) == [{0, 1}, {1, 2, 3}, {3}]

    def test_slicing(self):
        sequence = _example().as_set_sequence()
        assert sequence[1:] == [{1, 2, 3}, {3}]

    def test_bounds_checked(self):
        sequence = _example().as_set_sequence()
        with pytest.raises(IndexError):
            sequence[3]
        with pytest.raises(IndexError):
            sequence[-4]

    def test_equality_is_element_wise(self):
        packed = _example()
        sequence = packed.as_set_sequence()
        assert sequence == [{0, 1}, {1, 2, 3}, {3}]
        assert sequence == packed.as_set_sequence()
        assert sequence == tuple(packed.to_sets())
        assert sequence != [{0, 1}, {1, 2, 3}]
        assert sequence != [{0, 1}, {1, 2, 3}, {4}]
        assert sequence != "not a sequence"

    def test_materializes_each_set_once(self):
        sequence = _example().as_set_sequence()
        first = sequence[0]
        assert sequence[0] is first  # cached, not rebuilt

    def test_no_upfront_materialization(self):
        rng = np.random.default_rng(2)
        sets = [set(rng.integers(0, 100, size=5).tolist()) for _ in range(500)]
        sequence = PackedRRSets.from_sets(100, sets).as_set_sequence()
        _ = sequence[7]
        assert sum(entry is not None for entry in sequence._cache) == 1


class TestMembership:
    def test_membership_matches_sets(self):
        packed = _example()
        expected = {0: [0], 1: [0, 1], 2: [1], 3: [1, 2], 4: []}
        for node, sets in expected.items():
            assert packed.sets_containing(node).tolist() == sets

    def test_out_of_range_node_has_no_sets(self):
        assert _example().sets_containing(99).size == 0
        assert _example().sets_containing(-1).size == 0

    def test_coverage_counts(self):
        assert _example().coverage_counts().tolist() == [1, 2, 1, 2, 0]

    def test_membership_set_ids_ascend(self):
        rng = np.random.default_rng(1)
        sets = [set(rng.integers(0, 50, size=8).tolist()) for _ in range(40)]
        packed = PackedRRSets.from_sets(50, sets)
        for node in range(50):
            containing = packed.sets_containing(node).tolist()
            assert containing == sorted(containing)
            assert containing == [
                index for index, rr in enumerate(sets) if node in rr
            ]

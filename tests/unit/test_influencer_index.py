"""Unit tests for repro.core.influencer_index."""

import numpy as np
import pytest

from repro.core.influencer_index import InfluencerIndex
from repro.propagation.ic import IndependentCascade
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def setup():
    from repro.graph.generators import preferential_attachment_digraph

    graph = preferential_attachment_digraph(120, 3, seed=31)
    weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=32)
    index = InfluencerIndex(weights, num_sketches=400, seed=33)
    return graph, weights, index


GAMMA = np.array([0.5, 0.3, 0.1, 0.1])


class TestConstruction:
    def test_sketch_count(self, setup):
        _graph, _weights, index = setup
        assert len(index.sketches) == 400

    def test_sketches_complete_with_large_chunk(self, setup):
        _graph, _weights, index = setup
        assert all(sketch.complete for sketch in index.sketches)

    def test_lazy_pruning_drops_impossible_edges(self, setup):
        _graph, weights, index = setup
        stats = index.statistics()
        assert stats["edges_pruned_permanently"] > 0

    def test_edges_within_envelope(self, setup):
        _graph, weights, index = setup
        envelope = weights.max_over_topics()
        for sketch in index.sketches[:20]:
            for edge_id, theta in zip(sketch.edge_ids, sketch.edge_thresholds):
                assert theta <= envelope[edge_id]

    def test_membership_index_consistent(self, setup):
        _graph, _weights, index = setup
        for sketch_index, sketch in enumerate(index.sketches[:50]):
            for node in sketch.nodes:
                assert sketch_index in index.sketches_containing(node)

    def test_invalid_sketch_count(self, setup):
        _graph, weights, _index = setup
        with pytest.raises(ValidationError):
            InfluencerIndex(weights, num_sketches=0)


class TestEstimates:
    def test_matches_monte_carlo_single_user(self, setup):
        graph, weights, index = setup
        probabilities = weights.edge_probabilities(GAMMA)
        cascade = IndependentCascade(graph, probabilities)
        # Pick a high-influence user for good signal-to-noise.
        user = int(np.argmax(graph.out_degree()))
        mc = cascade.estimate_spread([user], num_samples=1500, seed=0)
        indexed = index.estimate_user_spread(user, GAMMA)
        assert indexed == pytest.approx(mc, rel=0.3, abs=2.5)

    def test_seed_set_estimate_at_least_single(self, setup):
        _graph, _weights, index = setup
        single = index.estimate_user_spread(0, GAMMA)
        multiple = index.estimate_seed_set_spread([0, 1, 2], GAMMA)
        assert multiple >= single - 1e-9

    def test_many_gammas_consistent_with_single(self, setup):
        _graph, _weights, index = setup
        gammas = np.stack([GAMMA, np.array([0.1, 0.1, 0.4, 0.4])])
        many = index.estimate_user_spread_many(5, gammas)
        assert many[0] == pytest.approx(index.estimate_user_spread(5, GAMMA))

    def test_monotone_coupling_across_gammas(self):
        """Within one index the thresholds are shared across queries, so a
        topic whose edge probabilities dominate another's elementwise must
        yield pointwise-larger estimates (exact coupling, no noise)."""
        from repro.graph.generators import preferential_attachment_digraph
        from repro.utils.rng import as_generator

        graph = preferential_attachment_digraph(100, 3, seed=55)
        rng = as_generator(56)
        strong = rng.random(graph.num_edges) * 0.5 + 0.2
        weak = strong * 0.4  # dominated elementwise
        weights = TopicEdgeWeights(graph, np.column_stack([strong, weak]))
        index = InfluencerIndex(weights, num_sketches=150, seed=57)
        strong_gamma = np.array([1.0, 0.0])
        weak_gamma = np.array([0.0, 1.0])
        for user in range(0, 100, 9):
            assert index.estimate_user_spread(
                user, weak_gamma
            ) <= index.estimate_user_spread(user, strong_gamma) + 1e-9

    def test_empty_seed_set(self, setup):
        _graph, _weights, index = setup
        assert index.estimate_seed_set_spread([], GAMMA) == 0.0

    def test_invalid_user(self, setup):
        _graph, _weights, index = setup
        with pytest.raises(ValidationError):
            index.estimate_user_spread(9999, GAMMA)

    def test_invalid_gamma_size(self, setup):
        _graph, _weights, index = setup
        with pytest.raises(ValidationError):
            index.estimate_user_spread(0, np.array([0.5, 0.5]))


class TestDelayedMaterialization:
    def test_chunked_index_expands_on_demand(self):
        from repro.graph.generators import preferential_attachment_digraph

        graph = preferential_attachment_digraph(120, 3, seed=41)
        weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=42)
        eager = InfluencerIndex(weights, num_sketches=100, seed=43)
        lazy = InfluencerIndex(
            weights, num_sketches=100, chunk_size=1, seed=43
        )
        incomplete_before = sum(
            1 for sketch in lazy.sketches if not sketch.complete
        )
        # With chunk_size=1 most sketches should still have a frontier.
        assert incomplete_before > 0
        # Estimates must agree exactly: same seeds → same thresholds, and
        # expansion is deterministic.
        for user in (0, 3, 10):
            assert lazy.estimate_user_spread(user, GAMMA) == pytest.approx(
                eager.estimate_user_spread(user, GAMMA)
            )

    def test_statistics_keys(self, setup):
        _graph, _weights, index = setup
        stats = index.statistics()
        assert {
            "num_sketches",
            "total_edges",
            "total_nodes",
            "edges_pruned_permanently",
            "complete_sketches",
        } <= set(stats)


class TestParallelBuild:
    """Per-sketch RNG streams make partitioned builds exact, not approximate."""

    def _fingerprint(self, index):
        return [
            (
                sketch.root,
                sorted(sketch.nodes),
                sketch.edge_sources,
                sketch.edge_targets,
                sketch.edge_thresholds,
                sketch.edges_pruned,
            )
            for sketch in index.sketches
        ]

    def test_backend_build_matches_serial_exactly(self, setup):
        from repro.backend import ProcessPoolBackend, SerialBackend, ThreadPoolBackend

        _graph, weights, _index = setup
        reference = InfluencerIndex(weights, num_sketches=60, seed=71)
        for make in (
            SerialBackend,
            lambda: ThreadPoolBackend(4),
            lambda: ProcessPoolBackend(2),
        ):
            with make() as backend:
                built = InfluencerIndex(
                    weights, num_sketches=60, seed=71, backend=backend
                )
            assert self._fingerprint(built) == self._fingerprint(reference)

    def test_delayed_materialization_continues_adopted_streams(self, setup):
        """After a forked build, on-demand expansion must replay the serial
        stream — the adopted RNG state is the serial state."""
        from repro.backend import ProcessPoolBackend

        _graph, weights, _index = setup
        serial = InfluencerIndex(weights, num_sketches=40, chunk_size=5, seed=72)
        with ProcessPoolBackend(2) as backend:
            forked = InfluencerIndex(
                weights, num_sketches=40, chunk_size=5, seed=72, backend=backend
            )
        for user in (0, 7, 50):
            assert forked.estimate_user_spread(
                user, GAMMA
            ) == serial.estimate_user_spread(user, GAMMA)
        assert self._fingerprint(forked) == self._fingerprint(serial)

    def test_concurrent_queries_materialize_safely(self, setup):
        import threading

        _graph, weights, _index = setup
        index = InfluencerIndex(weights, num_sketches=60, chunk_size=4, seed=73)
        reference = InfluencerIndex(
            weights, num_sketches=60, chunk_size=4, seed=73
        )
        users = list(range(0, 60, 3))
        results = {}

        def query(user: int) -> None:
            results[user] = index.estimate_user_spread(user, GAMMA)

        pool = [threading.Thread(target=query, args=(user,)) for user in users]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        for user in users:
            assert results[user] == reference.estimate_user_spread(user, GAMMA)

"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    ValidationError,
    check_array_shape,
    check_in_range,
    check_node_id,
    check_nonnegative,
    check_positive,
    check_probability,
    check_simplex,
    check_type,
    check_unique,
)


class TestCheckType:
    def test_accepts_matching_type(self):
        assert check_type(5, int, "x") == 5

    def test_accepts_tuple_of_types(self):
        assert check_type(1.5, (int, float), "x") == 1.5

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="x must be"):
            check_type("5", int, "x")

    def test_rejects_bool_where_number_expected(self):
        with pytest.raises(ValidationError, match="boolean"):
            check_type(True, int, "flag")

    def test_error_message_names_argument(self):
        with pytest.raises(ValidationError, match="my_arg"):
            check_type(None, int, "my_arg")


class TestNumericChecks:
    def test_positive_accepts_positive(self):
        assert check_positive(3, "k") == 3
        assert check_positive(0.1, "p") == 0.1

    def test_positive_rejects_zero_and_negative(self):
        with pytest.raises(ValidationError):
            check_positive(0, "k")
        with pytest.raises(ValidationError):
            check_positive(-1, "k")

    def test_nonnegative_accepts_zero(self):
        assert check_nonnegative(0, "n") == 0

    def test_nonnegative_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative(-0.001, "n")

    def test_in_range_inclusive(self):
        assert check_in_range(0.0, 0.0, 1.0, "p") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "p") == 1.0

    def test_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, "p", inclusive=False)

    def test_in_range_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range(1.5, 0.0, 1.0, "p")

    def test_probability_bounds(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")


class TestCheckSimplex:
    def test_accepts_valid_distribution(self):
        gamma = check_simplex([0.2, 0.3, 0.5], "gamma")
        assert gamma.dtype == np.float64

    def test_rejects_unnormalised(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_simplex([0.2, 0.2], "gamma")

    def test_rejects_negative_entries(self):
        with pytest.raises(ValidationError, match="non-negative"):
            check_simplex([1.5, -0.5], "gamma")

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-d"):
            check_simplex(np.eye(2), "gamma")

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_simplex(np.array([]), "gamma")


class TestCheckNodeId:
    def test_accepts_valid_node(self):
        assert check_node_id(3, 10) == 3

    def test_accepts_numpy_integer(self):
        assert check_node_id(np.int64(2), 5) == 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_node_id(10, 10)
        with pytest.raises(ValidationError):
            check_node_id(-1, 10)


class TestCheckArrayShape:
    def test_accepts_matching_shape(self):
        array = check_array_shape(np.zeros((3, 4)), (3, 4), "m")
        assert array.shape == (3, 4)

    def test_wildcard_axis(self):
        check_array_shape(np.zeros((3, 7)), (3, None), "m")

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="dimensions"):
            check_array_shape(np.zeros(3), (3, 1), "m")

    def test_rejects_wrong_size(self):
        with pytest.raises(ValidationError, match="axis 1"):
            check_array_shape(np.zeros((3, 4)), (3, 5), "m")


class TestCheckUnique:
    def test_accepts_unique(self):
        check_unique([1, 2, 3], "seeds")

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            check_unique([1, 2, 1], "seeds")

"""Unit tests for repro.core.topic_samples."""

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import NeighborhoodBound
from repro.core.topic_samples import TopicSampleIndex
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def setup():
    from repro.graph.generators import preferential_attachment_digraph

    graph = preferential_attachment_digraph(120, 3, seed=21)
    weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=22)
    index = TopicSampleIndex(
        weights, num_samples=16, max_k=8, num_rr_sets=600, seed=23
    )
    best_effort = BestEffortKeywordIM(
        weights, NeighborhoodBound(weights), oracle="ris", num_sets=800, seed=24
    )
    return graph, weights, index, best_effort


class TestConstruction:
    def test_sample_count(self, setup):
        _graph, _weights, index, _be = setup
        assert len(index) == 16

    def test_samples_have_nested_seed_prefixes(self, setup):
        _graph, _weights, index, _be = setup
        for sample in index.samples:
            for k in range(1, len(sample.seeds_by_k)):
                assert sample.seeds_by_k[k][:-1] == sample.seeds_by_k[k - 1]

    def test_seeds_accessor_clamps_k(self, setup):
        _graph, _weights, index, _be = setup
        sample = index.samples[0]
        longest = sample.seeds(999)
        assert longest == sample.seeds_by_k[-1]


class TestNearest:
    def test_nearest_is_closest_in_l1(self, setup):
        _graph, _weights, index, _be = setup
        gamma = index.samples[3].gamma
        sample, distance = index.nearest(gamma)
        assert distance == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_array_equal(sample.gamma, index.samples[3].gamma)

    def test_coupling_gap_zero_at_sample(self, setup):
        _graph, _weights, index, _be = setup
        sample = index.samples[0]
        assert index.coupling_gap(sample.gamma, sample) == 0.0

    def test_coupling_gap_capped_at_n(self, setup):
        graph, _weights, index, _be = setup
        a = np.array([1.0, 0.0, 0.0, 0.0])
        sample, _d = index.nearest(np.array([0.0, 0.0, 0.0, 1.0]))
        assert index.coupling_gap(a, sample) <= graph.num_nodes


class TestQuery:
    def test_exact_sample_hit_answers_directly(self, setup):
        _graph, _weights, index, _be = setup
        gamma = index.samples[5].gamma
        result = index.query(gamma, 4, gap_tolerance=0.05)
        assert result.statistics["answered_from_sample"] == 1.0
        assert result.seeds == index.samples[5].seeds(4)
        assert result.evaluations == 0

    def test_far_query_falls_back(self, setup):
        _graph, _weights, index, best_effort = setup
        # Force fallback with a zero tolerance.
        gamma = np.array([0.4, 0.3, 0.2, 0.1])
        result = index.query(gamma, 4, best_effort=best_effort, gap_tolerance=0.0)
        assert result.statistics["answered_from_sample"] == 0.0
        assert len(result.seeds) == 4

    def test_fallback_without_engine_raises(self, setup):
        _graph, _weights, index, _be = setup
        gamma = np.array([0.4, 0.3, 0.2, 0.1])
        with pytest.raises(ValidationError, match="best-effort"):
            index.query(gamma, 4, gap_tolerance=0.0)

    def test_k_above_max_k_rejected(self, setup):
        _graph, _weights, index, _be = setup
        with pytest.raises(ValidationError, match="max_k"):
            index.query(np.array([0.25, 0.25, 0.25, 0.25]), 100)

    def test_direct_answer_carries_spread_bounds(self, setup):
        _graph, _weights, index, _be = setup
        gamma = index.samples[2].gamma
        result = index.query(gamma, 3, gap_tolerance=0.1)
        stats = result.statistics
        assert stats["spread_lower_bound"] <= result.spread
        assert stats["spread_upper_bound"] >= result.spread

    def test_statistics_record_distance(self, setup):
        _graph, _weights, index, best_effort = setup
        gamma = np.array([0.4, 0.3, 0.2, 0.1])
        result = index.query(
            gamma, 2, best_effort=best_effort, gap_tolerance=0.0
        )
        assert "l1_distance" in result.statistics
        assert "coupling_gap" in result.statistics


class TestParallelBuild:
    def _fingerprint(self, index):
        return [
            (
                sample.gamma.tolist(),
                sample.seeds_by_k,
                sample.spreads_by_k,
            )
            for sample in index.samples
        ]

    def test_identical_across_backends_and_worker_counts(self, setup):
        from repro.backend import ProcessPoolBackend, SerialBackend, ThreadPoolBackend

        _graph, weights, _index, _be = setup
        reference = TopicSampleIndex(
            weights,
            num_samples=6,
            max_k=4,
            num_rr_sets=200,
            seed=51,
            backend=SerialBackend(),
        )
        for make in (lambda: ThreadPoolBackend(4), lambda: ProcessPoolBackend(2)):
            with make() as backend:
                built = TopicSampleIndex(
                    weights,
                    num_samples=6,
                    max_k=4,
                    num_rr_sets=200,
                    seed=51,
                    backend=backend,
                )
            assert self._fingerprint(built) == self._fingerprint(reference)

    def test_parallel_build_answers_queries(self, setup):
        from repro.backend import ThreadPoolBackend

        _graph, weights, _index, best_effort = setup
        with ThreadPoolBackend(3) as backend:
            index = TopicSampleIndex(
                weights,
                num_samples=8,
                max_k=4,
                num_rr_sets=300,
                seed=52,
                backend=backend,
            )
        gamma = index.samples[0].gamma
        result = index.query(gamma, 3, best_effort=best_effort)
        assert len(result.seeds) == 3
        assert result.statistics["answered_from_sample"] == 1.0

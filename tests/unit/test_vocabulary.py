"""Unit tests for repro.topics.vocabulary."""

import pytest

from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError


class TestAdd:
    def test_dense_ids_in_first_seen_order(self):
        vocab = Vocabulary()
        assert vocab.add("alpha") == 0
        assert vocab.add("beta") == 1
        assert vocab.add("alpha") == 0
        assert len(vocab) == 2

    def test_normalisation(self):
        vocab = Vocabulary()
        assert vocab.add("  Data Mining ") == vocab.add("data mining")

    def test_counts_accumulate(self):
        vocab = Vocabulary()
        vocab.add("x")
        vocab.add("x", count=3)
        assert vocab.count_of("x") == 4
        assert vocab.count_of("unknown") == 0

    def test_empty_word_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            Vocabulary().add("   ")

    def test_non_string_rejected(self):
        with pytest.raises(ValidationError, match="string"):
            Vocabulary().add(42)

    def test_constructor_seeds_words(self):
        vocab = Vocabulary(["a", "b", "a"])
        assert len(vocab) == 2
        assert vocab.count_of("a") == 2


class TestLookup:
    def test_id_roundtrip(self):
        vocab = Vocabulary(["one", "two"])
        assert vocab.word_of(vocab.id_of("two")) == "two"

    def test_unknown_word_raises(self):
        with pytest.raises(ValidationError, match="unknown"):
            Vocabulary().id_of("missing")

    def test_word_of_out_of_range(self):
        with pytest.raises(ValidationError):
            Vocabulary(["a"]).word_of(5)

    def test_contains(self):
        vocab = Vocabulary(["graph"])
        assert "graph" in vocab
        assert "Graph" in vocab  # normalised
        assert "tree" not in vocab
        assert "" not in vocab  # invalid keys are simply absent

    def test_ids_of_strict(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.ids_of(["b", "a"]) == [1, 0]
        with pytest.raises(ValidationError):
            vocab.ids_of(["a", "zzz"])

    def test_known_ids_of_lenient(self):
        vocab = Vocabulary(["a", "b"])
        assert vocab.known_ids_of(["a", "zzz", "b"]) == [0, 1]

    def test_iteration_and_words(self):
        vocab = Vocabulary(["x", "y"])
        assert list(vocab) == ["x", "y"]
        assert vocab.words() == ["x", "y"]
        assert vocab.counts() == [1, 1]


class TestFreeze:
    def test_frozen_rejects_new_words(self):
        vocab = Vocabulary(["a"]).freeze()
        assert vocab.frozen
        with pytest.raises(ValidationError, match="frozen"):
            vocab.add("b")

    def test_frozen_allows_existing_word_counts(self):
        vocab = Vocabulary(["a"]).freeze()
        assert vocab.add("a") == 0
        assert vocab.count_of("a") == 2

    def test_add_document(self):
        vocab = Vocabulary()
        ids = vocab.add_document(["p", "q", "p"])
        assert ids == [0, 1, 0]

"""Unit tests for repro.datasets.social."""

import pytest

from repro.datasets.social import PRODUCT_TOPICS, SocialNetworkGenerator


class TestGenerator:
    @pytest.fixture(scope="class")
    def dataset(self):
        return SocialNetworkGenerator(
            num_users=120, friends_per_user=4, posts_per_user=2, seed=20
        ).generate()

    def test_sizes(self, dataset):
        assert dataset.graph.num_nodes == 120
        assert len(dataset.items) == 240
        assert dataset.num_topics == len(PRODUCT_TOPICS)

    def test_demo_keywords_present(self, dataset):
        """The paper's QQ examples must be in the vocabulary."""
        for keyword in ("game", "gum", "strawberry", "xylitol", "iphone x"):
            assert keyword in dataset.vocabulary

    def test_food_keywords_share_topic(self, dataset):
        model = dataset.true_topic_model
        topics = {
            model.topic_profile_of_word(word).argmax()
            for word in ("gum", "strawberry", "xylitol")
        }
        assert len(topics) == 1

    def test_friendship_reciprocity(self, dataset):
        reciprocal = 0
        for _e, u, v in dataset.graph.edges():
            if dataset.graph.has_edge(v, u):
                reciprocal += 1
        assert reciprocal / dataset.graph.num_edges > 0.4

    def test_events_reference_real_edges(self, dataset):
        for item in dataset.items[:80]:
            for event in item.events:
                assert dataset.graph.has_edge(event.source, event.target)

    def test_ground_truth_shapes(self, dataset):
        assert dataset.node_affinities.shape == (120, len(PRODUCT_TOPICS))
        assert dataset.true_edge_weights.weights.shape == (
            dataset.graph.num_edges,
            len(PRODUCT_TOPICS),
        )

    def test_deterministic(self):
        def make():
            return SocialNetworkGenerator(num_users=50, seed=3).generate()

        a, b = make(), make()
        assert list(a.graph.edges()) == list(b.graph.edges())
        assert a.items[5].keywords == b.items[5].keywords

    def test_invalid_parameters(self):
        with pytest.raises(Exception):
            SocialNetworkGenerator(num_users=0)
        with pytest.raises(Exception):
            SocialNetworkGenerator(keywords_per_post=(3, 1))

"""Unit tests for repro.core.dynamic (model refresh under streaming)."""

import numpy as np
import pytest

from repro.core.dynamic import DynamicInfluenceEngine
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def world():
    from repro.graph.generators import preferential_attachment_digraph

    graph = preferential_attachment_digraph(100, 3, seed=61)
    weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=62)
    return graph, weights


GAMMA = np.array([0.4, 0.3, 0.2, 0.1])


class TestRefresh:
    def test_lower_weights_absorbed_in_place(self, world):
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=120, seed=63)
        index_before = engine.index
        lowered = TopicEdgeWeights(graph, weights.weights * 0.5)
        assert engine.refresh(lowered) is True
        assert engine.index is index_before  # sketches reused
        assert engine.refreshes_absorbed == 1
        assert engine.refreshes_rebuilt == 0

    def test_absorbed_refresh_equals_fresh_build_estimates(self, world):
        """The absorbed index must answer exactly like an index that was
        built against the new weights with the *old* weights' envelope —
        i.e. the coupling argument, tested behaviourally: estimates under
        the halved model must be ≤ estimates under the original (shared
        thresholds) and match MC within noise."""
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=400, seed=64)
        before = [
            engine.estimate_user_spread(user, GAMMA) for user in range(0, 100, 11)
        ]
        lowered = TopicEdgeWeights(graph, weights.weights * 0.5)
        engine.refresh(lowered)
        after = [
            engine.estimate_user_spread(user, GAMMA) for user in range(0, 100, 11)
        ]
        assert all(b >= a - 1e-9 for b, a in zip(before, after))

        from repro.propagation.ic import IndependentCascade

        probabilities = lowered.edge_probabilities(GAMMA)
        cascade = IndependentCascade(graph, probabilities)
        user = int(np.argmax(graph.out_degree()))
        reference = cascade.estimate_spread([user], num_samples=1200, seed=0)
        estimate = engine.estimate_user_spread(user, GAMMA)
        assert estimate == pytest.approx(reference, rel=0.35, abs=2.0)

    def test_raised_weights_force_rebuild(self, world):
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=120, seed=65)
        index_before = engine.index
        raised = TopicEdgeWeights(graph, np.clip(weights.weights * 1.5, 0, 1))
        assert engine.refresh(raised) is False
        assert engine.index is not index_before
        assert engine.refreshes_rebuilt == 1

    def test_rebuild_updates_pruning_envelope(self, world):
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=120, seed=66)
        raised = TopicEdgeWeights(graph, np.clip(weights.weights * 1.5, 0, 1))
        engine.refresh(raised)
        # A subsequent lower refresh is absorbed against the *new* envelope.
        assert engine.refresh(weights) is True

    def test_foreign_graph_rejected(self, world):
        _graph, weights = world
        from repro.graph.digraph import SocialGraph

        other = SocialGraph.from_edges(2, [(0, 1)])
        foreign = TopicEdgeWeights(other, np.full((1, 4), 0.1))
        engine = DynamicInfluenceEngine(weights, num_sketches=50, seed=67)
        with pytest.raises(ValidationError, match="same graph"):
            engine.refresh(foreign)

    def test_topic_count_change_rejected(self, world):
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=50, seed=68)
        different = TopicEdgeWeights(
            graph, np.full((graph.num_edges, 2), 0.05)
        )
        with pytest.raises(ValidationError, match="topic count"):
            engine.refresh(different)

    def test_statistics(self, world):
        graph, weights = world
        engine = DynamicInfluenceEngine(weights, num_sketches=50, seed=69)
        engine.refresh(TopicEdgeWeights(graph, weights.weights * 0.9))
        stats = engine.statistics()
        assert stats["version"] == 1.0
        assert stats["refreshes_absorbed"] == 1.0
        assert "index.num_sketches" in stats


class TestStreamingScenario:
    def test_em_refit_stream(self, citation_dataset):
        """Simulate periodic EM re-fits feeding the engine: each refit's
        weights refresh the engine; spreads stay finite and queries keep
        answering."""
        from repro.topics.em import EMConfig, TICLearner

        engine = DynamicInfluenceEngine(
            citation_dataset.true_edge_weights, num_sketches=80, seed=70
        )
        gamma = np.full(8, 1.0 / 8)
        chunks = np.array_split(np.arange(len(citation_dataset.items)), 2)
        for chunk in chunks:
            items = [citation_dataset.items[i] for i in chunk]
            learner = TICLearner(
                citation_dataset.graph,
                citation_dataset.vocabulary,
                EMConfig(num_topics=8, max_iterations=3, seed=0),
            )
            fitted = learner.fit(items)
            engine.refresh(fitted.edge_weights)
            spread = engine.estimate_user_spread(0, gamma)
            assert 0.0 <= spread <= citation_dataset.graph.num_nodes
        assert engine.version == 2

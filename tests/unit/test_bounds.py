"""Unit tests for repro.core.bounds (the three upper-bound estimators)."""

import numpy as np
import pytest

from repro.core.bounds import (
    LocalGraphBound,
    NeighborhoodBound,
    PrecomputationBound,
    walk_sum_bounds,
)
from repro.propagation.ic import IndependentCascade
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def weights_and_truth(medium_graph_module):
    graph = medium_graph_module
    weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=17)
    return graph, weights


@pytest.fixture(scope="module")
def medium_graph_module():
    from repro.graph.generators import preferential_attachment_digraph

    return preferential_attachment_digraph(150, 3, seed=99)


GAMMAS = [
    np.array([1.0, 0.0, 0.0, 0.0]),
    np.array([0.7, 0.1, 0.1, 0.1]),
    np.array([0.25, 0.25, 0.25, 0.25]),
    np.array([0.0, 0.5, 0.5, 0.0]),
]


def _exact_singleton_spreads(graph, probabilities, nodes, seed=0):
    cascade = IndependentCascade(graph, probabilities)
    return {
        node: cascade.estimate_spread([node], num_samples=400, seed=seed)
        for node in nodes
    }


class TestWalkSumBounds:
    def test_line_graph_geometric_series(self, line_graph):
        bounds = walk_sum_bounds(line_graph, np.full(3, 0.5))
        # node 0: 1 + 0.5(1 + 0.5(1 + 0.5)) = 1.875
        assert bounds[0] == pytest.approx(1.875)
        assert bounds[3] == pytest.approx(1.0)

    def test_upper_bounds_exact_spread(self, line_graph):
        p = 0.5
        bounds = walk_sum_bounds(line_graph, np.full(3, p))
        exact = 1 + p + p**2 + p**3
        assert bounds[0] >= exact - 1e-9

    def test_cap_respected_on_cycle(self):
        from repro.graph.digraph import SocialGraph

        graph = SocialGraph.from_edges(2, [(0, 1), (1, 0)])
        bounds = walk_sum_bounds(graph, np.ones(2))
        assert np.all(bounds <= 2.0 + 1e-9)

    def test_monotone_in_probabilities(self, medium_graph):
        low = walk_sum_bounds(medium_graph, np.full(medium_graph.num_edges, 0.02))
        high = walk_sum_bounds(medium_graph, np.full(medium_graph.num_edges, 0.1))
        assert np.all(high >= low - 1e-12)

    def test_shape_validation(self, line_graph):
        with pytest.raises(ValidationError):
            walk_sum_bounds(line_graph, np.ones(2))


class TestSoundness:
    """Every estimator must upper-bound the Monte-Carlo spread."""

    @pytest.mark.parametrize("gamma_index", range(len(GAMMAS)))
    def test_precomputation_sound(self, weights_and_truth, gamma_index):
        graph, weights = weights_and_truth
        gamma = GAMMAS[gamma_index]
        estimator = PrecomputationBound(weights, grid=4)
        bounds = estimator.bounds(gamma)
        probabilities = weights.edge_probabilities(gamma)
        sample_nodes = list(range(0, graph.num_nodes, 17))
        exact = _exact_singleton_spreads(graph, probabilities, sample_nodes)
        for node, spread in exact.items():
            assert bounds[node] >= spread - 0.35 * spread**0.5 - 0.5, (
                f"precomputation bound {bounds[node]:.2f} below exact "
                f"{spread:.2f} for node {node}"
            )

    @pytest.mark.parametrize("gamma_index", range(len(GAMMAS)))
    def test_neighborhood_sound(self, weights_and_truth, gamma_index):
        graph, weights = weights_and_truth
        gamma = GAMMAS[gamma_index]
        estimator = NeighborhoodBound(weights)
        bounds = estimator.bounds(gamma)
        probabilities = weights.edge_probabilities(gamma)
        sample_nodes = list(range(0, graph.num_nodes, 17))
        exact = _exact_singleton_spreads(graph, probabilities, sample_nodes)
        for node, spread in exact.items():
            assert bounds[node] >= spread - 0.35 * spread**0.5 - 0.5

    @pytest.mark.parametrize("gamma_index", range(len(GAMMAS)))
    def test_local_sound(self, weights_and_truth, gamma_index):
        graph, weights = weights_and_truth
        gamma = GAMMAS[gamma_index]
        estimator = LocalGraphBound(weights, radius=2)
        probabilities = weights.edge_probabilities(gamma)
        sample_nodes = list(range(0, graph.num_nodes, 17))
        exact = _exact_singleton_spreads(graph, probabilities, sample_nodes)
        bounds = estimator.bounds_for(sample_nodes, gamma)
        for bound, (node, spread) in zip(bounds, exact.items()):
            assert bound >= spread - 0.35 * spread**0.5 - 0.5


class TestTightnessOrdering:
    def test_local_not_looser_than_neighborhood_on_average(
        self, weights_and_truth
    ):
        """The local bound evaluates the query's true probabilities inside
        the ball, so on topical queries it should (on average) be tighter
        than the envelope-heavy neighborhood bound."""
        _graph, weights = weights_and_truth
        gamma = np.array([0.9, 0.1, 0.0, 0.0])
        local = LocalGraphBound(weights, radius=2)
        neighborhood = NeighborhoodBound(weights)
        nodes = list(range(0, weights.graph.num_nodes, 11))
        local_bounds = local.bounds_for(nodes, gamma)
        neighborhood_bounds = neighborhood.bounds(gamma)[nodes]
        assert local_bounds.mean() <= neighborhood_bounds.mean() + 1e-9

    def test_pure_topic_precomputation_tighter_than_envelope(
        self, weights_and_truth
    ):
        _graph, weights = weights_and_truth
        pure = np.array([1.0, 0.0, 0.0, 0.0])
        mixed = np.array([0.25, 0.25, 0.25, 0.25])
        estimator = PrecomputationBound(weights, grid=4)
        assert estimator.bounds(pure).mean() <= estimator.bounds(mixed).mean() + 1e-9


class TestInterfaces:
    def test_precomputation_index_size(self, weights_and_truth):
        _graph, weights = weights_and_truth
        estimator = PrecomputationBound(weights, grid=2)
        assert estimator.index_size == 4 * 3 * weights.graph.num_nodes

    def test_wrong_gamma_size_rejected(self, weights_and_truth):
        _graph, weights = weights_and_truth
        estimator = PrecomputationBound(weights, grid=2)
        with pytest.raises(ValidationError):
            estimator.bounds(np.array([0.5, 0.5]))

    def test_local_bound_single_node(self, weights_and_truth):
        _graph, weights = weights_and_truth
        estimator = LocalGraphBound(weights, radius=1)
        value = estimator.bound_for(0, np.array([0.25, 0.25, 0.25, 0.25]))
        assert value >= 1.0

    def test_all_bounds_at_least_one(self, weights_and_truth):
        _graph, weights = weights_and_truth
        gamma = np.array([0.25, 0.25, 0.25, 0.25])
        assert np.all(PrecomputationBound(weights, grid=2).bounds(gamma) >= 1.0)
        assert np.all(NeighborhoodBound(weights).bounds(gamma) >= 1.0)

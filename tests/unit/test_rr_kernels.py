"""Kernel-equivalence and seed-stability tests for RR sampling.

The vectorized (frontier-batched), legacy (node-at-a-time) and native
(chunk-batched, optionally compiled) kernels draw from the *same*
distribution — each in-edge of each visited node is crossed with exactly
one fresh coin — but consume their RNG streams in different orders, so
they are compared distributionally (against exact world enumeration)
rather than sample-for-sample.  Per kernel, a fixed seed must give
bit-identical packed arrays on every backend at every worker count.  The
parametrized suites below run over all of ``RR_KERNELS``, native
included; the native kernel's own contracts (compiled-vs-fallback draw
identity, shard partitions, provenance) live in ``test_native_kernel.py``.
"""

import itertools

import numpy as np
import pytest

from repro.backend import ProcessPoolBackend, SerialBackend, ThreadPoolBackend
from repro.graph.digraph import SocialGraph
from repro.propagation.kernels import (
    DEFAULT_RR_KERNEL,
    RR_KERNELS,
    check_rr_kernel,
    gather_csr_slices,
    reverse_reachable_frontier,
)
from repro.propagation.rrsets import RRSetCollection, generate_rr_set
from repro.utils.validation import ValidationError


class TestKernelRegistry:
    def test_names(self):
        assert set(RR_KERNELS) == {"vectorized", "legacy", "native"}
        assert DEFAULT_RR_KERNEL == "vectorized"
        assert check_rr_kernel("legacy") == "legacy"
        assert check_rr_kernel("native") == "native"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValidationError):
            check_rr_kernel("cuda")

    def test_collection_sample_rejects_unknown_kernel(self, line_graph):
        with pytest.raises(ValidationError):
            RRSetCollection.sample(
                line_graph, np.zeros(3), 4, seed=0, kernel="cuda"
            )


class TestGatherCsrSlices:
    def test_gathers_row_slices_in_order(self):
        starts = np.array([2, 7, 3], dtype=np.int64)
        stops = np.array([5, 7, 6], dtype=np.int64)
        assert gather_csr_slices(starts, stops).tolist() == [2, 3, 4, 3, 4, 5]

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        assert gather_csr_slices(empty, empty).size == 0
        zeros = np.zeros(3, dtype=np.int64)
        assert gather_csr_slices(zeros, zeros).size == 0


class TestVectorizedKernelDeterministicGraphs:
    """On 0/1 probabilities both kernels must agree exactly."""

    @pytest.mark.parametrize("kernel", RR_KERNELS)
    def test_line_graph(self, line_graph, kernel):
        assert generate_rr_set(
            line_graph, np.ones(3), 3, seed=0, kernel=kernel
        ) == {0, 1, 2, 3}
        assert generate_rr_set(
            line_graph, np.zeros(3), 2, seed=0, kernel=kernel
        ) == {2}

    def test_frontier_kernel_scratch_reuse(self, line_graph):
        scratch = np.zeros(4, dtype=bool)
        rng = np.random.default_rng(0)
        members = reverse_reachable_frontier(
            line_graph, np.ones(3), 3, rng, visited=scratch
        )
        assert set(members.tolist()) == {0, 1, 2, 3}
        scratch[members] = False
        assert not scratch.any()


def _exact_rr_distribution(graph, probabilities, root):
    """P(RR set = S) by exhaustive live-edge world enumeration."""
    edges = [(eid, u, v) for eid, u, v in graph.edges()]
    distribution = {}
    for pattern in itertools.product([False, True], repeat=len(edges)):
        weight = 1.0
        incoming = {}
        for (edge_id, source, target), live in zip(edges, pattern):
            weight *= probabilities[edge_id] if live else 1 - probabilities[edge_id]
            if live:
                incoming.setdefault(target, []).append(source)
        reached = {root}
        stack = [root]
        while stack:
            node = stack.pop()
            for source in incoming.get(node, ()):
                if source not in reached:
                    reached.add(source)
                    stack.append(source)
        key = frozenset(reached)
        distribution[key] = distribution.get(key, 0.0) + weight
    return distribution


class TestKernelDistributionEquivalence:
    """Both kernels must sample the exact enumerable RR distribution."""

    @pytest.fixture(scope="class")
    def world_graph(self):
        return SocialGraph.from_edges(4, [(0, 2), (0, 3), (1, 2), (2, 3)])

    @pytest.fixture(scope="class")
    def world_probabilities(self):
        return np.array([0.7, 0.3, 0.5, 0.6])

    @pytest.mark.parametrize("kernel", RR_KERNELS)
    def test_matches_exact_distribution(
        self, world_graph, world_probabilities, kernel
    ):
        root = 3
        exact = _exact_rr_distribution(world_graph, world_probabilities, root)
        assert abs(sum(exact.values()) - 1.0) < 1e-12
        num_sets = 6000
        collection = RRSetCollection.sample(
            world_graph,
            world_probabilities,
            num_sets,
            seed=1234,
            roots=[root],
            kernel=kernel,
        )
        counts = {}
        for rr_set in collection.rr_sets:
            key = frozenset(rr_set)
            counts[key] = counts.get(key, 0) + 1
        assert set(counts) <= set(exact)  # impossible outcomes never sampled
        for outcome, probability in exact.items():
            empirical = counts.get(outcome, 0) / num_sets
            assert empirical == pytest.approx(probability, abs=0.03)

    def test_kernels_agree_on_mean_rr_size(
        self, medium_graph, medium_probabilities
    ):
        sizes = {}
        for kernel in RR_KERNELS:
            collection = RRSetCollection.sample(
                medium_graph, medium_probabilities, 1500, seed=7, kernel=kernel
            )
            sizes[kernel] = np.mean(
                np.diff(collection.packed.offsets).astype(np.float64)
            )
        assert sizes["vectorized"] == pytest.approx(sizes["legacy"], rel=0.1)
        assert sizes["native"] == pytest.approx(sizes["legacy"], rel=0.1)


class TestSeedStability:
    """Fixed seed ⇒ identical packed arrays per kernel, any backend/workers."""

    @pytest.mark.parametrize("kernel", RR_KERNELS)
    def test_backends_and_worker_counts_agree(
        self, medium_graph, medium_probabilities, kernel
    ):
        reference = SerialBackend().sample_rr_sets_packed(
            medium_graph, medium_probabilities, 300, seed=17, kernel=kernel
        )
        factories = [lambda: SerialBackend()]
        for workers in (1, 2, 4):
            factories.append(lambda w=workers: ThreadPoolBackend(w))
            factories.append(lambda w=workers: ProcessPoolBackend(w))
        for factory in factories:
            with factory() as backend:
                packed = backend.sample_rr_sets_packed(
                    medium_graph,
                    medium_probabilities,
                    300,
                    seed=17,
                    kernel=kernel,
                )
            np.testing.assert_array_equal(packed.nodes, reference.nodes)
            np.testing.assert_array_equal(packed.offsets, reference.offsets)

    @pytest.mark.parametrize("kernel", RR_KERNELS)
    def test_collection_sample_matches_packed_backend_path(
        self, medium_graph, medium_probabilities, kernel
    ):
        direct = SerialBackend().sample_rr_sets(
            medium_graph, medium_probabilities, 120, seed=3, kernel=kernel
        )
        collection = RRSetCollection.sample(
            medium_graph,
            medium_probabilities,
            120,
            seed=3,
            backend=SerialBackend(),
            kernel=kernel,
        )
        assert collection.rr_sets == direct


class TestProcessPoolSharedState:
    """The graph/probability arrays are adopted once per worker, not per chunk."""

    def test_payload_is_a_token_and_is_reused(
        self, medium_graph, medium_probabilities
    ):
        with ProcessPoolBackend(2) as backend:
            first = backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 600, seed=5, chunk_size=64
            )
            assert len(backend._published) == 1
            token = next(iter(backend._published.values()))
            assert isinstance(token, int)
            second = backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 600, seed=5, chunk_size=64
            )
            # Same arrays ⇒ same token, no republish.
            assert len(backend._published) == 1
            np.testing.assert_array_equal(first.nodes, second.nodes)

    def test_new_probabilities_publish_new_token(
        self, medium_graph, medium_probabilities
    ):
        other = np.asarray(medium_probabilities) * 0.5
        with ProcessPoolBackend(2) as backend:
            backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 300, seed=5
            )
            backend.sample_rr_sets_packed(medium_graph, other, 300, seed=5)
            assert len(backend._published) == 2

    def test_matches_serial_after_state_rotation(
        self, medium_graph, medium_probabilities
    ):
        """Pool restarts on republish must not disturb determinism."""
        other = np.asarray(medium_probabilities) * 0.25
        with ProcessPoolBackend(2) as backend:
            backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 300, seed=9
            )
            backend.sample_rr_sets_packed(medium_graph, other, 300, seed=9)
            rotated = backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 300, seed=9
            )
        reference = SerialBackend().sample_rr_sets_packed(
            medium_graph, medium_probabilities, 300, seed=9
        )
        np.testing.assert_array_equal(rotated.nodes, reference.nodes)
        np.testing.assert_array_equal(rotated.offsets, reference.offsets)

    def test_equal_content_in_fresh_arrays_reuses_entry(
        self, medium_graph, medium_probabilities
    ):
        """Per-query recomputed (but equal) probability arrays must hit.

        The query path builds a fresh ``weights @ gamma`` array per query;
        keying by object identity would miss every time and churn the
        pool, so the cache keys on the probability bytes.
        """
        with ProcessPoolBackend(2) as backend:
            backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 300, seed=5
            )
            backend.sample_rr_sets_packed(
                medium_graph, np.array(medium_probabilities), 300, seed=5
            )
            assert len(backend._published) == 1

    def test_close_releases_shared_payloads(
        self, medium_graph, medium_probabilities
    ):
        from repro.backend.base import _SHARED_SAMPLING_STATE

        backend = ProcessPoolBackend(2)
        backend.sample_rr_sets_packed(
            medium_graph, medium_probabilities, 300, seed=5
        )
        tokens = list(backend._published.values())
        assert all(token in _SHARED_SAMPLING_STATE for token in tokens)
        backend.close()
        assert not backend._published
        assert all(token not in _SHARED_SAMPLING_STATE for token in tokens)

    def test_dropped_backend_releases_registry(
        self, medium_graph, medium_probabilities
    ):
        """GC of an unclosed backend must not pin payloads in the registry."""
        import gc

        from repro.backend.base import _SHARED_SAMPLING_STATE

        backend = ProcessPoolBackend(2)
        token = backend._sampling_payload(
            medium_graph, np.asarray(medium_probabilities, dtype=np.float64)
        )
        assert token in _SHARED_SAMPLING_STATE
        del backend
        gc.collect()
        assert token not in _SHARED_SAMPLING_STATE

    def test_concurrent_threads_with_rotating_payloads(
        self, medium_graph, medium_probabilities
    ):
        """Concurrent query threads publishing fresh payloads must not
        crash the shared pool (busy pools are routed around, not closed)."""
        import threading

        base = np.asarray(medium_probabilities)
        results = {}
        errors = []
        with ProcessPoolBackend(2) as backend:

            def worker(index):
                probabilities = base * (0.5 + 0.1 * index)
                try:
                    packed = backend.sample_rr_sets_packed(
                        medium_graph, probabilities, 300, seed=13, chunk_size=32
                    )
                    results[index] = packed
                except Exception as error:  # pragma: no cover — the bug
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert set(results) == {0, 1, 2, 3}
        for index, packed in results.items():
            reference = SerialBackend().sample_rr_sets_packed(
                medium_graph, base * (0.5 + 0.1 * index), 300, seed=13,
                chunk_size=32,
            )
            np.testing.assert_array_equal(packed.nodes, reference.nodes)

"""Unit tests for repro.graph.io."""

import pytest

from repro.graph.digraph import SocialGraph
from repro.graph.io import read_edge_list, write_edge_list
from repro.utils.validation import ValidationError


class TestRoundTrip:
    def test_unlabelled(self, tmp_path, diamond_graph):
        path = tmp_path / "g.tsv"
        write_edge_list(diamond_graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == diamond_graph.num_nodes
        assert list(loaded.edges()) == list(diamond_graph.edges())
        assert loaded.labels is None

    def test_labelled(self, tmp_path, labelled_graph):
        path = tmp_path / "g.tsv"
        write_edge_list(labelled_graph, path)
        loaded = read_edge_list(path)
        assert loaded.labels == labelled_graph.labels

    def test_isolated_nodes_preserved(self, tmp_path):
        graph = SocialGraph.from_edges(5, [(0, 1)])
        path = tmp_path / "g.tsv"
        write_edge_list(graph, path)
        assert read_edge_list(path).num_nodes == 5

    def test_empty_graph(self, tmp_path):
        graph = SocialGraph.from_edges(2, [])
        path = tmp_path / "g.tsv"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded.num_nodes == 2
        assert loaded.num_edges == 0


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("0\t1\n")
        with pytest.raises(ValidationError, match="nodes"):
            read_edge_list(path)

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("# nodes 2\n0 1 2\n")
        with pytest.raises(ValidationError, match="expected"):
            read_edge_list(path)

    def test_label_with_tab_rejected_on_write(self, tmp_path):
        graph = SocialGraph.from_edges(2, [(0, 1)], labels=["a\tb", "c"])
        with pytest.raises(ValidationError, match="tab"):
            write_edge_list(graph, tmp_path / "g.tsv")

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# nodes 2\n\n0\t1\n\n")
        assert read_edge_list(path).num_edges == 1

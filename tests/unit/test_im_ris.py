"""Unit tests for repro.im.ris."""

import numpy as np
import pytest

from repro.im.ris import recommended_num_sets, ris_im
from repro.propagation.rrsets import RRSetCollection
from repro.utils.validation import ValidationError


class TestRecommendedNumSets:
    def test_positive(self):
        assert recommended_num_sets(1000, 10) > 0

    def test_grows_with_n(self):
        assert recommended_num_sets(10_000, 10) > recommended_num_sets(100, 10)

    def test_shrinks_with_epsilon(self):
        tight = recommended_num_sets(1000, 10, epsilon=0.1, max_sets=10**9)
        loose = recommended_num_sets(1000, 10, epsilon=0.5, max_sets=10**9)
        assert tight > loose

    def test_cap_applies(self):
        assert recommended_num_sets(10**6, 50, epsilon=0.05, max_sets=1234) == 1234

    def test_invalid_epsilon(self):
        with pytest.raises(ValidationError):
            recommended_num_sets(100, 5, epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(ValidationError):
            recommended_num_sets(100, 5, delta=1.0)


class TestRisIM:
    def test_hub_selected(self, star_graph):
        result = ris_im(star_graph, np.ones(5), 1, num_sets=200, seed=0)
        assert result.seeds == [0]

    def test_spread_reasonable(self, medium_graph, medium_probabilities):
        result = ris_im(
            medium_graph, medium_probabilities, 5, num_sets=4000, seed=1
        )
        assert 5 <= result.spread <= medium_graph.num_nodes

    def test_reuses_collection(self, star_graph):
        collection = RRSetCollection.sample(star_graph, np.ones(5), 50, seed=0)
        result = ris_im(star_graph, np.ones(5), 1, collection=collection)
        assert result.evaluations == 50
        assert result.seeds == [0]

    def test_statistics_populated(self, star_graph):
        result = ris_im(star_graph, np.ones(5), 2, num_sets=100, seed=0)
        assert result.statistics["num_rr_sets"] == 100.0

    def test_deterministic_given_seed(self, medium_graph, medium_probabilities):
        a = ris_im(medium_graph, medium_probabilities, 3, num_sets=800, seed=5)
        b = ris_im(medium_graph, medium_probabilities, 3, num_sets=800, seed=5)
        assert a.seeds == b.seeds

    def test_invalid_k(self, star_graph):
        with pytest.raises(ValidationError):
            ris_im(star_graph, np.ones(5), 0, num_sets=10)

    def test_default_num_sets_uses_recommendation(self, line_graph):
        result = ris_im(line_graph, np.ones(3), 1, seed=0, epsilon=0.5)
        assert result.statistics["num_rr_sets"] > 0

"""Unit tests for repro.core.query result types."""

import numpy as np
import pytest

from repro.core.query import InfluencerResult, KeywordQuery, KeywordSuggestionResult
from repro.utils.validation import ValidationError


class TestKeywordQuery:
    def test_construction(self):
        query = KeywordQuery(
            keywords=("data mining",), gamma=np.array([0.8, 0.2]), k=5
        )
        assert query.dominant_topic == 0
        assert query.k == 5

    def test_rejects_empty_keywords(self):
        with pytest.raises(ValidationError):
            KeywordQuery(keywords=(), gamma=np.array([1.0]), k=1)

    def test_rejects_bad_gamma(self):
        with pytest.raises(ValidationError):
            KeywordQuery(keywords=("x",), gamma=np.array([0.7, 0.7]), k=1)

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            KeywordQuery(keywords=("x",), gamma=np.array([1.0]), k=0)

    def test_gamma_immutable(self):
        query = KeywordQuery(keywords=("x",), gamma=np.array([1.0]), k=1)
        with pytest.raises(ValueError):
            query.gamma[0] = 0.5


class TestInfluencerResult:
    def _result(self):
        query = KeywordQuery(
            keywords=("graph",), gamma=np.array([0.6, 0.4]), k=2
        )
        return InfluencerResult(
            query=query,
            seeds=[4, 9],
            spread=12.5,
            labels=["ada", "bob"],
        )

    def test_top(self):
        assert self._result().top(1) == [(4, "ada")]
        assert self._result().top(5) == [(4, "ada"), (9, "bob")]

    def test_top_without_labels(self):
        query = KeywordQuery(keywords=("graph",), gamma=np.array([1.0]), k=1)
        result = InfluencerResult(query=query, seeds=[7], spread=1.0)
        assert result.top(1) == [(7, "node-7")]

    def test_repr_mentions_keywords(self):
        assert "graph" in repr(self._result())


class TestKeywordSuggestionResult:
    def test_radar_series_is_plain_floats(self):
        result = KeywordSuggestionResult(
            target=3,
            target_label="ada",
            keywords=["a"],
            spread=4.0,
            gamma=np.array([0.25, 0.75]),
        )
        series = result.radar_series()
        assert series == [0.25, 0.75]
        assert all(isinstance(value, float) for value in series)

    def test_repr(self):
        result = KeywordSuggestionResult(
            target=3,
            target_label="ada",
            keywords=["a"],
            spread=4.0,
            gamma=np.array([1.0]),
        )
        assert "ada" in repr(result)

"""Unit tests for repro.graph.digraph."""

import numpy as np
import pytest

from repro.graph.digraph import GraphBuilder, SocialGraph
from repro.utils.validation import ValidationError


class TestFromEdges:
    def test_basic_counts(self, diamond_graph):
        assert diamond_graph.num_nodes == 4
        assert diamond_graph.num_edges == 4

    def test_empty_graph(self):
        graph = SocialGraph.from_edges(3, [])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0
        assert list(graph.out_neighbors(0)) == []

    def test_zero_nodes(self):
        graph = SocialGraph.from_edges(0, [])
        assert graph.num_nodes == 0

    def test_rejects_self_loop(self):
        with pytest.raises(ValidationError, match="self-loop"):
            SocialGraph.from_edges(2, [(0, 0)])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            SocialGraph.from_edges(2, [(0, 2)])
        with pytest.raises(ValidationError, match="non-negative"):
            SocialGraph.from_edges(2, [(-1, 0)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            SocialGraph.from_edges(2, [(0, 1), (0, 1)])

    def test_allow_duplicates_flag(self):
        graph = SocialGraph.from_edges(2, [(0, 1), (0, 1)], allow_duplicates=True)
        assert graph.num_edges == 2

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValidationError, match="labels"):
            SocialGraph.from_edges(2, [], labels=["a"])


class TestAdjacency:
    def test_out_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.out_neighbors(0)) == [1, 2]
        assert list(diamond_graph.out_neighbors(3)) == []

    def test_in_neighbors(self, diamond_graph):
        assert sorted(diamond_graph.in_neighbors(3)) == [1, 2]
        assert list(diamond_graph.in_neighbors(0)) == []

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degree(0) == 2
        assert diamond_graph.in_degree(3) == 2
        np.testing.assert_array_equal(diamond_graph.out_degree(), [2, 1, 1, 0])
        np.testing.assert_array_equal(diamond_graph.in_degree(), [0, 1, 1, 2])

    def test_edge_ids_are_csr_positions(self, diamond_graph):
        for edge_id, source, target in diamond_graph.edges():
            assert diamond_graph.edge_id(source, target) == edge_id
            assert diamond_graph.edge_endpoints(edge_id) == (source, target)

    def test_in_edge_ids_point_to_out_csr(self, diamond_graph):
        for node in range(diamond_graph.num_nodes):
            sources = diamond_graph.in_neighbors(node)
            edge_ids = diamond_graph.in_edge_ids_of(node)
            for source, edge_id in zip(sources, edge_ids):
                assert diamond_graph.edge_endpoints(int(edge_id)) == (
                    int(source),
                    node,
                )

    def test_has_edge(self, line_graph):
        assert line_graph.has_edge(0, 1)
        assert not line_graph.has_edge(1, 0)
        assert not line_graph.has_edge(0, 99)

    def test_edge_id_missing_raises(self, line_graph):
        with pytest.raises(ValidationError, match="does not exist"):
            line_graph.edge_id(0, 3)

    def test_edge_endpoints_out_of_range(self, line_graph):
        with pytest.raises(ValidationError):
            line_graph.edge_endpoints(99)

    def test_edge_sources(self, diamond_graph):
        sources = diamond_graph.edge_sources()
        expected = [diamond_graph.edge_endpoints(e)[0] for e in range(4)]
        np.testing.assert_array_equal(sources, expected)

    def test_edge_sources_with_isolated_nodes(self):
        graph = SocialGraph.from_edges(5, [(3, 1), (3, 4), (0, 2)])
        sources = graph.edge_sources()
        assert sources.dtype == np.int64
        expected = [
            graph.edge_endpoints(e)[0] for e in range(graph.num_edges)
        ]
        np.testing.assert_array_equal(sources, expected)

    def test_edges_iteration_order(self, line_graph):
        listed = list(line_graph.edges())
        assert listed == [(0, 0, 1), (1, 1, 2), (2, 2, 3)]

    def test_arrays_are_read_only(self, line_graph):
        with pytest.raises(ValueError):
            line_graph.out_targets[0] = 5


class TestLabels:
    def test_label_roundtrip(self, labelled_graph):
        assert labelled_graph.label_of(0) == "alice"
        assert labelled_graph.node_by_label("bob") == 1

    def test_unlabelled_fallback(self, line_graph):
        assert line_graph.labels is None
        assert line_graph.label_of(2) == "node-2"

    def test_node_by_label_unlabelled_raises(self, line_graph):
        with pytest.raises(ValidationError, match="no labels"):
            line_graph.node_by_label("x")

    def test_unknown_label_raises(self, labelled_graph):
        with pytest.raises(ValidationError, match="unknown label"):
            labelled_graph.node_by_label("zoe")

    def test_duplicate_labels_rejected_on_lookup(self):
        graph = SocialGraph.from_edges(2, [(0, 1)], labels=["same", "same"])
        with pytest.raises(ValidationError, match="not unique"):
            graph.node_by_label("same")


class TestReversed:
    def test_reversed_topology(self, diamond_graph):
        reverse = diamond_graph.reversed()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(3, 1)
        assert not reverse.has_edge(0, 1)
        assert reverse.num_edges == diamond_graph.num_edges

    def test_reversed_preserves_labels(self, labelled_graph):
        assert labelled_graph.reversed().label_of(0) == "alice"


class TestGraphBuilder:
    def test_incremental_build(self):
        builder = GraphBuilder()
        a = builder.add_node("a")
        b = builder.add_node("b")
        builder.add_edge(a, b)
        graph = builder.build()
        assert graph.num_nodes == 2
        assert graph.has_edge(a, b)
        assert graph.label_of(a) == "a"

    def test_add_nodes_bulk(self):
        builder = GraphBuilder()
        ids = builder.add_nodes(5)
        assert ids == [0, 1, 2, 3, 4]
        assert builder.num_nodes == 5

    def test_rejects_unknown_endpoint(self):
        builder = GraphBuilder()
        builder.add_node()
        with pytest.raises(ValidationError, match="not a known node"):
            builder.add_edge(0, 1)

    def test_rejects_duplicate_edge(self):
        builder = GraphBuilder()
        builder.add_nodes(2)
        builder.add_edge(0, 1)
        with pytest.raises(ValidationError, match="duplicate"):
            builder.add_edge(0, 1)

    def test_rejects_self_loop(self):
        builder = GraphBuilder()
        builder.add_node()
        with pytest.raises(ValidationError, match="self-loop"):
            builder.add_edge(0, 0)

    def test_edge_ids_map_insertion_to_csr(self):
        builder = GraphBuilder()
        builder.add_nodes(3)
        first = builder.add_edge(2, 0)  # will sort after source-0 edges
        second = builder.add_edge(0, 1)
        graph = builder.build()
        assert builder.edge_ids is not None
        assert graph.edge_endpoints(int(builder.edge_ids[first])) == (2, 0)
        assert graph.edge_endpoints(int(builder.edge_ids[second])) == (0, 1)

    def test_partial_labels_filled(self):
        builder = GraphBuilder()
        builder.add_node("named")
        builder.add_node()
        graph = builder.build()
        assert graph.label_of(0) == "named"
        assert graph.label_of(1) == "node-1"

    def test_has_edge_before_build(self):
        builder = GraphBuilder()
        builder.add_nodes(2)
        builder.add_edge(0, 1)
        assert builder.has_edge(0, 1)
        assert not builder.has_edge(1, 0)

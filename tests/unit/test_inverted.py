"""Unit tests for repro.index.inverted."""

import pytest

from repro.index.inverted import InvertedIndex
from repro.utils.validation import ValidationError


class TestAdd:
    def test_frequencies_accumulate(self):
        index = InvertedIndex()
        index.add(1, 10)
        index.add(1, 10, count=2)
        assert index.frequency(1, 10) == 3

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            InvertedIndex().add(1, 10, count=0)

    def test_add_document(self):
        index = InvertedIndex()
        index.add_document(5, [1, 2, 1])
        assert index.frequency(1, 5) == 2
        assert index.frequency(2, 5) == 1


class TestQueries:
    def _index(self):
        index = InvertedIndex()
        index.add_document(1, [7, 7, 8])
        index.add_document(2, [7])
        index.add_document(3, [8, 8, 8])
        return index

    def test_users_of_ranked_by_frequency(self):
        assert self._index().users_of(7) == [(1, 2), (2, 1)]
        assert self._index().users_of(8) == [(3, 3), (1, 1)]

    def test_users_of_limit(self):
        assert self._index().users_of(8, limit=1) == [(3, 3)]

    def test_users_of_unknown_word(self):
        assert self._index().users_of(99) == []

    def test_document_frequency(self):
        assert self._index().document_frequency(7) == 2
        assert self._index().document_frequency(99) == 0

    def test_user_activity(self):
        assert self._index().user_activity(1) == 3
        assert self._index().user_activity(99) == 0

    def test_vocabulary_ids(self):
        assert self._index().vocabulary_ids() == [7, 8]

    def test_len(self):
        assert len(self._index()) == 2

"""Unit tests for repro.topics.em (the TIC EM learner)."""

import numpy as np
import pytest

from repro.graph.digraph import SocialGraph
from repro.topics.em import EMConfig, ItemObservation, PropagationEvent, TICLearner
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError


def _make_corpus(seed: int = 0, num_items: int = 120):
    """Two-topic planted corpus on a 4-node graph.

    Topic 0 uses words {0,1} and fires edge (0,1) strongly;
    topic 1 uses words {2,3} and fires edge (2,3) strongly.
    """
    rng = np.random.default_rng(seed)
    graph = SocialGraph.from_edges(4, [(0, 1), (2, 3)])
    vocab = Vocabulary(["w0", "w1", "w2", "w3"])
    items = []
    for index in range(num_items):
        topic = index % 2
        words = rng.choice([0, 1] if topic == 0 else [2, 3], size=4)
        if topic == 0:
            strong, weak = (0, 1), (2, 3)
        else:
            strong, weak = (2, 3), (0, 1)
        events = [
            PropagationEvent(*strong, bool(rng.random() < 0.8)),
            PropagationEvent(*weak, bool(rng.random() < 0.05)),
        ]
        items.append(ItemObservation.create(list(words), events))
    return graph, vocab, items


class TestEMConfig:
    def test_defaults_valid(self):
        EMConfig()

    def test_invalid_values(self):
        with pytest.raises(ValidationError):
            EMConfig(num_topics=0)
        with pytest.raises(ValidationError):
            EMConfig(max_iterations=0)


class TestFitting:
    def test_log_likelihood_non_decreasing(self):
        graph, vocab, items = _make_corpus()
        learner = TICLearner(graph, vocab, EMConfig(num_topics=2, seed=0))
        result = learner.fit(items)
        lls = result.log_likelihoods
        assert len(lls) >= 2
        for earlier, later in zip(lls, lls[1:]):
            assert later >= earlier - 1e-6

    def test_recovers_word_topic_structure(self):
        graph, vocab, items = _make_corpus()
        learner = TICLearner(graph, vocab, EMConfig(num_topics=2, seed=0))
        result = learner.fit(items)
        matrix = result.topic_model.word_given_topic
        # Words 0,1 should share a dominant topic; words 2,3 the other.
        topic_a = matrix[0].argmax()
        topic_b = matrix[2].argmax()
        assert topic_a != topic_b
        assert matrix[1].argmax() == topic_a
        assert matrix[3].argmax() == topic_b

    def test_recovers_edge_probabilities(self):
        graph, vocab, items = _make_corpus(num_items=300)
        learner = TICLearner(graph, vocab, EMConfig(num_topics=2, seed=0))
        result = learner.fit(items)
        weights = result.edge_weights.weights
        matrix = result.topic_model.word_given_topic
        topic_of_w0 = int(matrix[0].argmax())
        topic_of_w2 = 1 - topic_of_w0
        edge_01 = graph.edge_id(0, 1)
        edge_23 = graph.edge_id(2, 3)
        assert weights[edge_01, topic_of_w0] == pytest.approx(0.8, abs=0.15)
        assert weights[edge_23, topic_of_w2] == pytest.approx(0.8, abs=0.15)
        # The "wrong" topics should have learned much weaker probabilities.
        assert weights[edge_01, topic_of_w2] < 0.3
        assert weights[edge_23, topic_of_w0] < 0.3

    def test_responsibilities_separate_items(self):
        graph, vocab, items = _make_corpus()
        learner = TICLearner(graph, vocab, EMConfig(num_topics=2, seed=0))
        result = learner.fit(items)
        assert result.responsibilities is not None
        even = result.responsibilities[0].argmax()
        odd = result.responsibilities[1].argmax()
        assert even != odd
        # all even-index items agree, all odd-index items agree
        assert all(r.argmax() == even for r in result.responsibilities[::2])
        assert all(r.argmax() == odd for r in result.responsibilities[1::2])

    def test_unseen_edges_get_prior(self):
        graph = SocialGraph.from_edges(3, [(0, 1), (1, 2)])
        vocab = Vocabulary(["a"])
        items = [
            ItemObservation.create([0], [PropagationEvent(0, 1, True)])
            for _ in range(10)
        ]
        config = EMConfig(num_topics=2, edge_prior=0.07, seed=0)
        result = TICLearner(graph, vocab, config).fit(items)
        unseen = graph.edge_id(1, 2)
        np.testing.assert_allclose(result.edge_weights.weights[unseen], 0.07)

    def test_deterministic_given_seed(self):
        graph, vocab, items = _make_corpus()
        def fit():
            return TICLearner(
                graph, vocab, EMConfig(num_topics=2, seed=5)
            ).fit(items)

        a, b = fit(), fit()
        np.testing.assert_array_equal(
            a.topic_model.word_given_topic, b.topic_model.word_given_topic
        )


class TestValidation:
    def test_empty_corpus_rejected(self):
        graph, vocab, _items = _make_corpus()
        with pytest.raises(ValidationError, match="empty"):
            TICLearner(graph, vocab, EMConfig(num_topics=2)).fit([])

    def test_item_without_keywords_rejected(self):
        graph, vocab, _items = _make_corpus()
        bad = [ItemObservation.create([], [])]
        with pytest.raises(ValidationError, match="no keywords"):
            TICLearner(graph, vocab, EMConfig(num_topics=2)).fit(bad)

    def test_event_on_missing_edge_rejected(self):
        graph, vocab, _items = _make_corpus()
        bad = [
            ItemObservation.create([0], [PropagationEvent(1, 0, True)])
        ]
        with pytest.raises(ValidationError, match="event"):
            TICLearner(graph, vocab, EMConfig(num_topics=2)).fit(bad)

    def test_word_id_out_of_vocabulary_rejected(self):
        graph, vocab, _items = _make_corpus()
        bad = [ItemObservation.create([99], [])]
        with pytest.raises(ValidationError, match="vocabulary"):
            TICLearner(graph, vocab, EMConfig(num_topics=2)).fit(bad)

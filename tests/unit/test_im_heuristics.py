"""Unit tests for repro.im.heuristics."""

import numpy as np
import pytest

from repro.im.heuristics import (
    degree_discount_seeds,
    degree_seeds,
    pagerank_seeds,
    random_seeds,
)
from repro.utils.validation import ValidationError


class TestDegreeSeeds:
    def test_hub_first(self, star_graph):
        assert degree_seeds(star_graph, 1).seeds == [0]

    def test_k_capped_at_n(self, line_graph):
        assert len(degree_seeds(line_graph, 99).seeds) == 4

    def test_invalid_k(self, star_graph):
        with pytest.raises(ValidationError):
            degree_seeds(star_graph, 0)


class TestDegreeDiscount:
    def test_hub_first(self, star_graph):
        result = degree_discount_seeds(star_graph, 1, np.full(5, 0.1))
        assert result.seeds == [0]

    def test_discount_spreads_selection(self):
        """After picking the hub, its neighbours are discounted, so the
        second pick should be the second hub, not a spoke of the first."""
        from repro.graph.digraph import SocialGraph

        edges = [(0, i) for i in range(2, 6)] + [(1, i) for i in range(6, 10)]
        edges += [(0, 1)]
        graph = SocialGraph.from_edges(10, edges)
        result = degree_discount_seeds(graph, 2, np.full(len(edges), 0.1))
        assert set(result.seeds) == {0, 1}

    def test_no_duplicates(self, medium_graph, medium_probabilities):
        result = degree_discount_seeds(medium_graph, 10, medium_probabilities)
        assert len(set(result.seeds)) == len(result.seeds) == 10

    def test_works_without_probabilities(self, star_graph):
        assert degree_discount_seeds(star_graph, 2).seeds[0] == 0


class TestPagerankSeeds:
    def test_reverse_direction_finds_influencers(self, line_graph):
        # In 0→1→2→3, node 0 is the most *influential* (reaches everyone).
        result = pagerank_seeds(line_graph, 1, reverse=True)
        assert result.seeds == [0]

    def test_forward_direction_finds_popular(self, line_graph):
        result = pagerank_seeds(line_graph, 1, reverse=False)
        assert result.seeds == [3]

    def test_k_respected(self, medium_graph):
        assert len(pagerank_seeds(medium_graph, 7).seeds) == 7


class TestRandomSeeds:
    def test_distinct(self, medium_graph):
        result = random_seeds(medium_graph, 20, seed=0)
        assert len(set(result.seeds)) == 20

    def test_deterministic(self, medium_graph):
        a = random_seeds(medium_graph, 5, seed=1)
        b = random_seeds(medium_graph, 5, seed=1)
        assert a.seeds == b.seeds

    def test_k_capped(self, line_graph):
        assert len(random_seeds(line_graph, 99, seed=0).seeds) == 4

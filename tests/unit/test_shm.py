"""Unit tests for repro.backend.shm: the zero-copy data plane.

Three layers: the arena/session primitives (write, read, grow, reset,
lifecycle), the pool-backend transport (byte identity shm vs the
``REPRO_SHM=0`` pickle twin, plus provenance), and leak accounting (a
closed backend leaves nothing under the shm root).
"""

import glob
import os

import numpy as np
import pytest

from repro.backend import ProcessPoolBackend, SerialBackend, ThreadPoolBackend
from repro.backend.shm import (
    DEFAULT_ARENA_BYTES,
    SESSION_PREFIX,
    ShmArena,
    ShmSession,
    ShmSlice,
    _remove_session_dir,
    default_arena_bytes,
    payload_transport,
    shm_enabled,
    shm_root,
)
from repro.utils.validation import ValidationError

pytestmark = pytest.mark.skipif(
    not shm_enabled() and os.environ.get("REPRO_SHM", "") == "",
    reason="platform has no fork start method",
)


def _session_dirs():
    return glob.glob(os.path.join(shm_root(), SESSION_PREFIX + "*"))


def _force_shm(monkeypatch):
    """Pin the shm transport on for tests whose subject is the shm path
    itself, so they keep testing it under a global ``REPRO_SHM=0`` run."""
    monkeypatch.delenv("REPRO_SHM", raising=False)
    if not shm_enabled():
        pytest.skip("platform has no fork start method")


@pytest.fixture
def session():
    shm_session = ShmSession()
    yield shm_session
    shm_session.close()


class TestShmSlice:
    def test_nbytes(self):
        ref = ShmSlice(segment="a", offset=64, lengths=(3, 0, 5))
        assert ref.nbytes == 8 * 8


class TestShmSession:
    def test_directory_created_under_root_with_prefix(self, session):
        assert os.path.isdir(session.path)
        assert os.path.dirname(session.path) == shm_root()
        assert os.path.basename(session.path).startswith(SESSION_PREFIX)

    def test_close_removes_and_is_idempotent(self):
        shm_session = ShmSession()
        path = shm_session.path
        assert not shm_session.closed
        shm_session.close()
        assert shm_session.closed
        assert not os.path.exists(path)
        shm_session.close()  # idempotent

    def test_finalizer_is_pid_guarded(self, session):
        """A forked child inheriting the session must not reclaim it."""
        _remove_session_dir(session.path, session.owner_pid + 1)
        assert os.path.isdir(session.path)
        _remove_session_dir(session.path, session.owner_pid)
        assert not os.path.exists(session.path)


class TestShmArena:
    def test_write_read_roundtrip(self, session):
        arena = ShmArena(session, "a")
        nodes = np.arange(17, dtype=np.int64)
        offsets = np.array([0, 5, 17], dtype=np.int64)
        ref = arena.write_arrays((nodes, offsets))
        got_nodes, got_offsets = arena.read(ref)
        np.testing.assert_array_equal(got_nodes, nodes)
        np.testing.assert_array_equal(got_offsets, offsets)
        assert not got_nodes.flags.writeable

    def test_empty_arrays_roundtrip(self, session):
        arena = ShmArena(session, "a")
        ref = arena.write_arrays((np.empty(0, dtype=np.int64),))
        (view,) = arena.read(ref)
        assert view.size == 0

    def test_slices_are_aligned_and_disjoint(self, session):
        arena = ShmArena(session, "a")
        first = arena.write_arrays((np.ones(3, dtype=np.int64),))
        second = arena.write_arrays((np.full(4, 2, dtype=np.int64),))
        assert first.offset % 64 == 0 and second.offset % 64 == 0
        assert second.offset >= first.offset + first.nbytes
        np.testing.assert_array_equal(arena.read(first)[0], np.ones(3))
        np.testing.assert_array_equal(arena.read(second)[0], np.full(4, 2))

    def test_growth_spills_to_new_segment(self, session):
        arena = ShmArena(session, "a", capacity=1024)
        big = np.arange(4096, dtype=np.int64)  # 32 KiB > 1 KiB base
        ref = arena.write_arrays((big,))
        assert ref.segment == "a.g1"
        np.testing.assert_array_equal(arena.read(ref)[0], big)
        assert os.path.exists(os.path.join(session.path, "a.g1"))

    def test_reader_endpoint_resolves_by_name(self, session):
        writer = ShmArena(session, "w", capacity=1024)
        reader = ShmArena.reader(session)
        payload = np.arange(2048, dtype=np.int64)
        small = writer.write_arrays((payload[:4],))
        grown = writer.write_arrays((payload,))  # spills to w.g1
        np.testing.assert_array_equal(reader.read(small)[0], payload[:4])
        np.testing.assert_array_equal(reader.read(grown)[0], payload)

    def test_reset_rewinds_and_unlinks_grow_files(self, session):
        arena = ShmArena(session, "a", capacity=1024)
        arena.write_arrays((np.arange(4096, dtype=np.int64),))
        grow_path = os.path.join(session.path, "a.g1")
        assert os.path.exists(grow_path)
        arena.reset()
        assert not os.path.exists(grow_path)
        ref = arena.write_arrays((np.arange(5, dtype=np.int64),))
        assert ref.segment == "a" and ref.offset == 0

    def test_capacity_default_env_override(self, monkeypatch):
        assert default_arena_bytes() == DEFAULT_ARENA_BYTES
        monkeypatch.setenv("REPRO_SHM_ARENA_BYTES", "4096")
        assert default_arena_bytes() == 4096
        monkeypatch.setenv("REPRO_SHM_ARENA_BYTES", "not-a-number")
        with pytest.raises(ValidationError, match="REPRO_SHM_ARENA_BYTES"):
            default_arena_bytes()


class TestToggles:
    def test_env_disables(self, monkeypatch):
        for value in ("0", "off", "pickle", "OFF"):
            monkeypatch.setenv("REPRO_SHM", value)
            assert not shm_enabled()
            assert payload_transport() == "pickle"

    def test_enabled_by_default_with_fork(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        import multiprocessing

        expected = "fork" in multiprocessing.get_all_start_methods()
        assert shm_enabled() == expected

    def test_unrecognized_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "maybe")
        with pytest.raises(ValidationError, match="REPRO_SHM"):
            shm_enabled()


class TestPoolTransport:
    """The tentpole acceptance at the backend level: identical bytes over
    shm and over the pickle twin, correct provenance, no leaks."""

    @pytest.fixture(scope="class")
    def reference(self, medium_graph, medium_probabilities):
        return SerialBackend().sample_rr_sets_packed(
            medium_graph, medium_probabilities, 600, seed=11
        )

    def _assert_matches(self, backend, medium_graph, medium_probabilities, reference):
        packed = backend.sample_rr_sets_packed(
            medium_graph, medium_probabilities, 600, seed=11
        )
        np.testing.assert_array_equal(packed.nodes, reference.nodes)
        np.testing.assert_array_equal(packed.offsets, reference.offsets)

    def test_shm_transport_bytes(
        self, monkeypatch, medium_graph, medium_probabilities, reference
    ):
        _force_shm(monkeypatch)
        with ProcessPoolBackend(3) as backend:
            assert backend.payload_transport == "shm"
            self._assert_matches(
                backend, medium_graph, medium_probabilities, reference
            )
            # A second batch exercises the epoch rewind of worker arenas.
            self._assert_matches(
                backend, medium_graph, medium_probabilities, reference
            )
        assert not _session_dirs()

    def test_pickle_twin_bytes(
        self, monkeypatch, medium_graph, medium_probabilities, reference
    ):
        monkeypatch.setenv("REPRO_SHM", "0")
        with ProcessPoolBackend(3) as backend:
            assert backend.payload_transport == "pickle"
            self._assert_matches(
                backend, medium_graph, medium_probabilities, reference
            )
        assert not _session_dirs()

    def test_arena_growth_under_load(
        self, monkeypatch, medium_graph, medium_probabilities
    ):
        """Tiny arenas force every chunk through the grow path."""
        _force_shm(monkeypatch)
        monkeypatch.setenv("REPRO_SHM_ARENA_BYTES", "256")
        reference = SerialBackend().sample_rr_sets_packed(
            medium_graph, medium_probabilities, 400, seed=5
        )
        with ProcessPoolBackend(2) as backend:
            packed = backend.sample_rr_sets_packed(
                medium_graph, medium_probabilities, 400, seed=5
            )
            np.testing.assert_array_equal(packed.nodes, reference.nodes)
            np.testing.assert_array_equal(packed.offsets, reference.offsets)
        assert not _session_dirs()

    def test_inline_transport_for_same_address_space_backends(self):
        assert SerialBackend().payload_transport == "inline"
        with ThreadPoolBackend(2) as backend:
            assert backend.payload_transport == "inline"

    def test_close_is_idempotent_and_backend_reusable(
        self, medium_graph, medium_probabilities
    ):
        backend = ProcessPoolBackend(2)
        first = backend.sample_rr_sets_packed(
            medium_graph, medium_probabilities, 100, seed=3
        )
        backend.close()
        assert not _session_dirs()
        # The executor contract allows reuse after close: a fresh pool —
        # and a fresh session — must produce the same bytes again.
        second = backend.sample_rr_sets_packed(
            medium_graph, medium_probabilities, 100, seed=3
        )
        backend.close()
        np.testing.assert_array_equal(first.nodes, second.nodes)
        assert not _session_dirs()

"""Unit tests for the OctopusService dispatcher and middleware stack.

Covers the service-layer acceptance bar: execute() never raises (errors
become envelopes), every live response round-trips through JSON, batch
execution matches sequential execution, and middleware compose in the
documented order.

The whole matrix runs twice: once against the sequential dispatcher and
once against :class:`ConcurrentOctopusService` (thread mode), which must
be a drop-in executor with identical envelope semantics.
"""

import json

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    ExplorePathsRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    ServiceResponse,
    StatsRequest,
    SuggestKeywordsRequest,
)
from repro.service.middleware import RateLimitMiddleware, ServiceMetrics


@pytest.fixture(scope="module")
def backend(citation_dataset):
    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=40,
            num_topic_samples=4,
            topic_sample_rr_sets=200,
            oracle_samples=20,
            seed=17,
        ),
    )


@pytest.fixture(params=["sequential", "concurrent"])
def service(request, backend):
    if request.param == "sequential":
        yield OctopusService(backend)
        return
    executor = ConcurrentOctopusService(OctopusService(backend), workers=2)
    yield executor
    executor.close()


@pytest.fixture(scope="module")
def active_user(backend):
    return sorted(backend.user_keywords)[0]


class TestExecute:
    def test_influencers_success(self, service):
        response = service.execute(FindInfluencersRequest("data mining", k=3))
        assert response.ok
        assert response.service == "influencers"
        assert len(response.payload["seeds"]) == 3
        assert len(response.payload["labels"]) == 3
        assert response.payload["spread"] > 0
        assert response.latency_ms > 0

    def test_accepts_dict_and_json(self, service):
        as_dict = service.execute(
            {"service": "complete", "prefix": "da", "limit": 3}
        )
        as_json = service.execute(
            json.dumps({"service": "complete", "prefix": "da", "limit": 3})
        )
        assert as_dict.ok and as_json.ok
        assert as_dict.payload == as_json.payload

    def test_suggest_and_paths(self, service, active_user):
        suggest = service.execute(SuggestKeywordsRequest(user=active_user, k=2))
        assert suggest.ok
        assert suggest.payload["target"] == active_user
        paths = service.execute(
            ExplorePathsRequest(user=active_user, threshold=0.05)
        )
        assert paths.ok
        assert paths.payload["root"] == active_user

    def test_stats_includes_all_layers(self, service):
        service.execute(FindInfluencersRequest("data mining", k=2))
        response = service.execute(StatsRequest())
        assert response.ok
        payload = response.payload
        assert payload["graph.num_nodes"] > 0  # backend layer
        assert "cache.hit_rate" in payload  # cache layer
        assert payload["service.influencers.requests"] >= 1  # metrics layer

    def test_never_raises_on_malformed_input(self, service):
        for bad in (
            "{not json",
            '{"service": "teleport"}',
            '{"keywords": ["x"]}',
            {"service": "influencers", "surprise": 1},
            12345,
        ):
            response = service.execute(bad)
            assert isinstance(response, ServiceResponse)
            assert not response.ok
            assert response.error.code == "malformed_request"

    def test_invalid_request_envelope(self, service):
        response = service.execute(FindInfluencersRequest("data mining", k=0))
        assert not response.ok
        assert response.error.code == "invalid_request"

    def test_backend_validation_becomes_envelope(self, service):
        response = service.execute(
            FindInfluencersRequest("definitely not a keyword")
        )
        assert not response.ok
        assert response.error.code == "invalid_request"
        assert "unknown keyword" in response.error.message

    def test_unknown_user_envelope(self, service):
        response = service.execute(SuggestKeywordsRequest(user="Nobody Nowhere"))
        assert not response.ok
        assert "unknown user" in response.error.message

    @pytest.mark.parametrize(
        "request_obj",
        [
            FindInfluencersRequest("data mining", k=2),
            RadarRequest("em algorithm"),
            CompleteRequest(prefix="da"),
            StatsRequest(),
            FindInfluencersRequest("definitely not a keyword"),
        ],
        ids=["influencers", "radar", "complete", "stats", "error"],
    )
    def test_every_response_json_round_trips(self, service, request_obj):
        response = service.execute(request_obj)
        assert ServiceResponse.from_json(response.to_json()) == response

    def test_suggest_and_paths_responses_round_trip(self, service, active_user):
        for request_obj in (
            SuggestKeywordsRequest(user=active_user, k=2),
            ExplorePathsRequest(user=active_user, threshold=0.05),
        ):
            response = service.execute(request_obj)
            assert response.ok
            assert ServiceResponse.from_json(response.to_json()) == response

    def test_path_payload_rebuilds_tree(self, service, active_user):
        from repro.core.paths import PathTree

        response = service.execute(
            ExplorePathsRequest(user=active_user, threshold=0.05)
        )
        tree = PathTree.from_dict(response.payload)
        assert tree.root == active_user
        assert tree.to_dict() == response.payload


class TestCaching:
    def test_targeted_dispatch_and_cache(self, service):
        from repro.service import TargetedInfluencersRequest

        request = TargetedInfluencersRequest(
            keywords="data mining", k=2, num_sets=200
        )
        first = service.execute(request)
        second = service.execute(request)
        assert first.ok
        assert second.cache_hit
        assert second.payload["seeds"] == first.payload["seeds"]

    def test_cached_payload_mutation_does_not_poison_cache(self, service):
        request = CompleteRequest(prefix="da")
        first = service.execute(request)
        first.payload["completions"].append(["POISON", 999])
        second = service.execute(request)
        assert second.cache_hit
        assert ["POISON", 999] not in second.payload["completions"]

    def test_repeat_query_hits_cache(self, service):
        request = FindInfluencersRequest("data mining", k=3)
        first = service.execute(request)
        second = service.execute(request)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.payload == first.payload
        assert service.cache.hits == 1

    def test_equivalent_wire_forms_share_cache(self, service):
        typed = FindInfluencersRequest("data mining", k=3)
        service.execute(typed)
        wire = service.execute(typed.to_json())
        assert wire.cache_hit

    def test_stats_never_cached(self, service):
        first = service.execute(StatsRequest())
        second = service.execute(StatsRequest())
        assert not first.cache_hit and not second.cache_hit

    def test_errors_not_cached(self, service):
        request = FindInfluencersRequest("definitely not a keyword")
        service.execute(request)
        second = service.execute(request)
        assert not second.cache_hit

    def test_cache_capacity_from_backend_config(self, backend):
        assert OctopusService(backend).cache.capacity == (
            backend.config.cache_capacity
        )
        assert OctopusService(backend, cache_capacity=7).cache.capacity == 7


class TestBatch:
    def test_batch_matches_sequential(self, service, backend, active_user):
        requests = [
            FindInfluencersRequest("data mining", k=3),
            SuggestKeywordsRequest(user=active_user, k=2),
            CompleteRequest(prefix="da"),
            FindInfluencersRequest("clustering", k=2),
            ExplorePathsRequest(user=active_user, threshold=0.05),
        ]
        sequential = [
            OctopusService(backend).execute(request) for request in requests
        ]
        batched = OctopusService(backend).execute_batch(requests)

        def comparable(response):
            payload = dict(response.payload)
            payload.pop("elapsed_seconds", None)  # wall clock, not a result
            return payload

        assert list(map(comparable, batched)) == list(
            map(comparable, sequential)
        )
        assert [r.ok for r in batched] == [r.ok for r in sequential]
        assert [r.service for r in batched] == [r.service for r in sequential]

    def test_batch_preserves_input_order(self, service, active_user):
        requests = [
            CompleteRequest(prefix="da"),
            FindInfluencersRequest("data mining", k=2),
            CompleteRequest(prefix="cl"),
        ]
        responses = service.execute_batch(requests)
        assert [r.service for r in responses] == [
            "complete",
            "influencers",
            "complete",
        ]

    def test_batch_shares_duplicates(self, backend):
        service = OctopusService(backend)
        requests = [
            FindInfluencersRequest("data mining", k=3),
            FindInfluencersRequest("data mining", k=3),
            FindInfluencersRequest("data mining", k=3),
        ]
        responses = service.execute_batch(requests)
        assert [r.cache_hit for r in responses] == [False, True, True]
        assert responses[0].payload == responses[2].payload

    def test_batch_isolates_failures(self, service):
        responses = service.execute_batch(
            [
                {"service": "complete", "prefix": "da"},
                {"service": "teleport"},
                "{broken json",
                {"service": "complete", "prefix": "da"},
            ]
        )
        assert [r.ok for r in responses] == [True, False, False, True]
        assert responses[1].error.code == "malformed_request"

    def test_empty_batch(self, service):
        assert service.execute_batch([]) == []

    def test_batch_survives_unhashable_field(self, service):
        # a list-valued user can't be hashed for dedup; it must fail only
        # its own slot with an envelope, not crash the batch
        responses = service.execute_batch(
            [
                {"service": "suggest", "user": [1]},
                {"service": "complete", "prefix": "da"},
            ]
        )
        assert [r.ok for r in responses] == [False, True]
        assert responses[0].error.code == "invalid_request"

    def test_batch_failures_not_shared_as_cache_hits(self, service):
        request = SuggestKeywordsRequest(user="Nobody Nowhere")
        responses = service.execute_batch([request, request])
        assert [r.ok for r in responses] == [False, False]
        assert all(not r.cache_hit for r in responses)

    def test_batch_duplicate_latency_is_share_cost(self, backend):
        service = OctopusService(backend)
        request = FindInfluencersRequest("data mining", k=3)
        computed, duplicate, _ = service.execute_batch(
            [request, request, request]
        )
        assert duplicate.cache_hit
        # the duplicate reports the (tiny) share cost, not the compute cost
        assert duplicate.latency_ms < computed.latency_ms


class TestMiddleware:
    def test_user_middleware_runs_in_order(self, backend):
        trace = []

        def outer(request, call_next):
            trace.append("outer:in")
            response = call_next(request)
            trace.append("outer:out")
            return response

        def inner(request, call_next):
            trace.append("inner:in")
            response = call_next(request)
            trace.append("inner:out")
            return response

        service = OctopusService(backend, middleware=[outer, inner])
        service.execute(CompleteRequest(prefix="da"))
        assert trace == ["outer:in", "inner:in", "inner:out", "outer:out"]

    def test_user_middleware_sits_outside_cache(self, backend):
        seen = []

        def spy(request, call_next):
            seen.append(request.service)
            return call_next(request)

        service = OctopusService(backend, middleware=[spy])
        request = CompleteRequest(prefix="da")
        service.execute(request)
        hit = service.execute(request)
        # spy runs on both calls: it wraps the cache, which answered the 2nd
        assert seen == ["complete", "complete"]
        assert hit.cache_hit

    def test_validation_runs_before_cache_and_backend(self, backend):
        reached = []

        def spy(request, call_next):
            reached.append(request.service)
            return call_next(request)

        service = OctopusService(backend, middleware=[spy])
        response = service.execute(FindInfluencersRequest("x", k=-1))
        # structural validation rejected the request before the spy layer
        assert not response.ok
        assert reached == []

    def test_metrics_outermost_records_everything(self, backend):
        service = OctopusService(backend)
        request = CompleteRequest(prefix="da")
        service.execute(request)
        service.execute(request)  # cache hit
        service.execute("{broken")  # malformed: coercion fails pre-stack
        snapshot = service.metrics.snapshot()
        assert snapshot["service.complete.requests"] == 2.0
        assert snapshot["service.complete.cache_hits"] == 1.0
        assert snapshot["service.complete.hit_rate"] == 0.5
        assert snapshot["service.complete.mean_latency_ms"] > 0

    def test_rate_limit_rejects_over_budget(self, backend):
        clock = {"now": 0.0}
        service = OctopusService(
            backend, rate_limit=2.0, clock=lambda: clock["now"]
        )
        first = service.execute(CompleteRequest(prefix="da"))
        second = service.execute(CompleteRequest(prefix="cl"))
        third = service.execute(CompleteRequest(prefix="em"))
        assert first.ok and second.ok
        assert not third.ok
        assert third.error.code == "rate_limited"
        clock["now"] += 1.0  # refill 2 tokens
        recovered = service.execute(CompleteRequest(prefix="em"))
        assert recovered.ok

    def test_rate_limiter_standalone_refill_cap(self):
        clock = {"now": 0.0}
        limiter = RateLimitMiddleware(
            1.0, burst=1, clock=lambda: clock["now"]
        )
        ok = ServiceResponse.success("stats", {})
        assert limiter(StatsRequest(), lambda req: ok) is not None
        rejected = limiter(StatsRequest(), lambda req: ok)
        assert rejected.error.code == "rate_limited"
        assert rejected.error.details["retry_after_seconds"] > 0

    def test_metrics_reset(self):
        metrics = ServiceMetrics()
        metrics.record(ServiceResponse.success("stats", {}))
        assert metrics.snapshot()
        metrics.reset()
        assert metrics.snapshot() == {}

    def test_internal_errors_become_envelopes(self, backend):
        service = OctopusService(backend)
        original = service._handlers["complete"]

        def explode(request):
            return 1 / 0

        service._handlers["complete"] = explode
        try:
            response = service.execute(CompleteRequest(prefix="da"))
        finally:
            service._handlers["complete"] = original
        assert not response.ok
        assert response.error.code == "internal_error"
        assert "ZeroDivisionError" in response.error.message

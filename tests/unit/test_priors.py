"""Unit tests for repro.topics.priors."""

import numpy as np
import pytest

from repro.topics.priors import (
    l1_distance,
    normalize_distribution,
    one_hot_distribution,
    sample_topic_distributions,
    uniform_distribution,
)


class TestBasicDistributions:
    def test_uniform(self):
        gamma = uniform_distribution(4)
        np.testing.assert_allclose(gamma, 0.25)

    def test_one_hot(self):
        gamma = one_hot_distribution(3, 1)
        np.testing.assert_array_equal(gamma, [0.0, 1.0, 0.0])

    def test_one_hot_invalid_topic(self):
        with pytest.raises(ValueError):
            one_hot_distribution(3, 3)


class TestSampling:
    def test_shape_and_simplex(self):
        samples = sample_topic_distributions(5, 20, seed=0)
        assert samples.shape == (20, 5)
        np.testing.assert_allclose(samples.sum(axis=1), 1.0)
        assert np.all(samples >= 0)

    def test_low_concentration_is_sparse(self):
        sparse = sample_topic_distributions(8, 200, concentration=0.1, seed=1)
        dense = sample_topic_distributions(8, 200, concentration=10.0, seed=1)
        assert sparse.max(axis=1).mean() > dense.max(axis=1).mean()

    def test_deterministic(self):
        a = sample_topic_distributions(4, 5, seed=3)
        b = sample_topic_distributions(4, 5, seed=3)
        np.testing.assert_array_equal(a, b)


class TestDistance:
    def test_l1_distance_basics(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        assert l1_distance(a, b) == pytest.approx(2.0)
        assert l1_distance(a, a) == 0.0

    def test_l1_distance_shape_mismatch(self):
        with pytest.raises(ValueError):
            l1_distance(np.array([1.0]), np.array([0.5, 0.5]))


class TestNormalize:
    def test_normalizes_weights(self):
        np.testing.assert_allclose(
            normalize_distribution(np.array([1.0, 3.0])), [0.25, 0.75]
        )

    def test_zero_vector_becomes_uniform(self):
        np.testing.assert_allclose(
            normalize_distribution(np.zeros(4)), 0.25
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_distribution(np.array([-1.0, 2.0]))

    def test_matrix_rejected(self):
        with pytest.raises(ValueError):
            normalize_distribution(np.ones((2, 2)))

"""Unit tests for repro.core.besteffort."""

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import NeighborhoodBound, PrecomputationBound
from repro.im.ris import ris_im
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def setup():
    from repro.graph.generators import preferential_attachment_digraph

    graph = preferential_attachment_digraph(150, 3, seed=7)
    weights = TopicEdgeWeights.weighted_cascade(graph, 4, seed=8)
    estimator = PrecomputationBound(weights, grid=4)
    return graph, weights, estimator


GAMMA = np.array([0.6, 0.2, 0.1, 0.1])


class TestQuery:
    def test_returns_k_seeds(self, setup):
        _graph, weights, bound = setup
        engine = BestEffortKeywordIM(weights, bound, oracle="ris", seed=0)
        result = engine.query(GAMMA, 5)
        assert len(result.seeds) == 5
        assert len(set(result.seeds)) == 5
        assert result.spread > 0

    def test_prunes_most_candidates(self, setup):
        graph, weights, bound = setup
        engine = BestEffortKeywordIM(weights, bound, oracle="ris", seed=0)
        result = engine.query(GAMMA, 5)
        assert result.statistics["exact_evaluations"] < graph.num_nodes

    def test_quality_close_to_direct_ris(self, setup):
        graph, weights, bound = setup
        probabilities = weights.edge_probabilities(GAMMA)
        direct = ris_im(graph, probabilities, 5, num_sets=4000, seed=1)
        engine = BestEffortKeywordIM(
            weights, bound, oracle="ris", num_sets=4000, seed=2
        )
        result = engine.query(GAMMA, 5)
        # Compare both seed sets on an independent estimator.
        from repro.propagation.estimators import MonteCarloSpreadEstimator

        judge = MonteCarloSpreadEstimator(
            graph, probabilities, num_samples=800, seed=3
        )
        assert judge.spread(result.seeds) >= 0.85 * judge.spread(direct.seeds)

    def test_warm_start_prunes_and_preserves_quality(self, setup):
        graph, weights, bound = setup
        engine = BestEffortKeywordIM(
            weights, bound, oracle="ris", num_sets=3000, seed=4
        )
        baseline = engine.query(GAMMA, 5)
        warm = engine.query(GAMMA, 5, warm_start=baseline.seeds)
        assert warm.statistics["pruned_by_warm_start"] >= 0
        assert warm.spread >= 0.8 * baseline.spread

    def test_candidate_limit(self, setup):
        _graph, weights, bound = setup
        engine = BestEffortKeywordIM(
            weights, bound, oracle="ris", candidate_limit=20, seed=5
        )
        result = engine.query(GAMMA, 3)
        assert result.statistics["candidates_considered"] == 20.0

    def test_mc_oracle_works(self, setup):
        _graph, weights, bound = setup
        engine = BestEffortKeywordIM(
            weights, bound, oracle="mc", num_samples=50, seed=6
        )
        result = engine.query(GAMMA, 2)
        assert len(result.seeds) == 2

    def test_custom_oracle_factory(self, setup):
        graph, weights, bound = setup
        calls = []

        def factory(graph_arg, probabilities):
            from repro.propagation.estimators import RRSetSpreadEstimator

            calls.append(1)
            return RRSetSpreadEstimator(
                graph_arg, probabilities, num_sets=300, seed=0
            )

        engine = BestEffortKeywordIM(weights, bound, oracle=factory)
        engine.query(GAMMA, 2)
        assert calls == [1]

    def test_invalid_oracle_name(self, setup):
        _graph, weights, bound = setup
        with pytest.raises(ValidationError, match="oracle"):
            BestEffortKeywordIM(weights, bound, oracle="bogus")

    def test_invalid_gamma(self, setup):
        _graph, weights, bound = setup
        engine = BestEffortKeywordIM(weights, bound, oracle="ris", seed=0)
        with pytest.raises(ValidationError):
            engine.query(np.array([0.5, 0.5, 0.5, 0.5]), 3)

    def test_invalid_k(self, setup):
        _graph, weights, bound = setup
        engine = BestEffortKeywordIM(weights, bound, oracle="ris", seed=0)
        with pytest.raises(ValidationError):
            engine.query(GAMMA, 0)

    def test_works_with_neighborhood_bound(self, setup):
        _graph, weights, _bound = setup
        engine = BestEffortKeywordIM(
            weights, NeighborhoodBound(weights), oracle="ris", seed=7
        )
        result = engine.query(GAMMA, 3)
        assert len(result.seeds) == 3

    def test_bad_bound_shape_detected(self, setup):
        _graph, weights, _bound = setup

        class BadBound:
            def bounds(self, gamma):
                return np.ones(3)

        engine = BestEffortKeywordIM(weights, BadBound(), oracle="ris", seed=0)
        with pytest.raises(ValidationError, match="shape"):
            engine.query(GAMMA, 2)

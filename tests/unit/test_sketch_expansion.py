"""Seed-stability of the influencer-index sketch expansion kernels.

The index has two expansion disciplines (mirroring the RR sampling
kernels): ``node`` — the historical node-at-a-time loop — and
``frontier`` — the batched kernel that draws one threshold array per
frontier batch.  The contracts proven here:

* ``node`` mode is **bit-identical to the current implementation** as it
  shipped before this refactor (an inline reference copy pins it);
* ``frontier`` mode is self-deterministic: the same seed produces the same
  sketches regardless of budget boundaries (eager vs. chunked delayed
  materialization), build backend, or worker count;
* the two modes sample the same distribution (their estimates agree
  statistically), but are *not* draw-compatible — exactly the RR-kernel
  contract.
"""

from __future__ import annotations

from typing import List, Set

import numpy as np
import pytest

from repro.core.influencer_index import InfluencerIndex, Sketch, check_expansion
from repro.graph.digraph import SocialGraph
from repro.graph.generators import preferential_attachment_digraph
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError

GAMMA = np.array([0.6, 0.25, 0.1, 0.05])


@pytest.fixture(scope="module")
def weights() -> TopicEdgeWeights:
    graph = preferential_attachment_digraph(150, 3, seed=91)
    return TopicEdgeWeights.weighted_cascade(graph, 4, seed=92)


def fingerprint(index: InfluencerIndex):
    """Everything randomness touches in a sketch, per sketch."""
    return [
        (
            sketch.root,
            sorted(sketch.nodes),
            sketch.edge_sources,
            sketch.edge_targets,
            sketch.edge_ids,
            sketch.edge_thresholds,
            sketch.edges_pruned,
        )
        for sketch in index.sketches
    ]


def materialize_all(index: InfluencerIndex) -> InfluencerIndex:
    for sketch_index in range(index.num_sketches):
        index._materialize(sketch_index)
    return index


# ----------------------------------------------------------------------
# The reference: the expansion loop exactly as it shipped pre-refactor.
# ----------------------------------------------------------------------


def _reference_expand(
    graph: SocialGraph,
    envelope: np.ndarray,
    sketch: Sketch,
    rng: np.random.Generator,
    budget: int,
) -> None:
    """Verbatim copy of the historical node-at-a-time ``_expand_sketch``."""
    processed = 0
    while sketch.frontier and processed < budget:
        node = sketch.frontier.pop()
        processed += 1
        start, stop = graph.in_offsets[node], graph.in_offsets[node + 1]
        degree = int(stop - start)
        if degree == 0:
            continue
        thresholds = rng.random(degree)
        edge_ids = graph.in_edge_ids[start:stop]
        live = thresholds <= envelope[edge_ids]
        live_count = int(np.count_nonzero(live))
        sketch.edges_pruned += degree - live_count
        if live_count == 0:
            continue
        live_sources = graph.in_sources[start:stop][live].tolist()
        sketch.edge_sources.extend(live_sources)
        sketch.edge_targets.extend([node] * live_count)
        sketch.edge_ids.extend(edge_ids[live].tolist())
        sketch.edge_thresholds.extend(thresholds[live].tolist())
        for source in live_sources:
            if source not in sketch.nodes:
                sketch.nodes.add(source)
                sketch.frontier.append(source)


def _reference_index_sketches(weights: TopicEdgeWeights, num: int, seed: int):
    """Sketches the pre-refactor implementation builds for this seed."""
    from repro.utils.rng import spawn_generators

    graph = weights.graph
    envelope = weights.max_over_topics()
    generators = spawn_generators(seed, num + 1)
    roots = generators[0].integers(0, graph.num_nodes, size=num)
    sketches: List[Sketch] = []
    for index, root in enumerate(roots):
        sketch = Sketch(root=int(root), nodes={int(root)}, frontier=[int(root)])
        _reference_expand(
            graph, envelope, sketch, generators[1 + index], budget=1_000_000
        )
        sketches.append(sketch)
    return sketches


class TestNodeModeSeedStability:
    """``node`` mode stays the bit-compatible pre-refactor reference.

    The default flipped to ``frontier`` once the batched kernel proved
    itself; ``node`` remains selectable so earlier releases' seeds keep
    their exact bytes — this suite is the proof it still has them.
    """

    def test_node_mode_matches_the_pre_refactor_implementation(self, weights):
        index = InfluencerIndex(weights, num_sketches=50, seed=17, expansion="node")
        assert index.expansion == "node"  # the bit-compatible reference
        reference = _reference_index_sketches(weights, 50, seed=17)
        for built, expected in zip(index.sketches, reference):
            assert built.root == expected.root
            assert built.nodes == expected.nodes
            assert built.edge_sources == expected.edge_sources
            assert built.edge_targets == expected.edge_targets
            assert built.edge_ids == expected.edge_ids
            assert built.edge_thresholds == expected.edge_thresholds
            assert built.edges_pruned == expected.edges_pruned


class TestFrontierModeDeterminism:
    """Same seed ⇒ same sketches, however the work is scheduled."""

    def test_budget_boundaries_are_invisible(self, weights):
        eager = materialize_all(
            InfluencerIndex(weights, num_sketches=40, seed=18, expansion="frontier")
        )
        for chunk_size in (1, 3, 17):
            lazy = InfluencerIndex(
                weights,
                num_sketches=40,
                chunk_size=chunk_size,
                seed=18,
                expansion="frontier",
            )
            materialize_all(lazy)
            assert fingerprint(lazy) == fingerprint(eager)

    def test_backends_and_worker_counts_are_invisible(self, weights):
        from repro.backend import (
            ProcessPoolBackend,
            SerialBackend,
            ThreadPoolBackend,
        )

        reference = InfluencerIndex(
            weights, num_sketches=40, seed=19, expansion="frontier"
        )
        for make in (
            SerialBackend,
            lambda: ThreadPoolBackend(4),
            lambda: ProcessPoolBackend(2),
        ):
            with make() as backend:
                built = InfluencerIndex(
                    weights,
                    num_sketches=40,
                    seed=19,
                    backend=backend,
                    expansion="frontier",
                )
            assert fingerprint(built) == fingerprint(reference)

    def test_delayed_materialization_continues_the_stream(self, weights):
        eager = InfluencerIndex(
            weights, num_sketches=30, seed=20, expansion="frontier"
        )
        lazy = InfluencerIndex(
            weights, num_sketches=30, chunk_size=2, seed=20, expansion="frontier"
        )
        assert any(not sketch.complete for sketch in lazy.sketches)
        for user in (0, 5, 40):
            assert lazy.estimate_user_spread(user, GAMMA) == pytest.approx(
                eager.estimate_user_spread(user, GAMMA)
            )


class TestFrontierModeDistribution:
    """Different draw order, same sampling distribution."""

    def test_edge_thresholds_respect_the_envelope(self, weights):
        index = InfluencerIndex(
            weights, num_sketches=30, seed=21, expansion="frontier"
        )
        envelope = weights.max_over_topics()
        for sketch in index.sketches:
            for edge_id, theta in zip(sketch.edge_ids, sketch.edge_thresholds):
                assert theta <= envelope[edge_id]

    def test_sketch_membership_is_reverse_reachable(self, weights):
        """Every sketch node must reach the root through recorded edges."""
        index = InfluencerIndex(
            weights, num_sketches=20, seed=22, expansion="frontier"
        )
        for sketch in index.sketches:
            reached: Set[int] = {sketch.root}
            # Edges are appended in discovery order: walking them forward
            # must connect every recorded target before its sources.
            for source, target in zip(sketch.edge_sources, sketch.edge_targets):
                assert target in reached
                reached.add(source)
            assert reached == sketch.nodes

    def test_estimates_agree_across_modes(self, weights):
        node_mode = InfluencerIndex(weights, num_sketches=300, seed=23)
        frontier_mode = InfluencerIndex(
            weights, num_sketches=300, seed=23, expansion="frontier"
        )
        users = [0, 3, 10, 25]
        node_total = sum(node_mode.estimate_user_spread(u, GAMMA) for u in users)
        frontier_total = sum(
            frontier_mode.estimate_user_spread(u, GAMMA) for u in users
        )
        assert frontier_total == pytest.approx(node_total, rel=0.35, abs=6.0)


class TestConfigPlumbing:
    def test_invalid_expansion_rejected(self, weights):
        with pytest.raises(ValidationError):
            InfluencerIndex(weights, num_sketches=5, expansion="bogus")
        with pytest.raises(ValidationError):
            check_expansion("batched")

    def test_octopus_config_threads_the_mode_through(self):
        from repro.core.octopus import Octopus, OctopusConfig
        from repro.datasets.citation import CitationNetworkGenerator

        dataset = CitationNetworkGenerator(num_researchers=60, seed=5).generate()
        config = OctopusConfig(
            num_sketches=20,
            num_topic_samples=2,
            topic_sample_rr_sets=100,
            oracle_samples=10,
            sketch_expansion="frontier",
            seed=6,
        )
        system = Octopus.from_dataset(dataset, config=config)
        assert system.influencer_index.expansion == "frontier"
        result = system.suggest_keywords(0, k=2)
        assert len(result.keywords) <= 2

    def test_octopus_config_rejects_bad_mode(self):
        from repro.core.octopus import OctopusConfig

        with pytest.raises(ValidationError):
            OctopusConfig(sketch_expansion="bogus")

"""Unit tests for repro.backend: the execution-backend contract.

The load-bearing property is determinism: for a fixed seed, every backend
at every worker count must produce identical results, because chunking and
per-chunk RNG streams — not scheduling — define the output.
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    default_worker_count,
    resolve_backend,
    seed_to_sequence,
)
from repro.utils.validation import ValidationError


def _square(value):
    return value * value


@pytest.fixture(
    params=["serial", "threads", "processes"], ids=lambda name: name
)
def any_backend(request):
    backend = resolve_backend(request.param, workers=2)
    yield backend
    backend.close()


class TestMapChunks:
    def test_preserves_order(self, any_backend):
        values = list(range(23))
        assert any_backend.map_chunks(_square, values) == [
            value * value for value in values
        ]

    def test_empty(self, any_backend):
        assert any_backend.map_chunks(_square, []) == []

    def test_single_chunk(self, any_backend):
        assert any_backend.map_chunks(_square, [7]) == [49]

    def test_reusable_after_close(self):
        backend = ThreadPoolBackend(2)
        assert backend.map_chunks(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map_chunks(_square, [3, 4]) == [9, 16]
        backend.close()

    def test_context_manager_closes(self):
        with ThreadPoolBackend(2) as backend:
            assert backend.map_chunks(_square, [2, 3]) == [4, 9]
        assert backend._executor is None


class TestResolveBackend:
    def test_names(self):
        assert resolve_backend(None).name == "serial"
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("threads", 3).workers == 3
        assert resolve_backend("processes", 2).workers == 2
        assert set(BACKEND_NAMES) == {"serial", "threads", "processes"}

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            resolve_backend("quantum")

    def test_invalid_workers(self):
        with pytest.raises(ValidationError):
            ThreadPoolBackend(0)

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1
        assert resolve_backend("threads").workers == default_worker_count()

    def test_backend_repr_names(self):
        assert "workers=1" in repr(SerialBackend())
        assert isinstance(SerialBackend(), ExecutionBackend)


class TestSeedToSequence:
    def test_int_and_none(self):
        assert isinstance(seed_to_sequence(5), np.random.SeedSequence)
        assert isinstance(seed_to_sequence(None), np.random.SeedSequence)

    def test_sequence_passthrough(self):
        sequence = np.random.SeedSequence(9)
        assert seed_to_sequence(sequence) is sequence

    def test_generator_draw_is_deterministic(self):
        first = seed_to_sequence(np.random.default_rng(3))
        second = seed_to_sequence(np.random.default_rng(3))
        assert first.entropy == second.entropy


class TestSampleRRSets:
    def test_identical_across_backends_and_worker_counts(
        self, medium_graph, medium_probabilities
    ):
        """The tentpole acceptance property, at the backend level."""
        reference = SerialBackend().sample_rr_sets(
            medium_graph, medium_probabilities, 600, seed=11
        )
        for make in (
            lambda: ThreadPoolBackend(2),
            lambda: ThreadPoolBackend(4),
            lambda: ProcessPoolBackend(2),
        ):
            with make() as backend:
                sampled = backend.sample_rr_sets(
                    medium_graph, medium_probabilities, 600, seed=11
                )
            assert sampled == reference

    def test_chunk_size_is_part_of_the_contract(
        self, medium_graph, medium_probabilities
    ):
        """Same (seed, chunk_size) ⇒ same draw, on any backend."""
        serial = SerialBackend().sample_rr_sets(
            medium_graph, medium_probabilities, 100, seed=2, chunk_size=16
        )
        with ThreadPoolBackend(3) as backend:
            threaded = backend.sample_rr_sets(
                medium_graph, medium_probabilities, 100, seed=2, chunk_size=16
            )
        assert serial == threaded
        assert all(rr for rr in serial)  # every RR set contains its root

    def test_roots_cycle_like_the_serial_sampler(self, line_graph):
        rr_sets = SerialBackend().sample_rr_sets(
            line_graph, np.zeros(3), 7, seed=0, roots=[3, 1], chunk_size=2
        )
        assert [next(iter(rr)) for rr in rr_sets] == [3, 1, 3, 1, 3, 1, 3]

    def test_invalid_root_rejected(self, line_graph):
        with pytest.raises(ValidationError):
            SerialBackend().sample_rr_sets(
                line_graph, np.zeros(3), 4, seed=0, roots=[9]
            )

    def test_empty_roots_rejected(self, line_graph):
        with pytest.raises(ValidationError):
            SerialBackend().sample_rr_sets(
                line_graph, np.zeros(3), 4, seed=0, roots=[]
            )

    def test_num_sets_respected(self, medium_graph, medium_probabilities):
        with ThreadPoolBackend(2) as backend:
            sampled = backend.sample_rr_sets(
                medium_graph, medium_probabilities, 300, seed=1, chunk_size=77
            )
        assert len(sampled) == 300

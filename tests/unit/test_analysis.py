"""Unit tests for repro.graph.analysis."""

import numpy as np
import pytest

from repro.graph.analysis import (
    degree_histogram,
    pagerank,
    top_nodes_by_degree,
    weakly_connected_components,
)
from repro.graph.digraph import SocialGraph
from repro.utils.validation import ValidationError


class TestPagerank:
    def test_sums_to_one(self, medium_graph):
        scores = pagerank(medium_graph)
        assert scores.sum() == pytest.approx(1.0)
        assert np.all(scores > 0)

    def test_sink_receives_mass(self, line_graph):
        scores = pagerank(line_graph)
        assert scores[3] == scores.max()

    def test_symmetric_cycle_uniform(self):
        graph = SocialGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        scores = pagerank(graph)
        np.testing.assert_allclose(scores, 0.25, atol=1e-6)

    def test_empty_graph(self):
        graph = SocialGraph.from_edges(0, [])
        assert pagerank(graph).size == 0

    def test_dangling_nodes_handled(self, star_graph):
        scores = pagerank(star_graph)
        assert scores.sum() == pytest.approx(1.0)
        # spokes all equal by symmetry
        np.testing.assert_allclose(scores[1:], scores[1], atol=1e-9)

    def test_invalid_damping(self, line_graph):
        with pytest.raises(ValidationError):
            pagerank(line_graph, damping=1.5)


class TestComponents:
    def test_single_component(self, diamond_graph):
        labels = weakly_connected_components(diamond_graph)
        assert len(set(labels.tolist())) == 1

    def test_two_components(self):
        graph = SocialGraph.from_edges(4, [(0, 1), (2, 3)])
        labels = weakly_connected_components(graph)
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_isolated_nodes_get_own_component(self):
        graph = SocialGraph.from_edges(3, [])
        labels = weakly_connected_components(graph)
        assert len(set(labels.tolist())) == 3

    def test_direction_ignored(self):
        graph = SocialGraph.from_edges(3, [(1, 0), (1, 2)])
        labels = weakly_connected_components(graph)
        assert len(set(labels.tolist())) == 1


class TestDegreeStatistics:
    def test_histogram_in(self, star_graph):
        histogram = degree_histogram(star_graph, incoming=True)
        assert histogram == {0: 1, 1: 5}

    def test_histogram_out(self, star_graph):
        histogram = degree_histogram(star_graph, incoming=False)
        assert histogram == {0: 5, 5: 1}

    def test_top_nodes(self, star_graph):
        top = top_nodes_by_degree(star_graph, 2, incoming=False)
        assert top[0] == (0, 5)

    def test_top_nodes_k_larger_than_n(self, line_graph):
        top = top_nodes_by_degree(line_graph, 100)
        assert len(top) == 4

"""Unit tests for repro.utils.heap."""

import pytest

from repro.utils.heap import LazyGreedyQueue, TopK


class TestLazyGreedyQueue:
    def test_pop_returns_largest_gain(self):
        queue = LazyGreedyQueue()
        queue.push("a", 1.0)
        queue.push("b", 3.0)
        queue.push("c", 2.0)
        item, gain, _fresh = queue.pop_best()
        assert item == "b"
        assert gain == 3.0

    def test_entries_start_fresh_within_round(self):
        queue = LazyGreedyQueue()
        queue.push("a", 1.0)
        _item, _gain, fresh = queue.pop_best()
        assert fresh

    def test_mark_all_stale(self):
        queue = LazyGreedyQueue()
        queue.push("a", 1.0)
        queue.mark_all_stale()
        _item, _gain, fresh = queue.pop_best()
        assert not fresh

    def test_reinsert_after_stale_is_fresh(self):
        queue = LazyGreedyQueue()
        queue.push("a", 5.0)
        queue.push("b", 4.0)
        queue.mark_all_stale()
        item, gain, fresh = queue.pop_best()
        assert (item, fresh) == ("a", False)
        queue.push("a", 3.5)  # re-evaluated, smaller gain
        item, gain, fresh = queue.pop_best()
        assert (item, gain, fresh) == ("b", 4.0, False)

    def test_push_replaces_previous_entry(self):
        queue = LazyGreedyQueue()
        queue.push("a", 10.0)
        queue.push("a", 1.0)
        assert len(queue) == 1
        item, gain, _ = queue.pop_best()
        assert (item, gain) == ("a", 1.0)
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            LazyGreedyQueue().pop_best()

    def test_contains_and_len(self):
        queue = LazyGreedyQueue()
        queue.push(1, 1.0)
        queue.push(2, 2.0)
        assert 1 in queue and 2 in queue and 3 not in queue
        assert len(queue) == 2

    def test_discard(self):
        queue = LazyGreedyQueue()
        queue.push("a", 1.0)
        queue.discard("a")
        assert len(queue) == 0
        with pytest.raises(IndexError):
            queue.pop_best()

    def test_best_gain_skips_superseded(self):
        queue = LazyGreedyQueue()
        queue.push("a", 10.0)
        queue.push("a", 2.0)
        queue.push("b", 5.0)
        assert queue.best_gain() == 5.0

    def test_best_gain_empty(self):
        assert LazyGreedyQueue().best_gain() is None

    def test_peek_gain(self):
        queue = LazyGreedyQueue()
        queue.push("a", 1.5)
        assert queue.peek_gain("a") == 1.5
        assert queue.peek_gain("zz") is None

    def test_celf_simulation(self):
        """Simulate a CELF round: stale pop, re-evaluate, accept fresh."""
        queue = LazyGreedyQueue()
        true_gain = {"a": 2.0, "b": 1.8, "c": 0.5}
        for item, bound in [("a", 5.0), ("b", 2.5), ("c", 0.9)]:
            queue.push(item, bound)
        queue.mark_all_stale()
        selected = []
        while queue and len(selected) < 2:
            item, _gain, fresh = queue.pop_best()
            if fresh:
                selected.append(item)
                queue.mark_all_stale()
            else:
                queue.push(item, true_gain[item])
        assert selected == ["a", "b"]


class TestTopK:
    def test_retains_k_largest(self):
        top = TopK(2)
        for item, score in [("a", 1.0), ("b", 5.0), ("c", 3.0)]:
            top.add(item, score)
        assert [item for item, _s in top.items()] == ["b", "c"]

    def test_add_returns_retention(self):
        top = TopK(1)
        assert top.add("a", 1.0)
        assert top.add("b", 2.0)
        assert not top.add("c", 0.5)

    def test_threshold(self):
        top = TopK(2)
        assert top.threshold() is None
        top.add("a", 1.0)
        assert top.threshold() is None
        top.add("b", 2.0)
        assert top.threshold() == 1.0

    def test_ties_keep_earlier_insertion(self):
        top = TopK(1)
        top.add("first", 1.0)
        top.add("second", 1.0)
        assert top.items() == [("first", 1.0)]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_iter_matches_items(self):
        top = TopK(3)
        for index in range(5):
            top.add(index, float(index))
        assert list(top) == top.items()
        assert len(top) == 3

"""Unit tests for repro.graph.generators."""

import numpy as np
import pytest

from repro.graph.generators import (
    citation_dag,
    erdos_renyi_digraph,
    preferential_attachment_digraph,
    small_world_digraph,
)
from repro.utils.validation import ValidationError


class TestErdosRenyi:
    def test_edge_count_near_expectation(self):
        graph = erdos_renyi_digraph(200, 0.05, seed=0)
        expected = 200 * 199 * 0.05
        assert 0.6 * expected < graph.num_edges < 1.4 * expected

    def test_no_self_loops(self):
        graph = erdos_renyi_digraph(50, 0.2, seed=1)
        for _eid, u, v in graph.edges():
            assert u != v

    def test_zero_probability(self):
        assert erdos_renyi_digraph(20, 0.0, seed=2).num_edges == 0

    def test_deterministic(self):
        a = erdos_renyi_digraph(30, 0.1, seed=3)
        b = erdos_renyi_digraph(30, 0.1, seed=3)
        assert list(a.edges()) == list(b.edges())

    def test_single_node(self):
        graph = erdos_renyi_digraph(1, 0.5, seed=4)
        assert graph.num_edges == 0

    def test_invalid_probability(self):
        with pytest.raises(ValidationError):
            erdos_renyi_digraph(10, 1.5)


class TestPreferentialAttachment:
    def test_edge_count(self):
        graph = preferential_attachment_digraph(100, 3, seed=0)
        # node t adds min(3, t) edges
        assert graph.num_edges == 1 + 2 + 3 * 97

    def test_power_law_ish_in_degrees(self):
        graph = preferential_attachment_digraph(500, 3, seed=1)
        degrees = np.sort(graph.in_degree())[::-1]
        # hubs exist: the max in-degree far exceeds the mean.
        assert degrees[0] > 5 * degrees.mean()

    def test_edges_point_backwards(self):
        graph = preferential_attachment_digraph(50, 2, seed=2)
        for _eid, u, v in graph.edges():
            assert v < u

    def test_deterministic(self):
        a = preferential_attachment_digraph(40, 2, seed=9)
        b = preferential_attachment_digraph(40, 2, seed=9)
        assert list(a.edges()) == list(b.edges())


class TestSmallWorld:
    def test_reciprocity_increases_edges(self):
        low = small_world_digraph(100, 4, 0.1, reciprocity=0.0, seed=0)
        high = small_world_digraph(100, 4, 0.1, reciprocity=1.0, seed=0)
        assert high.num_edges > low.num_edges

    def test_full_reciprocity_symmetric(self):
        graph = small_world_digraph(60, 3, 0.05, reciprocity=1.0, seed=1)
        for _eid, u, v in graph.edges():
            assert graph.has_edge(v, u)

    def test_rejects_neighbors_too_large(self):
        with pytest.raises(ValidationError):
            small_world_digraph(5, 5, 0.1)

    def test_no_rewire_is_ring(self):
        graph = small_world_digraph(10, 1, 0.0, reciprocity=0.0, seed=2)
        for node in range(10):
            assert graph.has_edge(node, (node + 1) % 10)


class TestCitationDag:
    def test_is_dag_by_construction(self):
        graph = citation_dag(80, 4, seed=0)
        for _eid, u, v in graph.edges():
            assert u < v  # influence flows from earlier to later papers

    def test_early_nodes_accumulate_influence(self):
        graph = citation_dag(400, 5, seed=1)
        out_degrees = graph.out_degree()
        early = out_degrees[:40].mean()
        late = out_degrees[-40:].mean()
        assert early > late

    def test_edge_count(self):
        graph = citation_dag(100, 3, seed=2)
        assert graph.num_edges == 1 + 2 + 3 * 97

    def test_deterministic(self):
        a = citation_dag(30, 3, seed=5)
        b = citation_dag(30, 3, seed=5)
        assert list(a.edges()) == list(b.edges())

    def test_invalid_recency(self):
        with pytest.raises(ValidationError):
            citation_dag(10, 2, recency_bias=2.0)

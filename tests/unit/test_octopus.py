"""Unit tests for the Octopus facade (configuration, parsing, plumbing)."""

import numpy as np
import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def system(citation_dataset_module):
    config = OctopusConfig(
        num_sketches=80,
        num_topic_samples=8,
        topic_sample_rr_sets=500,
        oracle_samples=40,
        seed=9,
    )
    return Octopus.from_dataset(citation_dataset_module, config=config)


@pytest.fixture(scope="module")
def citation_dataset_module():
    from repro.datasets.citation import CitationNetworkGenerator

    return CitationNetworkGenerator(
        num_researchers=150,
        citations_per_paper=3,
        papers_per_author=2,
        seed=77,
    ).generate()


class TestConfig:
    def test_invalid_bound_estimator(self):
        with pytest.raises(ValidationError):
            OctopusConfig(bound_estimator="psychic")

    def test_invalid_counts(self):
        with pytest.raises(ValidationError):
            OctopusConfig(num_sketches=0)

    def test_defaults_valid(self):
        OctopusConfig()


class TestConstruction:
    def test_topic_count_mismatch_detected(self, citation_dataset_module):
        dataset = citation_dataset_module
        from repro.topics.edges import TopicEdgeWeights

        wrong = TopicEdgeWeights(
            dataset.graph, np.full((dataset.graph.num_edges, 2), 0.1)
        )
        with pytest.raises(ValidationError, match="topics"):
            Octopus(
                dataset.graph,
                dataset.true_topic_model,
                wrong,
                dataset.user_keywords,
            )

    def test_foreign_graph_detected(self, citation_dataset_module):
        dataset = citation_dataset_module
        from repro.graph.digraph import SocialGraph
        from repro.topics.edges import TopicEdgeWeights

        other = SocialGraph.from_edges(2, [(0, 1)])
        weights = TopicEdgeWeights(other, np.full((1, 8), 0.1))
        with pytest.raises(ValidationError, match="different graph"):
            Octopus(
                dataset.graph,
                dataset.true_topic_model,
                weights,
                dataset.user_keywords,
            )

    def test_dataset_without_ground_truth_needs_learning(
        self, citation_dataset_module
    ):
        import dataclasses

        stripped = dataclasses.replace(
            citation_dataset_module,
            true_topic_model=None,
            true_edge_weights=None,
        )
        with pytest.raises(ValidationError, match="learn_model"):
            Octopus.from_dataset(stripped)


class TestKeywordParsing:
    def test_single_keyword(self, system):
        assert system.parse_keywords("data mining") == ("data mining",)

    def test_comma_separated(self, system):
        parsed = system.parse_keywords("data mining, clustering")
        assert parsed == ("data mining", "clustering")

    def test_list_input(self, system):
        assert system.parse_keywords(["Clustering"]) == ("clustering",)

    def test_unknown_keyword_suggests(self, system):
        with pytest.raises(ValidationError, match="did you mean"):
            system.parse_keywords("data minin")

    def test_empty_rejected(self, system):
        with pytest.raises(ValidationError, match="no keywords"):
            system.parse_keywords("  ,  ")

    def test_derive_gamma_is_simplex(self, system):
        gamma = system.derive_gamma("data mining")
        assert gamma.sum() == pytest.approx(1.0)
        assert gamma.argmax() == 0  # "data mining" is topic 0's name keyword


class TestUserResolution:
    def test_by_id(self, system):
        assert system.resolve_user(3) == 3

    def test_by_name(self, system):
        name = system.graph.label_of(5)
        assert system.resolve_user(name) == 5

    def test_out_of_range_id(self, system):
        with pytest.raises(ValidationError):
            system.resolve_user(10_000)

    def test_unknown_name_suggests(self, system):
        prefix = system.graph.label_of(0)[:3]
        with pytest.raises(ValidationError, match="unknown user"):
            system.resolve_user(prefix + "zzzzz")

    def test_bool_rejected(self, system):
        with pytest.raises(ValidationError):
            system.resolve_user(True)


class TestServicesPlumbing:
    def test_find_influencers_deterministic_recompute(self, system):
        # The facade is a pure compute backend (caching lives in the
        # service layer); repeated queries recompute to the same answer.
        first = system.find_influencers("data mining", k=3)
        second = system.find_influencers("data mining", k=3)
        assert first.seeds == second.seeds
        assert first is not second

    def test_default_k(self, system):
        result = system.find_influencers("clustering")
        assert len(result.seeds) <= system.config.default_k
        assert result.query.k == system.config.default_k

    def test_suggest_by_name(self, system):
        user = next(iter(system.user_keywords))
        name = system.graph.label_of(user)
        result = system.suggest_keywords(name, k=2)
        assert result.target == user
        assert 1 <= len(result.keywords) <= 2

    def test_explore_paths_with_keywords(self, system):
        tree = system.explore_paths(0, keywords="data mining", threshold=0.05)
        assert tree.root == 0
        np.testing.assert_allclose(tree.gamma, system.derive_gamma("data mining"))

    def test_explore_paths_default_uniform(self, system):
        tree = system.explore_paths(0, threshold=0.05)
        np.testing.assert_allclose(tree.gamma, 1.0 / 8)

    def test_autocomplete_users(self, system):
        label = system.graph.label_of(0)
        completions = system.autocomplete_users(label[:2], limit=5)
        assert any(name == label for name, _node in completions)

    def test_autocomplete_keywords(self, system):
        completions = system.autocomplete_keywords("data", limit=5)
        assert any(key == "data mining" for key, _wid in completions)

    def test_radar_payload(self, system):
        payload = system.radar("em algorithm")
        assert payload["dominant"] == "machine learning"

    def test_statistics_keys(self, system):
        system.find_influencers("data mining", k=3)
        stats = system.statistics()
        assert "seconds.build.influencer_index" in stats
        assert "graph.num_nodes" in stats
        # cache counters moved up to the service layer with the cache
        assert not any(key.startswith("cache.") for key in stats)

    def test_learn_model_pipeline(self, citation_dataset_module):
        from repro.topics.em import EMConfig

        config = OctopusConfig(
            num_sketches=30,
            num_topic_samples=4,
            topic_sample_rr_sets=200,
            oracle_samples=20,
            seed=3,
        )
        system = Octopus.from_dataset(
            citation_dataset_module,
            config=config,
            learn_model=True,
            em_config=EMConfig(num_topics=8, max_iterations=5, seed=0),
        )
        result = system.find_influencers("data mining", k=3)
        assert len(result.seeds) == 3


class TestExecutionBackends:
    def test_config_validates_backend_name(self):
        with pytest.raises(ValidationError):
            OctopusConfig(execution_backend="quantum")
        with pytest.raises(ValidationError):
            OctopusConfig(workers=0)

    def test_config_validates_rr_kernel(self):
        with pytest.raises(ValidationError):
            OctopusConfig(rr_kernel="cuda")
        assert OctopusConfig().rr_kernel == "vectorized"
        assert OctopusConfig(rr_kernel="legacy").rr_kernel == "legacy"
        assert OctopusConfig(rr_kernel="native").rr_kernel == "native"

    def test_statistics_report_kernel_provenance(self, system):
        """`execution.rr_kernel` + native provenance surface in stats."""
        from repro.propagation.native import kernel_provenance

        stats = system.statistics()
        assert stats["execution.rr_kernel"] == system.config.rr_kernel
        assert stats["execution.native_kernel"] == kernel_provenance()
        assert stats["execution.native_kernel"] in (
            "native-compiled",
            "native-fallback",
        )

    def test_pooled_builds_agree_with_each_other(self, citation_dataset_module):
        """threads and processes builds answer queries identically."""
        answers = []
        for backend_name in ("threads", "processes"):
            config = OctopusConfig(
                num_sketches=20,
                num_topic_samples=3,
                topic_sample_rr_sets=120,
                oracle_samples=10,
                execution_backend=backend_name,
                workers=2,
                seed=91,
            )
            with Octopus.from_dataset(
                citation_dataset_module, config=config
            ) as system:
                result = system.find_influencers("data mining", 3)
                answers.append((result.seeds, result.spread))
                assert system.statistics()["execution.workers"] == 2.0
        assert answers[0] == answers[1]

    def test_serial_config_has_no_backend_object(self, system):
        assert system.execution is None
        assert system.statistics()["execution.workers"] == 1.0

"""Unit tests for repro.propagation.ic."""

import numpy as np
import pytest

from repro.propagation.ic import IndependentCascade, simulate_cascade
from repro.utils.validation import ValidationError


class TestSimulateCascade:
    def test_deterministic_edges_fire(self, line_graph):
        trace = simulate_cascade(line_graph, np.ones(3), [0], seed=0)
        assert trace.activated == {0, 1, 2, 3}
        assert trace.spread == 4

    def test_zero_probability_stops(self, line_graph):
        trace = simulate_cascade(line_graph, np.zeros(3), [0], seed=0)
        assert trace.activated == {0}

    def test_seeds_always_active(self, line_graph):
        trace = simulate_cascade(line_graph, np.zeros(3), [1, 3], seed=0)
        assert trace.activated == {1, 3}
        assert trace.seeds == (1, 3)

    def test_trace_records_activation_edges(self, line_graph):
        trace = simulate_cascade(
            line_graph, np.ones(3), [0], seed=0, record_trace=True
        )
        assert [(u, v) for _e, u, v in trace.activation_edges] == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_trace_empty_without_flag(self, line_graph):
        trace = simulate_cascade(line_graph, np.ones(3), [0], seed=0)
        assert trace.activation_edges == []

    def test_empty_seed_set_rejected(self, line_graph):
        with pytest.raises(ValidationError, match="empty"):
            simulate_cascade(line_graph, np.ones(3), [], seed=0)

    def test_duplicate_seed_rejected(self, line_graph):
        with pytest.raises(ValidationError, match="duplicate"):
            simulate_cascade(line_graph, np.ones(3), [0, 0], seed=0)

    def test_out_of_range_seed_rejected(self, line_graph):
        with pytest.raises(ValidationError):
            simulate_cascade(line_graph, np.ones(3), [7], seed=0)

    def test_deterministic_given_seed(self, medium_graph, medium_probabilities):
        a = simulate_cascade(medium_graph, medium_probabilities, [0, 5], seed=3)
        b = simulate_cascade(medium_graph, medium_probabilities, [0, 5], seed=3)
        assert a.activated == b.activated


class TestIndependentCascade:
    def test_shape_validation(self, line_graph):
        with pytest.raises(ValidationError):
            IndependentCascade(line_graph, np.ones(2))

    def test_probability_range_validation(self, line_graph):
        with pytest.raises(ValidationError):
            IndependentCascade(line_graph, np.array([0.5, 1.5, 0.5]))

    def test_estimate_matches_closed_form_on_line(self, line_graph):
        # σ({0}) = 1 + p + p² + p³ for a 3-edge path with probability p.
        p = 0.5
        cascade = IndependentCascade(line_graph, np.full(3, p))
        estimate = cascade.estimate_spread([0], num_samples=4000, seed=0)
        exact = 1 + p + p**2 + p**3
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_estimate_on_diamond(self, diamond_graph):
        # σ({0}) = 1 + 2p + P(3 reached); p=1 → all 4 nodes.
        cascade = IndependentCascade(diamond_graph, np.ones(4))
        assert cascade.estimate_spread([0], num_samples=10, seed=0) == 4.0

    def test_interval_contains_truth(self, line_graph):
        p = 0.6
        cascade = IndependentCascade(line_graph, np.full(3, p))
        mean, half_width = cascade.estimate_spread_with_interval(
            [0], num_samples=2000, seed=1
        )
        exact = 1 + p + p**2 + p**3
        assert abs(mean - exact) < 3 * half_width + 1e-9

    def test_monotone_in_seed_set(self, medium_graph, medium_probabilities):
        cascade = IndependentCascade(medium_graph, medium_probabilities)
        small = cascade.estimate_spread([0], num_samples=300, seed=2)
        large = cascade.estimate_spread([0, 1, 2], num_samples=300, seed=2)
        assert large >= small

"""Unit tests for repro.propagation.ic."""

import numpy as np
import pytest

from repro.propagation.ic import IC_KERNELS, IndependentCascade, simulate_cascade
from repro.utils.validation import ValidationError


class TestSimulateCascade:
    def test_deterministic_edges_fire(self, line_graph):
        trace = simulate_cascade(line_graph, np.ones(3), [0], seed=0)
        assert trace.activated == {0, 1, 2, 3}
        assert trace.spread == 4

    def test_zero_probability_stops(self, line_graph):
        trace = simulate_cascade(line_graph, np.zeros(3), [0], seed=0)
        assert trace.activated == {0}

    def test_seeds_always_active(self, line_graph):
        trace = simulate_cascade(line_graph, np.zeros(3), [1, 3], seed=0)
        assert trace.activated == {1, 3}
        assert trace.seeds == (1, 3)

    def test_trace_records_activation_edges(self, line_graph):
        trace = simulate_cascade(
            line_graph, np.ones(3), [0], seed=0, record_trace=True
        )
        assert [(u, v) for _e, u, v in trace.activation_edges] == [
            (0, 1),
            (1, 2),
            (2, 3),
        ]

    def test_trace_empty_without_flag(self, line_graph):
        trace = simulate_cascade(line_graph, np.ones(3), [0], seed=0)
        assert trace.activation_edges == []

    def test_empty_seed_set_rejected(self, line_graph):
        with pytest.raises(ValidationError, match="empty"):
            simulate_cascade(line_graph, np.ones(3), [], seed=0)

    def test_duplicate_seed_rejected(self, line_graph):
        with pytest.raises(ValidationError, match="duplicate"):
            simulate_cascade(line_graph, np.ones(3), [0, 0], seed=0)

    def test_out_of_range_seed_rejected(self, line_graph):
        with pytest.raises(ValidationError):
            simulate_cascade(line_graph, np.ones(3), [7], seed=0)

    def test_deterministic_given_seed(self, medium_graph, medium_probabilities):
        a = simulate_cascade(medium_graph, medium_probabilities, [0, 5], seed=3)
        b = simulate_cascade(medium_graph, medium_probabilities, [0, 5], seed=3)
        assert a.activated == b.activated


class TestLegacyKernelPinned:
    """Golden pins of the historical node-at-a-time loop.

    The ``"legacy"`` kernel must keep reproducing the exact seeded
    cascades of the pre-vectorization implementation — same draws, same
    activation order, same trace edges.  These values were captured from
    that implementation; a changed integer here means the reference path
    was touched.
    """

    @pytest.fixture(scope="class")
    def pa_graph(self):
        from repro.graph.generators import preferential_attachment_digraph

        return preferential_attachment_digraph(200, 3, seed=42)

    SEEDS = [199, 198, 150, 100]
    GOLDEN_ACTIVATED = {
        3: [0, 1, 2, 3, 4, 7, 8, 11, 15, 31, 41, 100, 118, 136, 142, 150,
            187, 198, 199],
        7: [0, 1, 2, 3, 4, 7, 8, 31, 100, 142, 150, 187, 198, 199],
        11: [0, 1, 2, 3, 4, 7, 8, 100, 136, 142, 150, 187, 198, 199],
    }

    @pytest.mark.parametrize("rng_seed", [3, 7, 11])
    def test_activated_sets_pinned(self, pa_graph, rng_seed):
        probabilities = np.full(pa_graph.num_edges, 0.6)
        trace = simulate_cascade(
            pa_graph, probabilities, self.SEEDS, seed=rng_seed, kernel="legacy"
        )
        assert sorted(trace.activated) == self.GOLDEN_ACTIVATED[rng_seed]

    def test_trace_pinned(self, pa_graph):
        probabilities = np.full(pa_graph.num_edges, 0.6)
        trace = simulate_cascade(
            pa_graph,
            probabilities,
            self.SEEDS,
            seed=3,
            kernel="legacy",
            record_trace=True,
        )
        assert len(trace.activation_edges) == 15
        assert trace.activation_edges[:8] == [
            (591, 199, 136),
            (592, 199, 3),
            (588, 198, 187),
            (589, 198, 4),
            (590, 198, 118),
            (444, 150, 8),
            (445, 150, 0),
            (295, 100, 2),
        ]


class TestVectorizedKernel:
    """The frontier-batched kernel: same model, batched coins."""

    def test_unknown_kernel_rejected(self, line_graph):
        with pytest.raises(ValidationError, match="kernel"):
            simulate_cascade(line_graph, np.ones(3), [0], seed=0, kernel="turbo")
        with pytest.raises(ValidationError, match="kernel"):
            IndependentCascade(line_graph, np.ones(3), kernel="turbo")

    def test_kernels_listed(self):
        assert set(IC_KERNELS) == {"vectorized", "legacy"}

    def test_matches_legacy_on_single_node_frontiers(self, line_graph):
        """On a path with one seed every frontier has one node, so both
        kernels consume the stream identically: seeded cascades match."""
        probabilities = np.array([0.7, 0.4, 0.9])
        for rng_seed in range(20):
            legacy = simulate_cascade(
                line_graph, probabilities, [0], seed=rng_seed, kernel="legacy"
            )
            fast = simulate_cascade(
                line_graph, probabilities, [0], seed=rng_seed, kernel="vectorized"
            )
            assert fast.activated == legacy.activated

    def test_trace_edges_are_consistent(self, medium_graph, medium_probabilities):
        trace = simulate_cascade(
            medium_graph,
            medium_probabilities,
            [0, 5],
            seed=4,
            record_trace=True,
        )
        seen = set(trace.seeds)
        for edge_id, source, target in trace.activation_edges:
            assert medium_graph.out_targets[edge_id] == target
            assert source in seen  # sources activate before their targets
            assert target not in trace.seeds
            seen.add(target)
        assert seen == trace.activated

    def test_spread_estimates_agree_across_kernels(self, line_graph):
        p = 0.5
        exact = 1 + p + p**2 + p**3
        for kernel in IC_KERNELS:
            cascade = IndependentCascade(line_graph, np.full(3, p), kernel)
            estimate = cascade.estimate_spread([0], num_samples=4000, seed=0)
            assert estimate == pytest.approx(exact, rel=0.05)

    def test_statistical_agreement_on_medium_graph(
        self, medium_graph, medium_probabilities
    ):
        fast = IndependentCascade(
            medium_graph, medium_probabilities, "vectorized"
        ).estimate_spread([0, 1], num_samples=1500, seed=0)
        legacy = IndependentCascade(
            medium_graph, medium_probabilities, "legacy"
        ).estimate_spread([0, 1], num_samples=1500, seed=0)
        assert fast == pytest.approx(legacy, rel=0.1)


class TestIndependentCascade:
    def test_shape_validation(self, line_graph):
        with pytest.raises(ValidationError):
            IndependentCascade(line_graph, np.ones(2))

    def test_probability_range_validation(self, line_graph):
        with pytest.raises(ValidationError):
            IndependentCascade(line_graph, np.array([0.5, 1.5, 0.5]))

    def test_estimate_matches_closed_form_on_line(self, line_graph):
        # σ({0}) = 1 + p + p² + p³ for a 3-edge path with probability p.
        p = 0.5
        cascade = IndependentCascade(line_graph, np.full(3, p))
        estimate = cascade.estimate_spread([0], num_samples=4000, seed=0)
        exact = 1 + p + p**2 + p**3
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_estimate_on_diamond(self, diamond_graph):
        # σ({0}) = 1 + 2p + P(3 reached); p=1 → all 4 nodes.
        cascade = IndependentCascade(diamond_graph, np.ones(4))
        assert cascade.estimate_spread([0], num_samples=10, seed=0) == 4.0

    def test_interval_contains_truth(self, line_graph):
        p = 0.6
        cascade = IndependentCascade(line_graph, np.full(3, p))
        mean, half_width = cascade.estimate_spread_with_interval(
            [0], num_samples=2000, seed=1
        )
        exact = 1 + p + p**2 + p**3
        assert abs(mean - exact) < 3 * half_width + 1e-9

    def test_monotone_in_seed_set(self, medium_graph, medium_probabilities):
        cascade = IndependentCascade(medium_graph, medium_probabilities)
        small = cascade.estimate_spread([0], num_samples=300, seed=2)
        large = cascade.estimate_spread([0, 1, 2], num_samples=300, seed=2)
        assert large >= small

"""Edge-case and failure-injection tests across module boundaries."""

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import NeighborhoodBound, PrecomputationBound
from repro.core.influencer_index import InfluencerIndex
from repro.core.paths import InfluencePathExplorer
from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.utils.validation import ValidationError


class TestSingleTopicDegeneracy:
    """Z=1 must behave exactly like the classical (non-topic) model."""

    def test_gamma_is_forced(self, line_graph):
        weights = TopicEdgeWeights(line_graph, np.full((3, 1), 0.5))
        np.testing.assert_allclose(
            weights.edge_probabilities(np.array([1.0])), 0.5
        )

    def test_bounds_work(self, line_graph):
        weights = TopicEdgeWeights(line_graph, np.full((3, 1), 0.5))
        for estimator in (
            PrecomputationBound(weights, grid=2),
            NeighborhoodBound(weights),
        ):
            bounds = estimator.bounds(np.array([1.0]))
            assert bounds.shape == (4,)
            assert np.all(bounds >= 1.0)

    def test_best_effort_single_topic(self, line_graph):
        weights = TopicEdgeWeights(line_graph, np.full((3, 1), 0.9))
        engine = BestEffortKeywordIM(
            weights, NeighborhoodBound(weights), oracle="ris",
            num_sets=300, seed=0,
        )
        result = engine.query(np.array([1.0]), 1)
        assert result.seeds == [0]  # head of the path dominates


class TestDisconnectedGraphs:
    def test_index_on_graph_with_isolated_nodes(self):
        graph = SocialGraph.from_edges(5, [(0, 1)])
        weights = TopicEdgeWeights(graph, np.full((1, 2), 0.5))
        index = InfluencerIndex(weights, num_sketches=50, seed=0)
        gamma = np.array([0.5, 0.5])
        # Isolated nodes influence only themselves.
        assert index.estimate_user_spread(4, gamma) <= graph.num_nodes
        assert index.estimate_seed_set_spread(
            [0, 1, 2, 3, 4], gamma
        ) == pytest.approx(5.0)

    def test_paths_on_isolated_node(self):
        graph = SocialGraph.from_edges(3, [(0, 1)])
        weights = TopicEdgeWeights(graph, np.full((1, 2), 0.5))
        tree = InfluencePathExplorer(weights).explore(2, threshold=0.0)
        assert tree.size == 1
        assert tree.clusters() == []

    def test_edgeless_graph_everything_degenerates_gracefully(self):
        graph = SocialGraph.from_edges(4, [])
        weights = TopicEdgeWeights(graph, np.zeros((0, 2)))
        index = InfluencerIndex(weights, num_sketches=20, seed=0)
        gamma = np.array([0.5, 0.5])
        assert index.estimate_user_spread(0, gamma) <= 4.0
        tree = InfluencePathExplorer(weights).explore(0)
        assert tree.size == 1


class TestPruneRatioKnob:
    def test_zero_ratio_disables_warm_start_pruning(self, medium_graph):
        weights = TopicEdgeWeights.weighted_cascade(medium_graph, 4, seed=1)
        engine = BestEffortKeywordIM(
            weights, NeighborhoodBound(weights), oracle="ris",
            num_sets=400, seed=2,
        )
        gamma = np.array([0.4, 0.3, 0.2, 0.1])
        warm = engine.query(gamma, 3).seeds
        unpruned = engine.query(gamma, 3, warm_start=warm, prune_ratio=0.0)
        assert unpruned.statistics["pruned_by_warm_start"] == 0.0

    def test_invalid_ratio(self, medium_graph):
        weights = TopicEdgeWeights.weighted_cascade(medium_graph, 4, seed=1)
        engine = BestEffortKeywordIM(
            weights, NeighborhoodBound(weights), oracle="ris",
            num_sets=200, seed=2,
        )
        with pytest.raises(ValidationError):
            engine.query(
                np.array([0.25, 0.25, 0.25, 0.25]),
                2,
                warm_start=[0],
                prune_ratio=1.5,
            )


class TestExplorerMaxNodes:
    def test_max_nodes_caps_tree(self, medium_graph):
        weights = TopicEdgeWeights.weighted_cascade(medium_graph, 4, seed=3)
        explorer = InfluencePathExplorer(weights)
        hub = int(np.argmax(medium_graph.out_degree()))
        unbounded = explorer.explore(hub, threshold=0.0)
        capped = explorer.explore(hub, threshold=0.0, max_nodes=5)
        assert capped.size <= unbounded.size
        # the capped tree is still well-formed
        for node in capped.parents:
            capped.path_to(node)


class TestExtremeProbabilities:
    def test_all_one_probabilities(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.ones((4, 2)))
        index = InfluencerIndex(weights, num_sketches=100, seed=0)
        gamma = np.array([1.0, 0.0])
        # From node 0 everything is reachable with certainty.
        assert index.estimate_user_spread(0, gamma) == pytest.approx(
            4.0 * 100 / 100, abs=1.5
        )

    def test_all_zero_probabilities(self, diamond_graph):
        weights = TopicEdgeWeights(diamond_graph, np.zeros((4, 2)))
        index = InfluencerIndex(weights, num_sketches=100, seed=0)
        gamma = np.array([1.0, 0.0])
        estimate = index.estimate_user_spread(0, gamma)
        # Only sketches rooted at 0 count: estimate = n · (#roots==0)/R ≈ 1.
        assert estimate <= 2.5
        stats = index.statistics()
        assert stats["total_edges"] == 0.0  # everything pruned permanently

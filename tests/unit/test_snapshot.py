"""OCTOSNAP format tests: roundtrip identity, corruption, versioning.

The contract under test (see :mod:`repro.snapshot.format`):

- a snapshot-booted system answers the same queries with **byte-identical**
  ``deterministic_form`` output as the freshly built system it was saved
  from;
- every failure mode — bad magic, unsupported version, truncation, a
  flipped bit anywhere in header or payload — raises a structured
  :class:`SnapshotError` subclass and never yields a partially loaded
  system.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.service import (
    CompleteRequest,
    FindInfluencersRequest,
    OctopusService,
    SuggestKeywordsRequest,
)
from repro.service.responses import deterministic_form
from repro.snapshot import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
)

CONFIG = OctopusConfig(
    num_sketches=40,
    num_topic_samples=3,
    topic_sample_rr_sets=150,
    oracle_samples=15,
    seed=29,
)

#: A small query mix covering keyword routing, RR-set sampling, and the
#: completion trie — enough surface to catch a mis-restored array.
WORKLOAD = (
    CompleteRequest(prefix="da"),
    FindInfluencersRequest(keywords="data mining", k=3),
    SuggestKeywordsRequest(user=0, k=2),
)


@pytest.fixture(scope="module")
def system(citation_dataset):
    return Octopus.from_dataset(citation_dataset, config=CONFIG)


@pytest.fixture(scope="module")
def snapshot_path(system, tmp_path_factory):
    path = tmp_path_factory.mktemp("octosnap") / "system.octosnap"
    save_snapshot(system, str(path), source="unit-test dataset")
    return str(path)


def _golden_bytes(octopus):
    service = OctopusService(octopus)
    return [deterministic_form(service.execute(request)) for request in WORKLOAD]


def _corrupt(path, tmp_path, mutate):
    """Copy *path* into *tmp_path*, apply *mutate* to its bytes, return it."""
    data = bytearray(open(path, "rb").read())
    mutate(data)
    target = tmp_path / "corrupted.octosnap"
    target.write_bytes(bytes(data))
    return str(target)


class TestRoundtrip:
    def test_loaded_system_is_byte_identical(self, system, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert _golden_bytes(loaded) == _golden_bytes(system)

    def test_structure_survives(self, system, snapshot_path):
        loaded = load_snapshot(snapshot_path)
        assert loaded.graph.num_nodes == system.graph.num_nodes
        assert loaded.graph.num_edges == system.graph.num_edges
        assert loaded.graph.labels == system.graph.labels
        assert loaded.topic_names == system.topic_names
        assert loaded.config == system.config
        assert loaded.user_keywords == system.user_keywords

    def test_header_introspection(self, snapshot_path):
        header = read_snapshot_header(snapshot_path)
        assert header["format"] == "octopus-snapshot"
        assert header["version"] == FORMAT_VERSION
        assert header["source"] == "unit-test dataset"
        assert header["config"]["seed"] == 29
        names = {info["name"] for info in header["arrays"]}
        assert "edge_weights" in names and "out_offsets" in names

    def test_config_overrides_apply(self, snapshot_path):
        loaded = load_snapshot(
            snapshot_path, config_overrides={"execution_backend": "serial"}
        )
        assert loaded.config.execution_backend == "serial"
        assert loaded.config.seed == 29  # untouched fields survive

    def test_atomic_write_leaves_no_temp_files(self, system, tmp_path):
        path = tmp_path / "fresh.octosnap"
        save_snapshot(system, str(path))
        assert sorted(os.listdir(tmp_path)) == ["fresh.octosnap"]


class TestRejection:
    def test_bad_magic_is_format_error(self, snapshot_path, tmp_path):
        bad = _corrupt(snapshot_path, tmp_path, lambda d: d.__setitem__(0, 0x58))
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            load_snapshot(bad)

    def test_unsupported_version_is_version_error(self, snapshot_path, tmp_path):
        def bump(data):
            data[len(MAGIC)] = FORMAT_VERSION + 1

        bad = _corrupt(snapshot_path, tmp_path, bump)
        with pytest.raises(SnapshotVersionError, match="not supported"):
            load_snapshot(bad)

    def test_flipped_header_byte_is_integrity_error(self, snapshot_path, tmp_path):
        # One bit inside the JSON header (past magic+version+length+digest).
        preamble = len(MAGIC) + 4 + 4 + 32
        bad = _corrupt(
            snapshot_path,
            tmp_path,
            lambda d: d.__setitem__(preamble + 5, d[preamble + 5] ^ 0x01),
        )
        with pytest.raises(SnapshotIntegrityError, match="header checksum"):
            load_snapshot(bad)

    def test_flipped_payload_byte_is_integrity_error(self, snapshot_path, tmp_path):
        # Flip the last byte of the file — inside the final array payload.
        bad = _corrupt(
            snapshot_path, tmp_path, lambda d: d.__setitem__(-1, d[-1] ^ 0x01)
        )
        with pytest.raises(SnapshotIntegrityError, match="checksum mismatch"):
            load_snapshot(bad)

    def test_truncated_file_is_format_error(self, snapshot_path, tmp_path):
        data = open(snapshot_path, "rb").read()
        target = tmp_path / "truncated.octosnap"
        target.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotFormatError, match="truncated"):
            load_snapshot(str(target))

    def test_empty_file_is_format_error(self, tmp_path):
        target = tmp_path / "empty.octosnap"
        target.write_bytes(b"")
        with pytest.raises(SnapshotFormatError):
            load_snapshot(str(target))

    def test_not_a_snapshot_at_all(self, tmp_path):
        target = tmp_path / "noise.octosnap"
        target.write_bytes(b"this is not a snapshot, just some text padding")
        with pytest.raises(SnapshotFormatError, match="bad magic"):
            load_snapshot(target.as_posix())

    def test_missing_array_is_format_error(self, snapshot_path, tmp_path, system):
        # Rewrite the file with one array descriptor dropped but a valid
        # header checksum: structurally sound, semantically incomplete.
        import hashlib

        from repro.snapshot.format import _align, _canonical_json

        raw = open(snapshot_path, "rb").read()
        preamble = len(MAGIC) + 4 + 4 + 32
        header_length = int.from_bytes(raw[len(MAGIC) + 4: len(MAGIC) + 8], "little")
        header = json.loads(raw[preamble: preamble + header_length])
        header["arrays"] = [
            info for info in header["arrays"] if info["name"] != "edge_weights"
        ]
        new_header = _canonical_json(header)
        # Keep the payload base aligned for the *new* header length so the
        # remaining descriptors still point at their bytes.
        old_base = _align(preamble + header_length)
        new_base = _align(preamble + len(new_header))
        rebuilt = (
            MAGIC
            + FORMAT_VERSION.to_bytes(4, "little")
            + len(new_header).to_bytes(4, "little")
            + hashlib.sha256(new_header).digest()
            + new_header
            + b"\0" * (new_base - preamble - len(new_header))
            + raw[old_base:]
        )
        target = tmp_path / "missing.octosnap"
        target.write_bytes(rebuilt)
        with pytest.raises(SnapshotFormatError, match="missing arrays"):
            load_snapshot(str(target))


class TestSaveGuards:
    def test_generator_seed_is_rejected(self, citation_dataset, tmp_path):
        import numpy as np

        config = OctopusConfig(
            num_sketches=40,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        )
        system = Octopus.from_dataset(citation_dataset, config=config)
        # A live Generator cannot be serialized reproducibly.
        object.__setattr__(system.config, "seed", np.random.default_rng(1))
        with pytest.raises(SnapshotError, match="integer seed"):
            save_snapshot(system, str(tmp_path / "bad.octosnap"))

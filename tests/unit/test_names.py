"""Unit tests for repro.datasets.names."""

import pytest

from repro.datasets.names import generate_names


class TestGenerateNames:
    def test_count(self):
        assert len(generate_names(100)) == 100

    def test_empty(self):
        assert generate_names(0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            generate_names(-1)

    def test_unique_small(self):
        names = generate_names(500)
        assert len(set(names)) == 500

    def test_unique_beyond_plain_combinations(self):
        names = generate_names(6000)
        assert len(set(names)) == 6000

    def test_deterministic(self):
        assert generate_names(50) == generate_names(50)

    def test_format(self):
        for name in generate_names(20):
            parts = name.split()
            assert len(parts) >= 2
            assert all(part[0].isupper() for part in parts)

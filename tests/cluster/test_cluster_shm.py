"""The cluster's shared-memory data plane: identical bytes, zero leaks.

The transport twin contract of the ISSUE: with the shm data plane on
(default) and off (``REPRO_SHM=0``), every response of the golden workload
is byte-identical across 1, 2 and 4 shards — the transport moves bytes,
it never changes them.  The lifecycle half: session directories are
reclaimed after a normal close, after garbage collection without close,
and after a shard is SIGKILL-ed mid-request.
"""

from __future__ import annotations

import gc
import glob
import os
import threading
import time

import pytest

from repro.backend.shm import SESSION_PREFIX, shm_enabled, shm_root
from repro.cluster import ClusterCoordinator
from repro.service import TargetedInfluencersRequest

from test_cluster_failures import _kill_shard
from test_cluster_golden import GOLDEN_WORKLOAD, golden_forms


def shm_session_dirs() -> list:
    """Live session directories under the shm root (leak accounting)."""
    return sorted(glob.glob(os.path.join(shm_root(), SESSION_PREFIX + "*")))

pytestmark = pytest.mark.skipif(
    not shm_enabled(), reason="shared-memory data plane disabled or unavailable"
)


class TestTransportTwinDeterminism:
    """shm and pickle transports serve the same bytes at every shard count."""

    @pytest.fixture(scope="class")
    def reference_forms(self, make_service):
        service = make_service("threads")
        return golden_forms([service.execute(r) for r in GOLDEN_WORKLOAD])

    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize("transport", ["shm", "pickle"])
    def test_golden_workload_bytes(
        self,
        monkeypatch,
        make_service,
        running_cluster,
        reference_forms,
        shards,
        transport,
    ):
        if transport == "pickle":
            monkeypatch.setenv("REPRO_SHM", "0")
        with running_cluster(make_service("threads"), shards=shards) as cluster:
            assert cluster.stats()["executor.payload_transport"] == transport
            served = cluster.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == reference_forms
        assert all(response.ok for response in served)

    def test_octopus_stats_report_transport(self, make_service):
        service = make_service("threads")
        stats = service.backend.statistics()
        assert stats["execution.payload_transport"] == "inline"


class TestSessionLifecycle:
    def test_normal_close_reclaims_session(self, make_service, running_cluster):
        before = set(shm_session_dirs())
        with running_cluster(make_service("threads"), shards=2) as cluster:
            response = cluster.execute(
                TargetedInfluencersRequest("data mining", k=2, num_sets=150)
            )
            assert response.ok
            created = [p for p in shm_session_dirs() if p not in before]
            assert created, "cluster did not create an shm session"
        assert not [p for p in shm_session_dirs() if p not in before]

    def test_garbage_collection_reclaims_unclosed_session(self, make_service):
        before = set(shm_session_dirs())
        cluster = ClusterCoordinator(
            make_service("threads"), shards=1, shard_timeout=20.0
        )
        session_path = cluster._shm_session.path
        assert session_path in shm_session_dirs()
        try:
            # Drop the only reference without calling close(): the session
            # finalizer must still reclaim the directory.
            handles = cluster._handles
            del cluster
            gc.collect()
            assert session_path not in shm_session_dirs()
        finally:
            for handle in handles:
                handle.shutdown(timeout=10.0)
        assert not [p for p in shm_session_dirs() if p not in before]

    def test_shard_kill_mid_request_leaks_nothing(
        self, make_service, running_cluster
    ):
        """A SIGKILL-ed shard cannot leak: it never owns a segment."""
        before = set(shm_session_dirs())
        with running_cluster(
            make_service("threads"), shards=2, shard_timeout=10.0
        ) as cluster:
            outcome = {}

            def serve():
                outcome["response"] = cluster.execute(
                    TargetedInfluencersRequest(
                        "data mining", k=2, num_sets=1_000_000
                    )
                )

            thread = threading.Thread(target=serve)
            thread.start()
            time.sleep(0.3)  # let the fan-out reach the shards
            # Kill both shards so the whole-query fallback cannot recompute
            # the huge budget: the request errors quickly and the close()
            # below must still reclaim the arenas the corpses wrote into.
            _kill_shard(cluster, 1)
            _kill_shard(cluster, 0)
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            assert not outcome["response"].ok
        assert not [p for p in shm_session_dirs() if p not in before]

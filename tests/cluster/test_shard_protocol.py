"""The shard protocol, exercised directly against a ShardWorker.

:class:`~repro.cluster.worker.ShardWorker` is a plain object — the pipe
loop is a thin shell around :meth:`~repro.cluster.worker.ShardWorker.handle`
— so every command verb can be driven in-process: the sampling session
lifecycle (sample → cover-init → cover rounds → estimate → drop), the
introspection verbs (ping / stats), and the error replies that keep a
worker alive through bad commands.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend.base import DEFAULT_RR_CHUNK_SIZE, rr_chunk_plan
from repro.cluster.protocol import (
    ChunkSpec,
    CoverInit,
    CoverRound,
    DropSession,
    EstimateCover,
    Ping,
    SampleShard,
    ShardStatsCmd,
)
from repro.cluster.worker import ShardWorker
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import RRSetCollection
from repro.service import CompleteRequest
from repro.cluster.protocol import ExecuteRequest


@pytest.fixture
def worker(make_service):
    service = make_service("threads")
    num_nodes = service.backend.graph.num_nodes
    return ShardWorker(service, shard_id=0, num_shards=1, node_range=(0, num_nodes))


def _sample_session(worker, session: str, num_sets: int = 200):
    """Run one full sampling session; returns the equivalent local batch."""
    backend = worker.service.backend
    gamma = backend.derive_gamma("data mining")
    plan = rr_chunk_plan(
        num_sets, DEFAULT_RR_CHUNK_SIZE, np.random.SeedSequence(7), None
    )
    reply = worker.handle(
        SampleShard(
            session=session,
            gamma=gamma,
            chunks=tuple(
                ChunkSpec(count=count, seed=child, roots=None)
                for count, child, _roots in plan
            ),
            kernel=backend.config.rr_kernel,
        )
    )
    assert reply.ok
    assert reply.value["num_sets"] == num_sets
    probabilities = backend.edge_weights.edge_probabilities(gamma)
    chunks = []
    for count, child, _roots in plan:
        from repro.propagation.rrsets import sample_packed_rr_sets

        chunks.append(
            sample_packed_rr_sets(
                backend.graph,
                probabilities,
                count,
                np.random.default_rng(child),
                None,
                backend.config.rr_kernel,
            )
        )
    return RRSetCollection(
        backend.graph, PackedRRSets.from_chunks(backend.graph.num_nodes, chunks)
    )


class TestSamplingSessionVerbs:
    def test_estimate_matches_the_serial_collection(self, worker):
        collection = _sample_session(worker, "proto-1")
        init = worker.handle(
            CoverInit(
                session="proto-1",
                base=0,
                total_members=int(len(collection.packed.nodes)),
            )
        )
        assert init.ok
        coverage = init.value["coverage"]
        assert coverage.tolist() == collection.packed.coverage_counts().tolist()
        for seeds in ((0,), (0, 5, 9), tuple(range(12))):
            reply = worker.handle(EstimateCover(session="proto-1", seeds=seeds))
            assert reply.ok
            assert reply.value["covered"] == collection._covered_set_count(
                list(seeds)
            )

    def test_cover_rounds_replay_the_serial_greedy(self, worker):
        collection = _sample_session(worker, "proto-2")
        expected_seeds, expected_spread = collection.greedy_max_cover(3)
        init = worker.handle(
            CoverInit(
                session="proto-2",
                base=0,
                total_members=int(len(collection.packed.nodes)),
            )
        )
        assert init.ok
        coverage = init.value["coverage"]
        first_seen = init.value["first_seen"]
        seeds = []
        covered = 0
        for _ in range(3):
            best_cover = int(coverage.max())
            if best_cover <= 0:
                break
            candidates = np.flatnonzero(coverage == best_cover)
            best = int(candidates[np.argmin(first_seen[candidates])])
            seeds.append(best)
            reply = worker.handle(CoverRound(session="proto-2", seed_node=best))
            assert reply.ok
            coverage = reply.value["coverage"]
            covered = reply.value["covered"]
        assert seeds == expected_seeds
        num_nodes = worker.service.backend.graph.num_nodes
        assert num_nodes * float(covered) / len(collection) == expected_spread

    def test_drop_session_frees_the_state(self, worker):
        _sample_session(worker, "proto-3", num_sets=50)
        assert worker.handle(DropSession(session="proto-3")).ok
        reply = worker.handle(EstimateCover(session="proto-3", seeds=(0,)))
        assert not reply.ok
        assert "proto-3" in reply.error

    def test_estimate_without_a_session_is_an_error_reply(self, worker):
        reply = worker.handle(EstimateCover(session="nope", seeds=(0,)))
        assert not reply.ok
        assert "nope" in reply.error


class TestIntrospectionVerbs:
    def test_ping_reports_identity(self, worker):
        reply = worker.handle(Ping())
        assert reply.ok
        assert reply.value["shard"] == 0
        assert reply.value["node_range"] == list(worker.node_range)

    def test_stats_reports_shard_counters_and_replica_stats(self, worker):
        assert worker.handle(ExecuteRequest(CompleteRequest(prefix="da"))).ok
        reply = worker.handle(ShardStatsCmd())
        assert reply.ok
        stats = reply.value
        assert stats["shard.id"] == 0.0
        assert stats["shard.requests"] == 1.0
        assert stats["shard.commands"] >= 2.0
        assert stats["service.complete.requests"] == 1.0

    def test_unknown_commands_do_not_kill_the_worker(self, worker):
        reply = worker.handle(object())
        assert not reply.ok
        assert "unknown command" in reply.error
        assert worker.handle(Ping()).ok


class TestCoordinatorIntrospection:
    def test_shard_stats_snapshots_every_live_shard(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            assert cluster.execute(CompleteRequest(prefix="da")).ok
            snapshots = cluster.shard_stats()
            assert [entry["shard.id"] for entry in snapshots] == [0.0, 1.0]
            assert sum(entry["shard.requests"] for entry in snapshots) == 1.0

"""Coordinator failure paths: dead shards degrade, they never hang.

The contract under fault: a shard killed mid-request surfaces as a
structured ``internal_error`` envelope within a bounded time (never a hang,
never an unparseable 5xx body); the cluster reports itself degraded on
``/healthz``; and surviving shards keep serving — including recomputing a
distributed query through the deterministic whole-query fallback.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service import (
    CompleteRequest,
    TargetedInfluencersRequest,
    deterministic_form,
)

#: Generous ceiling for "bounded": every failure below resolves in well
#: under a second; a hang fails the assertion instead of stalling CI.
FAILURE_BOUND_SECONDS = 15.0


def _kill_shard(cluster, shard_id: int) -> None:
    handle = cluster._handles[shard_id]
    handle.process.kill()
    handle.process.join(timeout=5.0)
    assert not handle.process.is_alive()


class TestDeadShardErrors:
    def test_kill_mid_request_yields_bounded_internal_error(
        self, make_service, running_cluster
    ):
        """The in-flight request on a dying shard errors, fast and typed."""
        with running_cluster(
            make_service("serial"), shards=1, shard_timeout=10.0
        ) as cluster:
            outcome = {}

            def serve():
                started = time.monotonic()
                # A huge RR budget: seconds of sampling, so the kill below
                # is guaranteed to land mid-computation.
                outcome["response"] = cluster.execute(
                    TargetedInfluencersRequest(
                        "data mining", k=2, num_sets=1_000_000
                    )
                )
                outcome["elapsed"] = time.monotonic() - started

            thread = threading.Thread(target=serve)
            thread.start()
            time.sleep(0.3)  # let the request reach the shard and start
            _kill_shard(cluster, 0)
            thread.join(timeout=FAILURE_BOUND_SECONDS)
            assert not thread.is_alive(), "dead shard hung the request"
            response = outcome["response"]
            assert not response.ok
            assert response.error.code == "internal_error"
            assert "shard" in response.error.message
            assert outcome["elapsed"] < FAILURE_BOUND_SECONDS

    def test_all_shards_dead_is_a_typed_error_not_a_hang(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            for shard_id in (0, 1):
                _kill_shard(cluster, shard_id)
            started = time.monotonic()
            response = cluster.execute(CompleteRequest(prefix="da"))
            assert time.monotonic() - started < FAILURE_BOUND_SECONDS
            assert not response.ok
            assert response.error.code == "internal_error"
            assert "no live shards" in response.error.message


class TestDegradedCluster:
    def test_health_flips_to_degraded(self, make_service, running_cluster):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            assert cluster.health()["degraded"] is False
            _kill_shard(cluster, 0)
            health = cluster.health()
            assert health["degraded"] is True
            assert health["shards_alive"] == 1
            liveness = {
                entry["shard"]: entry["alive"]
                for entry in health["shard_liveness"]
            }
            assert liveness == {0: False, 1: True}

    def test_surviving_shards_keep_serving(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            _kill_shard(cluster, 0)
            for _ in range(4):  # round-robin must skip the corpse
                response = cluster.execute(CompleteRequest(prefix="da", limit=3))
                assert response.ok
            stats = cluster.stats()
            assert stats["executor.shards_alive"] == 1.0
            assert stats["cluster.shard0.alive"] == 0.0

    def test_distributed_query_falls_back_deterministically(
        self, make_service, running_cluster
    ):
        """Losing a shard downgrades targeted fan-out to routing — the
        response bytes must not change."""
        request = TargetedInfluencersRequest("data mining", k=2, num_sets=150)
        reference = deterministic_form(make_service("threads").execute(request))
        with running_cluster(make_service("threads"), shards=2) as cluster:
            fanned = cluster.execute(request)
            assert deterministic_form(fanned) == reference
            _kill_shard(cluster, 1)
            routed = cluster.execute(
                TargetedInfluencersRequest("clustering", k=2, num_sets=150)
            )
            # A fresh query (different keywords → cache miss) served after
            # the kill: the routed path on the survivor must succeed …
            assert routed.ok
            # … and the original query recomputed on the survivor matches
            # the fan-out bytes exactly.
            cluster.cache.clear()
            recomputed = cluster.execute(request)
            assert deterministic_form(recomputed) == reference


class TestDeadShardOverHTTP:
    def test_internal_error_is_a_parseable_500_and_healthz_degrades(
        self, make_service, running_cluster
    ):
        import json
        import urllib.error
        import urllib.request

        from repro.server import serve_in_background

        with running_cluster(make_service("serial"), shards=2) as cluster:
            server = serve_in_background(cluster, request_timeout=5.0)
            try:
                for shard_id in (0, 1):
                    _kill_shard(cluster, shard_id)
                body = CompleteRequest(prefix="da").to_json().encode()
                request = urllib.request.Request(
                    f"{server.url}/query",
                    data=body,
                    headers={"Content-Type": "application/json"},
                )
                with pytest.raises(urllib.error.HTTPError) as caught:
                    urllib.request.urlopen(request, timeout=FAILURE_BOUND_SECONDS)
                assert caught.value.code == 500
                envelope = json.loads(caught.value.read().decode())
                assert envelope["ok"] is False
                assert envelope["error"]["code"] == "internal_error"
                with urllib.request.urlopen(
                    f"{server.url}/healthz", timeout=FAILURE_BOUND_SECONDS
                ) as reply:
                    health = json.loads(reply.read().decode())
                assert health["status"] == "degraded"
                assert health["cluster"]["shards_alive"] == 0
            finally:
                server.shutdown_gracefully()

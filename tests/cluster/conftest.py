"""Fixtures of the cluster test suite.

Every fixture builds *small* systems (tiny index budgets) because each
golden comparison constructs several full replicas plus forked shard
processes.  Shard-process waits are short and bounded — a wedged shard
fails a test in seconds, it never hangs the suite.
"""

from __future__ import annotations

import contextlib
import glob
import os

import pytest

from repro.backend.shm import SESSION_PREFIX, shm_root
from repro.cluster import ClusterCoordinator
from repro.core.octopus import Octopus, OctopusConfig
from repro.service import OctopusService

#: Every shard-pipe wait in this package is bounded by this (seconds).
CLUSTER_TIMEOUT = 20.0


def shm_session_dirs() -> list:
    """Live shared-memory session directories (the leak-accounting unit)."""
    return sorted(glob.glob(os.path.join(shm_root(), SESSION_PREFIX + "*")))


@pytest.fixture(autouse=True)
def no_leaked_shm_segments():
    """Every cluster test must reclaim its shm sessions, however it ends.

    Sessions that predate the test (e.g. a module-scoped service whose
    pool backend is still open) are tolerated; anything the test itself
    created must be gone when it finishes — including after shard kills.
    """
    before = set(shm_session_dirs())
    yield
    leaked = [path for path in shm_session_dirs() if path not in before]
    assert not leaked, f"leaked shm session directories: {leaked}"


def small_config(
    execution_backend: str = "serial", rr_kernel: str = "vectorized"
) -> OctopusConfig:
    """Tiny index budgets; chunked or serial sampling semantics."""
    return OctopusConfig(
        num_sketches=30,
        num_topic_samples=3,
        topic_sample_rr_sets=150,
        oracle_samples=15,
        execution_backend=execution_backend,
        workers=1 if execution_backend != "serial" else None,
        rr_kernel=rr_kernel,
        seed=29,
    )


@pytest.fixture(scope="module")
def make_service(citation_dataset):
    """Factory: a fresh small service over the shared dataset."""

    def build(
        execution_backend: str = "serial", rr_kernel: str = "vectorized"
    ) -> OctopusService:
        return OctopusService(
            Octopus.from_dataset(
                citation_dataset,
                config=small_config(execution_backend, rr_kernel),
            )
        )

    return build


@contextlib.contextmanager
def _running_cluster(service, shards: int, **kwargs):
    kwargs.setdefault("shard_timeout", CLUSTER_TIMEOUT)
    cluster = ClusterCoordinator(service, shards=shards, **kwargs)
    try:
        yield cluster
    finally:
        cluster.close()


@pytest.fixture
def running_cluster():
    """The cluster-booting context manager (always closed afterwards)."""
    return _running_cluster

"""Hypothesis properties of the shard-merge arithmetic.

The distributed max-cover loop is exact, not approximate: for *any* batch
of RR sets, *any* contiguous split into shards, and *any* k, replaying the
coordinator's merge (sum coverage → argmax with min-first-seen tie-break →
broadcast seed) over per-shard :class:`~repro.cluster.merge.ShardCoverState`
slices must reproduce
:meth:`~repro.propagation.rrsets.RRSetCollection.greedy_max_cover`
byte-for-byte — seeds, order, and spread.  Hypothesis hunts the edge cases
(empty shards, empty sets, ties everywhere, k past exhaustion).
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.merge import (
    ShardCoverState,
    merge_coverage,
    merge_first_seen,
    partition_contiguous,
    pick_cover_seed,
)
from repro.graph.digraph import SocialGraph
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import RRSetCollection


@st.composite
def packed_batches(draw):
    """A random packed RR batch: member lists over a small node universe."""
    num_nodes = draw(st.integers(min_value=1, max_value=12))
    num_sets = draw(st.integers(min_value=1, max_value=24))
    sets: List[List[int]] = []
    for _ in range(num_sets):
        members = draw(
            st.lists(
                st.integers(min_value=0, max_value=num_nodes - 1),
                min_size=0,
                max_size=num_nodes,
                unique=True,
            )
        )
        sets.append(members)
    return num_nodes, sets


def shard_states(num_nodes: int, sets, num_shards: int):
    """Cut the batch into contiguous shard slices, like the coordinator."""
    bounds = partition_contiguous(len(sets), num_shards)
    shard_packed = [
        PackedRRSets.from_sets(num_nodes, sets[low:high])
        for low, high in bounds
    ]
    total_members = sum(len(packed.nodes) for packed in shard_packed)
    states = []
    base = 0
    for packed in shard_packed:
        states.append(ShardCoverState(packed, base, total_members))
        base += len(packed.nodes)
    return states


def distributed_greedy(num_nodes: int, sets, num_shards: int, k: int):
    """The coordinator's loop, replayed in-process over shard states."""
    states = shard_states(num_nodes, sets, num_shards)
    total_coverage = merge_coverage([state.coverage for state in states])
    first_seen = merge_first_seen(
        [state.first_seen_global for state in states]
    )
    seeds: List[int] = []
    for _ in range(min(k, num_nodes)):
        best = pick_cover_seed(total_coverage, first_seen)
        if best is None:
            break
        seeds.append(best)
        for state in states:
            state.apply_seed(best)
        total_coverage = merge_coverage([state.coverage for state in states])
    covered_total = sum(state.covered_count for state in states)
    spread = num_nodes * float(covered_total) / len(sets)
    return seeds, spread


@given(batch=packed_batches(), shards=st.integers(1, 5), k=st.integers(1, 8))
@settings(max_examples=120, deadline=None)
def test_distributed_greedy_equals_serial_greedy(batch, shards, k):
    num_nodes, sets = batch
    graph = SocialGraph.from_edges(num_nodes, [])
    packed = PackedRRSets.from_sets(num_nodes, sets)
    serial_seeds, serial_spread = RRSetCollection(
        graph, packed
    ).greedy_max_cover(k)
    shard_seeds, shard_spread = distributed_greedy(num_nodes, sets, shards, k)
    assert shard_seeds == serial_seeds
    assert shard_spread == serial_spread  # identical floats, not approx


@given(batch=packed_batches(), shards=st.integers(1, 5))
@settings(max_examples=80, deadline=None)
def test_shard_count_never_changes_the_merge(batch, shards):
    """1-shard and S-shard replays agree with each other at every k."""
    num_nodes, sets = batch
    for k in (1, 3, num_nodes):
        assert distributed_greedy(num_nodes, sets, 1, k) == distributed_greedy(
            num_nodes, sets, shards, k
        )


@given(
    batch=packed_batches(),
    shards=st.integers(1, 5),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_covered_counts_decompose_for_any_seed_set(batch, shards, data):
    """Spread estimation merges exactly: Σ local covered == global covered."""
    num_nodes, sets = batch
    seeds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=num_nodes - 1),
            min_size=1,
            max_size=num_nodes,
            unique=True,
        )
    )
    graph = SocialGraph.from_edges(num_nodes, [])
    collection = RRSetCollection(graph, PackedRRSets.from_sets(num_nodes, sets))
    states = shard_states(num_nodes, sets, shards)
    local_total = 0
    for state in states:
        for seed in seeds:
            state.apply_seed(seed)
        local_total += state.covered_count
    assert local_total == collection._covered_set_count(seeds)


@given(total=st.integers(0, 60), parts=st.integers(1, 9))
def test_partition_contiguous_is_a_partition(total, parts):
    bounds = partition_contiguous(total, parts)
    assert len(bounds) == parts
    assert bounds[0][0] == 0 and bounds[-1][1] == total
    for (_, previous_high), (low, high) in zip(bounds, bounds[1:]):
        assert previous_high == low
        assert high >= low
    sizes = [high - low for low, high in bounds]
    assert max(sizes) - min(sizes) <= 1


def test_first_seen_sentinel_cannot_win_a_tie():
    """A node absent from one shard must not beat a real occurrence."""
    num_nodes = 3
    sets = [[2], [0, 1], [1]]
    states = shard_states(num_nodes, sets, 2)
    merged = merge_first_seen([state.first_seen_global for state in states])
    packed = PackedRRSets.from_sets(num_nodes, sets)
    assert merged.tolist() == packed.first_occurrence().tolist()

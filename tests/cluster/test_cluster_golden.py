"""The cluster determinism contract: shard count is a pure execution detail.

The golden three-way test the tentpole promises: ``deterministic_form()``
of every response is **byte-identical** across the single-process
``OctopusService`` and a ``ClusterCoordinator`` with 1, 2 and 4 shards —
for both sampling semantics:

* chunked configs (``execution_backend != "serial"``) exercise the
  **distributed max-cover** path — targeted queries fan out, shards sample
  chunk ranges and the coordinator's greedy loop merges marginal-gain
  reports;
* serial configs exercise the **whole-query routing** path — the config
  pins the historical single-stream draw order, which every forked replica
  reproduces.
"""

from __future__ import annotations

import pytest

from repro.service import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    RadarRequest,
    StatsRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    deterministic_form,
)

#: Every deterministic service, duplicates included (duplicate slots ride
#: the cache/de-duplication paths, which must not change payload bytes).
GOLDEN_WORKLOAD = [
    CompleteRequest(prefix="da", limit=5),
    FindInfluencersRequest("data mining", k=3),
    RadarRequest("data mining"),
    SuggestKeywordsRequest(user=0, k=2),
    ExplorePathsRequest(user=0, threshold=0.02),
    TargetedInfluencersRequest("data mining", k=2, num_sets=150),
    FindInfluencersRequest("data mining", k=3),  # duplicate
    TargetedInfluencersRequest("data mining", k=2, num_sets=150),  # duplicate
]


def golden_forms(responses):
    return [deterministic_form(response) for response in responses]


class TestThreeWayShardDeterminism:
    """1, 2 and 4 shards must serve the serial service's exact bytes."""

    @pytest.fixture(scope="class", params=["threads", "serial"])
    def semantics(self, request):
        """Both sampling semantics: chunked (distributed) and serial
        (routed)."""
        return request.param

    @pytest.fixture(scope="class")
    def reference_forms(self, make_service, semantics):
        service = make_service(semantics)
        return golden_forms([service.execute(r) for r in GOLDEN_WORKLOAD])

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_cluster_matches_serial_service(
        self, make_service, running_cluster, reference_forms, semantics, shards
    ):
        with running_cluster(make_service(semantics), shards=shards) as cluster:
            served = cluster.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == reference_forms
        assert all(response.ok for response in served)

    def test_single_executes_match_batch(
        self, make_service, running_cluster, reference_forms, semantics
    ):
        with running_cluster(make_service(semantics), shards=2) as cluster:
            one_by_one = [cluster.execute(r) for r in GOLDEN_WORKLOAD]
        assert golden_forms(one_by_one) == reference_forms


class TestNativeKernelShardDeterminism:
    """``rr_kernel="native"`` honours the same byte contract: shards
    sample their contiguous chunk ranges with the native kernel (compiled
    or fallback — forked replicas run whichever this checkout has) and
    1/2/4-shard output must equal the single-process service's bytes
    through the distributed max-cover path."""

    @pytest.fixture(scope="class")
    def native_reference_forms(self, make_service):
        service = make_service("threads", rr_kernel="native")
        return golden_forms([service.execute(r) for r in GOLDEN_WORKLOAD])

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_native_cluster_matches_serial_service(
        self, make_service, running_cluster, native_reference_forms, shards
    ):
        backend = make_service("threads", rr_kernel="native")
        with running_cluster(backend, shards=shards) as cluster:
            served = cluster.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == native_reference_forms
        assert all(response.ok for response in served)


class TestDistributedPathIsReallyDistributed:
    """With chunked semantics, targeted queries must use the fan-out
    protocol — not fall back to whole-query routing on one shard."""

    def test_targeted_query_routes_to_no_shard(
        self, make_service, running_cluster
    ):
        request = TargetedInfluencersRequest("data mining", k=2, num_sets=150)
        with running_cluster(make_service("threads"), shards=2) as cluster:
            response = cluster.execute(request)
            assert response.ok
            stats = cluster.stats()
            # The shard protocol served commands, but no shard executed a
            # whole routed request.
            assert stats["executor.kind"] == "cluster"
            for shard in (0, 1):
                assert stats[f"cluster.shard{shard}.requests"] == 0.0
                assert stats[f"cluster.shard{shard}.commands"] > 0.0

    def test_serial_semantics_route_instead(
        self, make_service, running_cluster
    ):
        request = TargetedInfluencersRequest("data mining", k=2, num_sets=150)
        with running_cluster(make_service("serial"), shards=2) as cluster:
            response = cluster.execute(request)
            assert response.ok
            stats = cluster.stats()
            routed = sum(
                stats[f"cluster.shard{shard}.requests"] for shard in (0, 1)
            )
            assert routed == 1.0


class TestCoordinatorServingSemantics:
    """Cache, duplicate-sharing and metrics live on the coordinator."""

    def test_repeat_is_a_parent_cache_hit_with_identical_bytes(
        self, make_service, running_cluster
    ):
        request = FindInfluencersRequest("data mining", k=3)
        with running_cluster(make_service("serial"), shards=2) as cluster:
            first = cluster.execute(request)
            second = cluster.execute(request)
            assert first.ok and second.ok
            assert not first.cache_hit
            assert second.cache_hit
            assert deterministic_form(first) == deterministic_form(second)
            assert cluster.stats()["service.influencers.cache_hits"] == 1.0

    def test_batch_duplicates_are_shared(self, make_service, running_cluster):
        request = CompleteRequest(prefix="da", limit=5)
        with running_cluster(make_service("serial"), shards=2) as cluster:
            responses = cluster.execute_batch([request, request, request])
            assert [r.cache_hit for r in responses] == [False, True, True]
            assert len({deterministic_form(r) for r in responses}) == 1

    def test_user_affine_routing_hits_the_owner_shard(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            # Users from both halves of the node range; each query must
            # land on (and only on) its owner.
            num_nodes = cluster.backend.graph.num_nodes
            low_user, high_user = 0, num_nodes - 1
            assert cluster.execute(SuggestKeywordsRequest(user=low_user, k=2)).ok
            assert cluster.execute(SuggestKeywordsRequest(user=high_user, k=2)).ok
            stats = cluster.stats()
            assert stats["cluster.shard0.requests"] == 1.0
            assert stats["cluster.shard1.requests"] == 1.0

    def test_malformed_and_invalid_requests_match_serial_bytes(
        self, make_service, running_cluster
    ):
        service = make_service("serial")
        bad_wire = '{"service": "influencers", "keywords": "data mining", "k": -1}'
        unknown = {"service": "no_such_service"}
        serial_forms = golden_forms(
            [service.execute(bad_wire), service.execute(unknown)]
        )
        with running_cluster(make_service("serial"), shards=2) as cluster:
            cluster_forms = golden_forms(
                [cluster.execute(bad_wire), cluster.execute(unknown)]
            )
        assert cluster_forms == serial_forms

    def test_stats_request_reports_cluster_identity(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            response = cluster.execute(StatsRequest())
            assert response.ok
            assert response.payload["executor.kind"] == "cluster"
            assert response.payload["executor.shards"] == 2.0
            assert response.payload["executor.shards_alive"] == 2.0
            assert response.payload["execution.backend"] == "serial"

    def test_rate_limit_is_enforced_at_the_coordinator(
        self, make_service, running_cluster
    ):
        """The configured limiter runs once, cluster-wide — not per shard."""
        backend = make_service("serial").backend
        with running_cluster(
            backend, shards=2, rate_limit=2.0, clock=lambda: 0.0
        ) as cluster:
            # burst = 2 tokens, frozen clock = no refill: two distinct
            # requests pass (whichever shard serves them), the third is
            # shed with a structured 429 envelope.
            first = cluster.execute(CompleteRequest(prefix="da"))
            second = cluster.execute(CompleteRequest(prefix="cl"))
            third = cluster.execute(CompleteRequest(prefix="fe"))
            assert first.ok and second.ok
            assert not third.ok
            assert third.error.code == "rate_limited"
            assert cluster.stats()["service.complete.errors"] == 1.0

    def test_close_is_idempotent_and_ends_serving(
        self, make_service, running_cluster
    ):
        with running_cluster(make_service("serial"), shards=2) as cluster:
            assert cluster.execute(CompleteRequest(prefix="da")).ok
            cluster.close()
            cluster.close()
            response = cluster.execute(CompleteRequest(prefix="da"))
            assert not response.ok
            assert response.error.code == "internal_error"

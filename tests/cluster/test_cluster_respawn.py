"""Shard respawn from snapshot: recovery must be invisible in the bytes.

The PR-9 golden path: a coordinator constructed with ``snapshot_path=``
can replace a SIGKILLed shard with a fresh process that boots from the
OCTOSNAP file — restoring the dead shard's node-range and chunk-range
ownership — after which ``health()`` reports the cluster whole again and
the golden workload serves **byte-identical** ``deterministic_form``
output, exactly as if the kill never happened.

Snapshot-booted replicas also honour the shard-count determinism
contract on their own: a cluster whose backend was *loaded* rather than
built from the dataset serves the same bytes at 1, 2 and 4 shards.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service import OctopusService
from repro.snapshot import load_snapshot, save_snapshot
from repro.utils.validation import ValidationError

from test_cluster_golden import GOLDEN_WORKLOAD, golden_forms

#: Bound on every HTTP wait in this module (seconds).
HTTP_TIMEOUT = 10.0


@pytest.fixture(scope="module")
def threads_service(make_service):
    """One chunked-semantics service shared by the module (do not mutate)."""
    return make_service("threads")


@pytest.fixture(scope="module")
def snapshot_path(threads_service, tmp_path_factory):
    """An OCTOSNAP of the module's backend, for boots and respawns."""
    path = tmp_path_factory.mktemp("respawn") / "system.octosnap"
    save_snapshot(threads_service.backend, str(path), source="cluster-tests")
    return str(path)


@pytest.fixture(scope="module")
def reference_forms(threads_service):
    return golden_forms(
        [threads_service.execute(r) for r in GOLDEN_WORKLOAD]
    )


def _kill_shard(cluster, shard_id: int) -> None:
    handle = cluster._handles[shard_id]
    handle.process.kill()  # SIGKILL — no cleanup, the hard-crash shape
    handle.process.join(timeout=5.0)


class TestSnapshotBootedCluster:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_matches_fresh_build(
        self, snapshot_path, reference_forms, running_cluster, shards
    ):
        service = OctopusService(load_snapshot(snapshot_path))
        with running_cluster(service, shards=shards) as cluster:
            served = cluster.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == reference_forms
        assert all(response.ok for response in served)


class TestRespawn:
    @pytest.mark.parametrize("shards,victim", [(2, 0), (4, 2)])
    def test_kill_one_shard_then_respawn_restores_bytes(
        self,
        threads_service,
        snapshot_path,
        reference_forms,
        running_cluster,
        shards,
        victim,
    ):
        with running_cluster(
            threads_service, shards=shards, snapshot_path=snapshot_path
        ) as cluster:
            before = golden_forms(cluster.execute_batch(GOLDEN_WORKLOAD))
            assert before == reference_forms

            _kill_shard(cluster, victim)
            assert cluster.health()["degraded"] is True

            assert cluster.respawn_dead_shards() == [victim]

            health = cluster.health()
            assert health["degraded"] is False
            assert health["shards_alive"] == shards

            # Recompute through the respawned shard, not the cache: the
            # replacement must own the dead shard's chunk ranges and node
            # range, or these bytes drift.
            cluster.cache.clear()
            after = golden_forms(cluster.execute_batch(GOLDEN_WORKLOAD))
            assert after == reference_forms

    def test_respawn_is_a_noop_when_all_shards_live(
        self, threads_service, snapshot_path, running_cluster
    ):
        with running_cluster(
            threads_service, shards=2, snapshot_path=snapshot_path
        ) as cluster:
            assert cluster.respawn_dead_shards() == []
            assert cluster.health()["degraded"] is False

    def test_respawn_without_snapshot_is_a_structured_error(
        self, threads_service, running_cluster
    ):
        with running_cluster(threads_service, shards=2) as cluster:
            _kill_shard(cluster, 0)
            with pytest.raises(ValidationError, match="snapshot"):
                cluster.respawn_dead_shards()
            # Still degraded — the failed call must not half-recover.
            assert cluster.health()["degraded"] is True

    def test_respawn_twice_survives_repeated_kills(
        self, threads_service, snapshot_path, running_cluster
    ):
        """The reclaim path must leave the arena reusable: kill the same
        shard twice and both respawns must come back healthy."""
        with running_cluster(
            threads_service, shards=2, snapshot_path=snapshot_path
        ) as cluster:
            for _ in range(2):
                _kill_shard(cluster, 0)
                assert cluster.respawn_dead_shards() == [0]
                assert cluster.health()["degraded"] is False
                cluster.cache.clear()
                response = cluster.execute(GOLDEN_WORKLOAD[1])
                assert response.ok


class TestHealthzOverHTTP:
    def test_healthz_degraded_then_ok_after_respawn(
        self, threads_service, snapshot_path, running_cluster
    ):
        from repro.server import serve_in_background

        def healthz(server):
            with urllib.request.urlopen(
                f"{server.url}/healthz", timeout=HTTP_TIMEOUT
            ) as reply:
                return json.loads(reply.read().decode())

        with running_cluster(
            threads_service, shards=2, snapshot_path=snapshot_path
        ) as cluster:
            server = serve_in_background(cluster, request_timeout=5.0)
            try:
                assert healthz(server)["status"] == "ok"
                _kill_shard(cluster, 0)
                assert healthz(server)["status"] == "degraded"
                cluster.respawn_dead_shards()
                health = healthz(server)
            finally:
                server.shutdown_gracefully()
        assert health["status"] == "ok"
        assert health["cluster"]["shards_alive"] == 2

"""Client-side handling of 429s: annotate, opt-in retry, honest raise.

Driven against a live gateway with per-tenant token buckets so the 429s
are the real article (``Retry-After`` header + structured envelope), not
canned responses.  The contract:

* by default (``retries=0``) a 429 comes back as a *returned* envelope —
  existing callers see a ``ServiceResponse`` exactly as before — with
  the server's retry hint surfaced in ``error.details``;
* ``retries=N`` sleeps the hinted backoff (capped by the client timeout)
  and retries, succeeding once the bucket refills;
* exhausted retries raise :class:`OctopusRateLimitedError` carrying the
  last hint as :attr:`retry_after`, so callers can schedule their own
  backoff.
"""

import time

import pytest

from repro.gateway import GatewayConfig
from repro.server import OctopusClient, OctopusRateLimitedError

WIRE_TIMEOUT = 15.0

CHEAP_REQUEST = {"service": "suggest"}


def throttled_config(rate, burst=1):
    """A gateway config whose only bottleneck is the tenant bucket."""
    return GatewayConfig(
        tenant_rate=rate,
        tenant_burst=burst,
        read_timeout=5.0,
        write_timeout=5.0,
    )


class TestDefaultNoRetry:
    def test_429_is_returned_as_annotated_envelope(
        self, stub_service, running_gateway
    ):
        """No retries: callers get the envelope, plus the server's hint."""
        config = throttled_config(rate=0.001)  # bucket refills ~never
        with running_gateway(stub_service, config=config) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                first = client.execute(CHEAP_REQUEST)
                assert first.ok  # the burst token
                second = client.execute(CHEAP_REQUEST)
                assert not second.ok
                assert second.error.code == "rate_limited"
                details = second.error.details
                assert details["reason"] == "tenant_rate_limited"
                # The Retry-After hint is surfaced for the caller.
                assert details["retry_after_seconds"] > 0

    def test_negative_retries_is_rejected(self):
        with pytest.raises(ValueError):
            OctopusClient("http://127.0.0.1:1", retries=-1)


class TestOptInRetry:
    def test_retry_sleeps_the_hint_then_succeeds(
        self, stub_service, running_gateway
    ):
        """2 tokens/s + burst 1: the second call succeeds after ~0.5s."""
        config = throttled_config(rate=2.0)
        with running_gateway(stub_service, config=config) as gateway:
            with OctopusClient(
                gateway.url, timeout=WIRE_TIMEOUT, retries=3
            ) as client:
                assert client.execute(CHEAP_REQUEST).ok
                started = time.monotonic()
                second = client.execute(CHEAP_REQUEST)
                elapsed = time.monotonic() - started
                assert second.ok  # retried through the throttle
                assert elapsed >= 0.3  # really waited for the refill
                assert elapsed < WIRE_TIMEOUT

    def test_exhausted_retries_raise_with_the_hint(
        self, stub_service, running_gateway
    ):
        """A bucket that cannot refill in time ends in a typed error."""
        config = throttled_config(rate=0.01)  # ~100s to a fresh token
        with running_gateway(stub_service, config=config) as gateway:
            # timeout=0.5 caps each backoff sleep, keeping the test fast.
            with OctopusClient(gateway.url, timeout=0.5, retries=1) as client:
                assert client.execute(CHEAP_REQUEST).ok
                with pytest.raises(OctopusRateLimitedError) as excinfo:
                    client.execute(CHEAP_REQUEST)
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after > 1.0

    def test_batch_path_is_retried_too(self, stub_service, running_gateway):
        """/batch flows through the same 429 loop as /query."""
        config = throttled_config(rate=2.0)
        with running_gateway(stub_service, config=config) as gateway:
            with OctopusClient(
                gateway.url, timeout=WIRE_TIMEOUT, retries=3
            ) as client:
                assert client.execute(CHEAP_REQUEST).ok  # drain the burst
                responses = client.execute_batch([CHEAP_REQUEST])
                assert len(responses) == 1 and responses[0].ok

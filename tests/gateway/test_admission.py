"""Admission-control invariants, proved over arbitrary interleavings.

The :class:`~repro.gateway.admission.AdmissionQueue` is pure logic by
design so hypothesis can drive it through any arrival/dispatch/completion
pattern a live gateway could ever produce, and check the production
contract directly:

* queued depth never exceeds the bound — arrivals beyond it are shed,
  and **every** shed yields a parseable structured 429 envelope;
* heavy in-flight work never exceeds ``heavy_slots`` and total in-flight
  work never exceeds ``workers``;
* work is never stranded: whenever a worker is free and the policy
  admits a lane, :meth:`take` produces a job.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gateway import (
    HEAVY_SERVICES,
    LANE_CHEAP,
    LANE_HEAVY,
    AdmissionQueue,
    lane_for_batch,
    lane_for_service,
    shed_envelope,
)
from repro.server.wire import status_for_response
from repro.service import ServiceResponse

#: Operation alphabet for the property: offers on each lane, a dispatch
#: attempt, and a completion of the longest-running in-flight job.
OPS = st.sampled_from(["offer_cheap", "offer_heavy", "take", "finish"])


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(OPS, max_size=200),
    capacity=st.integers(min_value=1, max_value=8),
    workers=st.integers(min_value=1, max_value=6),
    fairness=st.integers(min_value=1, max_value=5),
)
def test_queue_invariants_hold_under_any_interleaving(
    ops, capacity, workers, fairness
):
    """Bound, concurrency caps and shed contract under arbitrary traffic."""
    queue = AdmissionQueue(
        capacity=capacity, workers=workers, fairness=fairness
    )
    in_flight = []  # model: lanes of currently executing jobs, in order
    admitted = sheds = 0
    for op in ops:
        if op == "offer_cheap" or op == "offer_heavy":
            lane = LANE_CHEAP if op == "offer_cheap" else LANE_HEAVY
            before = queue.depth(lane)
            if queue.offer(lane, object()):
                admitted += 1
                assert before < capacity  # only admitted below the bound
            else:
                sheds += 1
                assert before == capacity  # only shed when full
                # The shed contract: a parseable structured 429 envelope.
                envelope = shed_envelope(lane, 1.0, before)
                assert status_for_response(envelope) == 429
                parsed = ServiceResponse.from_json(envelope.to_json())
                assert parsed.error is not None
                assert parsed.error.code == "rate_limited"
                assert parsed.error.details["lane"] == lane
                assert parsed.error.details["retry_after_seconds"] == 1.0
        elif op == "take":
            taken = queue.take()
            if taken is not None:
                in_flight.append(taken[0])
        elif op == "finish" and in_flight:
            queue.finish(in_flight.pop(0))
        # The standing invariants, checked after every single step:
        assert queue.depth(LANE_CHEAP) <= capacity
        assert queue.depth(LANE_HEAVY) <= capacity
        assert queue.in_flight(LANE_HEAVY) <= queue.heavy_slots
        assert queue.total_in_flight() <= workers
        # No stranded work: can_take() is false only for a policy reason.
        if not queue.can_take():
            cheap_blocked = queue.depth(LANE_CHEAP) == 0 or (
                queue.total_in_flight() >= workers
            )
            heavy_blocked = queue.depth(LANE_HEAVY) == 0 or (
                queue.total_in_flight() >= workers
                or queue.in_flight(LANE_HEAVY) >= queue.heavy_slots
            )
            assert cheap_blocked and heavy_blocked
    assert queue.shed_count(LANE_CHEAP) + queue.shed_count(LANE_HEAVY) == sheds


@settings(max_examples=100, deadline=None)
@given(
    arrivals=st.lists(st.booleans(), min_size=1, max_size=120),
    capacity=st.integers(min_value=1, max_value=6),
)
def test_depth_is_bounded_with_no_dispatch_at_all(arrivals, capacity):
    """Worst case — nothing ever dispatched — still sheds, never buffers."""
    queue = AdmissionQueue(capacity=capacity, workers=2)
    for is_heavy in arrivals:
        lane = LANE_HEAVY if is_heavy else LANE_CHEAP
        queue.offer(lane, object())
        assert queue.depth(lane) <= capacity
    total_queued = queue.depth(LANE_CHEAP) + queue.depth(LANE_HEAVY)
    total_shed = queue.shed_count(LANE_CHEAP) + queue.shed_count(LANE_HEAVY)
    assert total_queued + total_shed == len(arrivals)


class TestDispatchPolicy:
    """Deterministic corners of the lane policy."""

    def test_cheap_dispatches_before_heavy(self):
        queue = AdmissionQueue(capacity=8, workers=4)
        queue.offer(LANE_HEAVY, "h")
        queue.offer(LANE_CHEAP, "c")
        assert queue.take() == (LANE_CHEAP, "c")

    def test_heavy_slots_cap_concurrent_heavy_work(self):
        queue = AdmissionQueue(capacity=8, workers=4, heavy_slots=2)
        for index in range(4):
            queue.offer(LANE_HEAVY, index)
        assert queue.take() == (LANE_HEAVY, 0)
        assert queue.take() == (LANE_HEAVY, 1)
        assert queue.take() is None  # heavy at cap, nothing cheap waiting
        queue.finish(LANE_HEAVY)
        assert queue.take() == (LANE_HEAVY, 2)

    def test_last_worker_is_reserved_for_cheap_traffic(self):
        """Default heavy_slots = workers - 1: heavy can never fill all."""
        queue = AdmissionQueue(capacity=8, workers=3)
        for index in range(3):
            queue.offer(LANE_HEAVY, index)
        assert queue.take() is not None
        assert queue.take() is not None
        assert queue.take() is None  # third heavy blocked by the cap
        queue.offer(LANE_CHEAP, "c")
        assert queue.take() == (LANE_CHEAP, "c")  # the reserved slot

    def test_fairness_valve_lets_heavy_through_a_cheap_flood(self):
        queue = AdmissionQueue(capacity=64, workers=1, fairness=3)
        queue.offer(LANE_HEAVY, "h")
        for index in range(10):
            queue.offer(LANE_CHEAP, index)
        dispatched = []
        for _ in range(4):
            lane, item = queue.take()
            dispatched.append(lane)
            queue.finish(lane)
        # Three cheap dispatches, then the valve opens for the heavy job.
        assert dispatched == [LANE_CHEAP, LANE_CHEAP, LANE_CHEAP, LANE_HEAVY]

    def test_single_worker_still_serves_heavy(self):
        queue = AdmissionQueue(capacity=4, workers=1)
        assert queue.heavy_slots == 1
        queue.offer(LANE_HEAVY, "h")
        assert queue.take() == (LANE_HEAVY, "h")


class TestLaneClassification:
    """Service → lane mapping used by the gateway's request router."""

    def test_heavy_services_are_the_im_queries(self):
        assert HEAVY_SERVICES == {"influencers", "targeted"}
        for service in HEAVY_SERVICES:
            assert lane_for_service(service) == LANE_HEAVY

    def test_everything_else_is_cheap(self):
        for service in ("suggest", "paths", "complete", "radar", "stats"):
            assert lane_for_service(service) == LANE_CHEAP
        assert lane_for_service(None) == LANE_CHEAP
        assert lane_for_service("no_such_service") == LANE_CHEAP

    def test_batches_go_heavy_by_size_or_content(self):
        cheap_entry = {"service": "stats"}
        heavy_entry = {"service": "targeted"}
        assert lane_for_batch([cheap_entry] * 3, 16) == LANE_CHEAP
        assert lane_for_batch([cheap_entry] * 16, 16) == LANE_HEAVY
        assert lane_for_batch([cheap_entry, heavy_entry], 16) == LANE_HEAVY
        assert lane_for_batch(["not a dict"], 16) == LANE_CHEAP

    def test_shed_envelope_is_wire_ready(self):
        envelope = shed_envelope(LANE_HEAVY, 2.5, 64)
        body = json.loads(envelope.to_json())
        assert body["error"]["code"] == "rate_limited"
        assert body["error"]["details"]["reason"] == "queue_full"
        assert body["error"]["details"]["queue_depth"] == 64
        assert body["error"]["details"]["retry_after_seconds"] == 2.5

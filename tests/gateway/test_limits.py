"""Per-tenant token buckets: isolation, refill, honest hints, bounded table."""

from repro.gateway import ANONYMOUS_TENANT, TenantRateLimiter


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTenantRateLimiter:
    def test_burst_then_throttle_with_honest_retry_after(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(2.0, burst=3, clock=clock)
        for _ in range(3):
            allowed, retry_after = limiter.try_acquire("alice")
            assert allowed and retry_after == 0.0
        allowed, retry_after = limiter.try_acquire("alice")
        assert not allowed
        # An empty bucket at 2 tokens/s holds a whole token in 0.5s.
        assert abs(retry_after - 0.5) < 1e-9
        clock.advance(retry_after)
        allowed, _ = limiter.try_acquire("alice")
        assert allowed

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(1.0, burst=1, clock=clock)
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]
        # A hot tenant spends only its own budget, never bob's.
        assert limiter.try_acquire("bob")[0]
        assert limiter.try_acquire(ANONYMOUS_TENANT)[0]

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(10.0, burst=2, clock=clock)
        assert limiter.try_acquire("alice")[0]
        clock.advance(100.0)  # a long idle refills to burst, not beyond
        assert limiter.try_acquire("alice")[0]
        assert limiter.try_acquire("alice")[0]
        assert not limiter.try_acquire("alice")[0]

    def test_bucket_table_is_lru_bounded(self):
        clock = FakeClock()
        limiter = TenantRateLimiter(1.0, burst=1, max_tenants=3, clock=clock)
        for tenant in ("a", "b", "c", "d", "e"):
            limiter.try_acquire(tenant)
        assert limiter.tracked_tenants() == 3

    def test_eviction_is_permissive_never_a_lockout(self):
        """An evicted tenant returns with a full bucket — cycling random
        tokens buys an attacker nothing, and no tenant is ever locked out
        by losing its bucket."""
        clock = FakeClock()
        limiter = TenantRateLimiter(0.001, burst=1, max_tenants=2, clock=clock)
        assert limiter.try_acquire("a")[0]
        assert not limiter.try_acquire("a")[0]  # a's bucket is empty
        limiter.try_acquire("b")
        limiter.try_acquire("c")  # evicts "a" (least recently active)
        assert limiter.try_acquire("a")[0]  # back with a fresh bucket

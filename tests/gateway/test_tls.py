"""TLS on both serving front ends, end to end over real sockets.

A session-scoped self-signed certificate (``tls_material`` in the
package conftest) stands in for a deployment cert.  The contract under
test:

* both the threaded server and the asyncio gateway speak HTTPS when
  handed an ``ssl.SSLContext`` and advertise ``https://`` URLs;
* :class:`~repro.server.client.OctopusClient` verifies against a CA
  bundle path, can be told ``verify=False`` for lab rigs, and — by
  default — *refuses* a certificate it cannot chain (failing closed);
* answer bytes are transport-independent: TLS must not change
  deterministic forms.
"""

import ssl

import pytest

from repro.server import (
    OctopusClient,
    OctopusTransportError,
    serve_in_background,
)
from repro.service import (
    FindInfluencersRequest,
    OctopusService,
    deterministic_form,
)

WIRE_TIMEOUT = 15.0

REQUEST = FindInfluencersRequest("data mining", k=3)


@pytest.fixture
def plain_forms(backend):
    """Reference bytes computed in process (no transport at all)."""
    return deterministic_form(OctopusService(backend).execute(REQUEST))


class TestGatewayTLS:
    def test_https_with_ca_bundle_verification(
        self, backend, running_gateway, server_ssl_context, tls_material,
        plain_forms,
    ):
        cert_path, _ = tls_material
        with running_gateway(
            OctopusService(backend), ssl_context=server_ssl_context
        ) as gateway:
            assert gateway.url.startswith("https://")
            with OctopusClient(
                gateway.url, timeout=WIRE_TIMEOUT, verify=cert_path
            ) as client:
                response = client.execute(REQUEST)
                assert deterministic_form(response) == plain_forms
                assert client.health()["status"] == "ok"

    def test_verify_false_accepts_self_signed(
        self, backend, running_gateway, server_ssl_context, plain_forms
    ):
        with running_gateway(
            OctopusService(backend), ssl_context=server_ssl_context
        ) as gateway:
            with OctopusClient(
                gateway.url, timeout=WIRE_TIMEOUT, verify=False
            ) as client:
                response = client.execute(REQUEST)
                assert deterministic_form(response) == plain_forms

    def test_default_verification_fails_closed(
        self, backend, running_gateway, server_ssl_context
    ):
        """An unknown issuer must be rejected, not silently trusted."""
        with running_gateway(
            OctopusService(backend), ssl_context=server_ssl_context
        ) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                with pytest.raises(
                    OctopusTransportError, match="certificate verify failed"
                ):
                    client.execute(REQUEST)


class TestThreadedServerTLS:
    def test_https_round_trip_matches_gateway_and_plain(
        self, backend, running_gateway, server_ssl_context, tls_material,
        plain_forms,
    ):
        """Same cert, same bytes, on the classic threaded front end."""
        cert_path, key_path = tls_material
        threaded_context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        threaded_context.load_cert_chain(cert_path, key_path)
        server = serve_in_background(
            OctopusService(backend),
            request_timeout=WIRE_TIMEOUT,
            ssl_context=threaded_context,
        )
        try:
            assert server.url.startswith("https://")
            with OctopusClient(
                server.url, timeout=WIRE_TIMEOUT, verify=cert_path
            ) as threaded_client:
                threaded = threaded_client.execute(REQUEST)
            with running_gateway(
                OctopusService(backend), ssl_context=server_ssl_context
            ) as gateway:
                with OctopusClient(
                    gateway.url, timeout=WIRE_TIMEOUT, verify=cert_path
                ) as gateway_client:
                    gatewayed = gateway_client.execute(REQUEST)
        finally:
            server.shutdown_gracefully()
        assert deterministic_form(threaded) == plain_forms
        assert deterministic_form(gatewayed) == plain_forms

    def test_custom_client_context_is_honoured(
        self, backend, server_ssl_context, tls_material
    ):
        """``verify=<SSLContext>`` plugs an operator-built context in."""
        cert_path, _ = tls_material
        client_context = ssl.create_default_context(cafile=cert_path)
        server = serve_in_background(
            OctopusService(backend),
            request_timeout=WIRE_TIMEOUT,
            ssl_context=server_ssl_context,
        )
        try:
            with OctopusClient(
                server.url, timeout=WIRE_TIMEOUT, verify=client_context
            ) as client:
                assert client.health()["status"] == "ok"
        finally:
            server.shutdown_gracefully()

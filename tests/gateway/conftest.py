"""Fixtures of the asyncio-gateway test harness.

Mirrors the serving package's discipline — real sockets, ephemeral ports,
bounded waits everywhere — and adds two gateway-specific tools:

* :class:`StubService`, a service executor whose latency is *controlled
  by the test* (an event gate per lane class), so overload and
  priority-lane behaviour can be produced deterministically instead of
  hoping a real backend is slow enough;
* a session-scoped self-signed TLS certificate (generated with
  ``cryptography``) for the HTTPS tests on both front ends.
"""

from __future__ import annotations

import contextlib
import datetime
import ipaddress
import json
import threading

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.gateway import GatewayConfig, OctopusAsyncGateway
from repro.service import ServiceResponse

#: Every wire wait in this package is bounded by this (seconds).
WIRE_TIMEOUT = 15.0


@pytest.fixture(scope="package")
def backend(citation_dataset):
    """One small Octopus backend shared by the whole gateway package."""
    return Octopus.from_dataset(
        citation_dataset,
        config=OctopusConfig(
            num_sketches=30,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=15,
            seed=29,
        ),
    )


@contextlib.contextmanager
def _running_gateway(service, **gateway_kwargs):
    """Boot a gateway on an ephemeral port; always drain it afterwards."""
    gateway_kwargs.setdefault(
        "config",
        GatewayConfig(read_timeout=5.0, write_timeout=5.0),
    )
    gateway = OctopusAsyncGateway(service, port=0, **gateway_kwargs)
    gateway.start()
    try:
        yield gateway
    finally:
        gateway.shutdown_gracefully()


@pytest.fixture
def running_gateway():
    """The gateway-booting context manager (see :func:`_running_gateway`)."""
    return _running_gateway


class StubService:
    """A service executor whose compute time the test controls.

    ``execute`` answers instantly unless the request's service is listed
    in ``gated_services``; gated requests block on :attr:`gate` (released
    by the test) with a bounded wait, so a test can saturate the heavy
    lane at will and release it deterministically.  Payload echoes the
    request so responses remain assertable.  Thread-safe: the gateway's
    compute pool calls from several threads.
    """

    def __init__(self, gated_services=("influencers", "targeted")):
        self.gate = threading.Event()
        self.gated_services = frozenset(gated_services)
        self.started = threading.Semaphore(0)  # released as gated work begins
        self._lock = threading.Lock()
        self.executed = []

    def _service_of(self, request) -> str:
        if isinstance(request, dict):
            return str(request.get("service", "unknown"))
        if isinstance(request, str):
            try:
                return str(json.loads(request).get("service", "unknown"))
            except (json.JSONDecodeError, AttributeError):
                return "unknown"
        return str(getattr(request, "service", "unknown"))

    def execute(self, request) -> ServiceResponse:
        """Answer one request, blocking on the gate when it is gated."""
        service = self._service_of(request)
        with self._lock:
            self.executed.append(service)
        if service in self.gated_services:
            self.started.release()
            assert self.gate.wait(timeout=WIRE_TIMEOUT), "test gate never opened"
        return ServiceResponse.success(service, {"echo": service})

    def execute_batch(self, requests):
        """Per-slot :meth:`execute`."""
        return [self.execute(request) for request in requests]

    def stats(self):
        """Executor-side counters (requests seen)."""
        with self._lock:
            return {"stub.requests": float(len(self.executed))}


@pytest.fixture
def stub_service():
    """A fresh :class:`StubService` with the gate initially closed."""
    return StubService()


@pytest.fixture(scope="session")
def tls_material(tmp_path_factory):
    """Self-signed localhost cert + key PEM paths (session-scoped)."""
    from cryptography import x509
    from cryptography.hazmat.primitives import hashes, serialization
    from cryptography.hazmat.primitives.asymmetric import rsa
    from cryptography.x509.oid import NameOID

    key = rsa.generate_private_key(public_exponent=65537, key_size=2048)
    name = x509.Name([x509.NameAttribute(NameOID.COMMON_NAME, "localhost")])
    now = datetime.datetime.now(datetime.timezone.utc)
    certificate = (
        x509.CertificateBuilder()
        .subject_name(name)
        .issuer_name(name)
        .public_key(key.public_key())
        .serial_number(x509.random_serial_number())
        .not_valid_before(now - datetime.timedelta(minutes=5))
        .not_valid_after(now + datetime.timedelta(days=1))
        .add_extension(
            x509.SubjectAlternativeName(
                [
                    x509.DNSName("localhost"),
                    x509.IPAddress(ipaddress.ip_address("127.0.0.1")),
                ]
            ),
            critical=False,
        )
        .sign(key, hashes.SHA256())
    )
    directory = tmp_path_factory.mktemp("tls")
    cert_path = directory / "cert.pem"
    key_path = directory / "key.pem"
    cert_path.write_bytes(
        certificate.public_bytes(serialization.Encoding.PEM)
    )
    key_path.write_bytes(
        key.private_bytes(
            serialization.Encoding.PEM,
            serialization.PrivateFormat.TraditionalOpenSSL,
            serialization.NoEncryption(),
        )
    )
    return str(cert_path), str(key_path)


@pytest.fixture
def server_ssl_context(tls_material):
    """A fresh server-side ``SSLContext`` loaded with the test cert."""
    import ssl

    cert_path, key_path = tls_material
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.load_cert_chain(cert_path, key_path)
    return context

"""Overload behaviour of the asyncio gateway, produced deterministically.

A :class:`StubService` whose heavy queries block on a test-controlled
gate lets these tests *saturate* the heavy lane at will — no timing
luck — and then assert the production contract:

* a full queue sheds immediately: structured 429 envelope, honest
  ``Retry-After`` header, answered well inside the slow-client timeout —
  never a hang, never a 5xx;
* ``GET /healthz`` keeps answering while everything else sheds;
* the cheap lane keeps its latency while the heavy lane is saturated
  (the reserved-worker guarantee, measured as a p99).
"""

import http.client
import json
import threading
import time

from repro.gateway import GatewayConfig, OctopusAsyncGateway
from repro.server import OctopusClient

WIRE_TIMEOUT = 15.0

#: Overload-shaped gateway: tiny queue, one heavy slot, quick Retry-After.
OVERLOAD_CONFIG = GatewayConfig(
    queue_depth=2,
    workers=2,
    heavy_slots=1,
    retry_after_seconds=1.0,
    read_timeout=5.0,
    write_timeout=5.0,
)

HEAVY_REQUEST = {"service": "targeted", "keywords": ["x"]}
CHEAP_REQUEST = {"service": "stats"}


def saturate_heavy_lane(gateway, stub, clients):
    """Fill the heavy lane: 1 executing (gated) + queue_depth queued.

    Returns the threads carrying the in-flight requests; the caller must
    open ``stub.gate`` and join them before shutdown.

    The first request is sent *alone* and confirmed executing before the
    fillers go out: were all sent concurrently, a filler could reach a
    still-full queue and (correctly) be shed, leaving the lane under
    capacity.
    """
    threads = []

    def send(client):
        thread = threading.Thread(
            target=client.execute, args=(HEAVY_REQUEST,), daemon=True
        )
        thread.start()
        threads.append(thread)

    send(clients[0])
    # The gated execution has started: a worker slot is pinned open.
    assert stub.started.acquire(timeout=WIRE_TIMEOUT)
    for client in clients[1:]:
        send(client)
    # Now wait until the queue really holds the rest (bounded poll).
    deadline = time.monotonic() + WIRE_TIMEOUT
    while time.monotonic() < deadline:
        depths = gateway.stats()
        if depths["gateway.lane.heavy.depth"] >= OVERLOAD_CONFIG.queue_depth:
            return threads
        time.sleep(0.01)
    raise AssertionError("heavy lane never filled")


class TestLoadShedding:
    def test_full_queue_sheds_429_with_retry_after_quickly(
        self, stub_service, running_gateway
    ):
        with running_gateway(stub_service, config=OVERLOAD_CONFIG) as gateway:
            clients = [
                OctopusClient(gateway.url, timeout=WIRE_TIMEOUT)
                for _ in range(1 + OVERLOAD_CONFIG.queue_depth)
            ]
            try:
                threads = saturate_heavy_lane(gateway, stub_service, clients)
                # The next heavy request must shed *immediately*.
                host = gateway.url[len("http://"):]
                connection = http.client.HTTPConnection(host, timeout=5.0)
                body = json.dumps(HEAVY_REQUEST).encode()
                started = time.monotonic()
                connection.request(
                    "POST",
                    "/query",
                    body=body,
                    headers={"Content-Length": str(len(body))},
                )
                response = connection.getresponse()
                raw = response.read()
                shed_latency = time.monotonic() - started
                connection.close()
                assert response.status == 429  # shed, not hung and not 5xx
                assert shed_latency < OVERLOAD_CONFIG.read_timeout
                retry_after = response.getheader("Retry-After")
                assert retry_after is not None and int(retry_after) >= 1
                envelope = json.loads(raw)  # always a parseable envelope
                assert envelope["error"]["code"] == "rate_limited"
                assert envelope["error"]["details"]["reason"] == "queue_full"
                assert envelope["error"]["details"]["lane"] == "heavy"
                stats = gateway.stats()
                assert stats["gateway.lane.heavy.shed"] >= 1.0
            finally:
                stub_service.gate.set()
                for thread in threads:
                    thread.join(timeout=WIRE_TIMEOUT)
                for client in clients:
                    client.close()

    def test_healthz_stays_responsive_under_saturation(
        self, stub_service, running_gateway
    ):
        with running_gateway(stub_service, config=OVERLOAD_CONFIG) as gateway:
            clients = [
                OctopusClient(gateway.url, timeout=WIRE_TIMEOUT)
                for _ in range(1 + OVERLOAD_CONFIG.queue_depth)
            ]
            try:
                threads = saturate_heavy_lane(gateway, stub_service, clients)
                probe = OctopusClient(gateway.url, timeout=5.0)
                for _ in range(5):
                    started = time.monotonic()
                    health = probe.health()
                    assert time.monotonic() - started < 2.0
                    assert health["status"] == "ok"  # alive, just loaded
                probe.close()
            finally:
                stub_service.gate.set()
                for thread in threads:
                    thread.join(timeout=WIRE_TIMEOUT)
                for client in clients:
                    client.close()


class TestPriorityLanes:
    def test_cheap_lane_p99_bounded_while_heavy_lane_is_saturated(
        self, stub_service, running_gateway
    ):
        """The reserved worker keeps interactive latency under heavy load."""
        with running_gateway(stub_service, config=OVERLOAD_CONFIG) as gateway:
            clients = [
                OctopusClient(gateway.url, timeout=WIRE_TIMEOUT)
                for _ in range(1 + OVERLOAD_CONFIG.queue_depth)
            ]
            try:
                threads = saturate_heavy_lane(gateway, stub_service, clients)
                cheap = OctopusClient(gateway.url, timeout=WIRE_TIMEOUT)
                latencies = []
                for _ in range(50):
                    started = time.monotonic()
                    response = cheap.execute(CHEAP_REQUEST)
                    latencies.append(time.monotonic() - started)
                    assert response.ok  # served, not shed, while heavy waits
                cheap.close()
                latencies.sort()
                p99 = latencies[int(len(latencies) * 0.99) - 1]
                # Stub cheap queries are ~instant; anything near the heavy
                # gate's timescale would mean cheap traffic was starved.
                assert p99 < 2.0
                stats = gateway.stats()
                assert stats["gateway.lane.cheap.served"] >= 50.0
                assert stats["gateway.lane.cheap.shed"] == 0.0
            finally:
                stub_service.gate.set()
                for thread in threads:
                    thread.join(timeout=WIRE_TIMEOUT)
                for client in clients:
                    client.close()

    def test_draining_gateway_finishes_admitted_work(
        self, stub_service, running_gateway
    ):
        """Shutdown waits for queued+executing jobs (the gate opens first)."""
        config = GatewayConfig(
            queue_depth=4, workers=2, heavy_slots=1, drain_timeout=10.0
        )
        gateway = OctopusAsyncGateway(stub_service, port=0, config=config)
        gateway.start()
        client = OctopusClient(gateway.url, timeout=WIRE_TIMEOUT)
        results = []
        thread = threading.Thread(
            target=lambda: results.append(client.execute(HEAVY_REQUEST)),
            daemon=True,
        )
        thread.start()
        assert stub_service.started.acquire(timeout=WIRE_TIMEOUT)
        stub_service.gate.set()
        final = gateway.shutdown_gracefully()
        thread.join(timeout=WIRE_TIMEOUT)
        client.close()
        assert results and results[0].ok
        assert final["gateway.lane.heavy.served"] == 1.0

"""Golden replay through the asyncio front end.

The determinism contract so far: a fixed seed produces identical
deterministic forms in process, over the threaded wire, through the
process-pool executor and through the shard cluster.  This module closes
the loop for the gateway — the **same bytes** must come back when the
transport is the asyncio event loop with admission control in the path,
for every executor flavour (serial, thread pool, process pool, cluster),
and via the CLI's ``query --url`` acceptance path.
"""

import json

import pytest

from repro.cli import main
from repro.server import OctopusClient
from repro.service import (
    CompleteRequest,
    ConcurrentOctopusService,
    ExplorePathsRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    ServiceResponse,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
    deterministic_form,
)

WIRE_TIMEOUT = 15.0

#: The recorded workload of the serving suite, duplicates included.
GOLDEN_WORKLOAD = [
    CompleteRequest(prefix="da", limit=5),
    FindInfluencersRequest("data mining", k=3),
    RadarRequest("data mining"),
    SuggestKeywordsRequest(user=0, k=2),
    ExplorePathsRequest(user=0, threshold=0.02),
    FindInfluencersRequest("data mining", k=3),  # duplicate of slot 1
    TargetedInfluencersRequest("data mining", k=2, num_sets=150),
    CompleteRequest(prefix="da", limit=5),  # duplicate of slot 0
]


def golden_forms(responses):
    """The byte-comparable deterministic forms of a response list."""
    return [deterministic_form(response) for response in responses]


@pytest.fixture(scope="module")
def in_process_forms(backend):
    """The reference: the workload executed directly on a local service."""
    service = OctopusService(backend)
    return golden_forms([service.execute(r) for r in GOLDEN_WORKLOAD])


class TestGatewayDeterminism:
    """Admission control and lanes must never change answer bytes."""

    def test_serial_executor_matches_in_process(
        self, backend, in_process_forms, running_gateway
    ):
        with running_gateway(OctopusService(backend)) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                served = [client.execute(r) for r in GOLDEN_WORKLOAD]
        assert golden_forms(served) == in_process_forms

    def test_process_executor_matches_in_process(
        self, backend, in_process_forms, running_gateway
    ):
        executor = ConcurrentOctopusService(
            OctopusService(backend), workers=2, mode="processes"
        )
        with running_gateway(executor) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                served = client.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == in_process_forms

    def test_cluster_executor_matches_in_process(
        self, backend, in_process_forms, running_gateway
    ):
        from repro.cluster import ClusterCoordinator

        coordinator = ClusterCoordinator(OctopusService(backend), shards=2)
        with running_gateway(coordinator) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                served = client.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(served) == in_process_forms

    def test_batch_and_single_paths_agree(
        self, backend, in_process_forms, running_gateway
    ):
        """/query one-by-one and one /batch serve identical bytes."""
        with running_gateway(OctopusService(backend)) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                one_by_one = [client.execute(r) for r in GOLDEN_WORKLOAD]
                batched = client.execute_batch(GOLDEN_WORKLOAD)
        assert golden_forms(one_by_one) == in_process_forms
        assert golden_forms(batched) == in_process_forms

    def test_wire_error_envelopes_match_threaded_front_end(
        self, backend, running_gateway
    ):
        """Transport-level failures serve the same canonical envelopes."""
        from repro.server import serve_in_background

        bad_bodies = [
            "not json at all",
            json.dumps({"service": "no_such_service"}),
            json.dumps({"service": "influencers"}),  # missing keywords
        ]
        with running_gateway(OctopusService(backend)) as gateway:
            with OctopusClient(gateway.url, timeout=WIRE_TIMEOUT) as client:
                via_gateway = [client.execute(body) for body in bad_bodies]
        server = serve_in_background(OctopusService(backend), request_timeout=5.0)
        try:
            with OctopusClient(server.url, timeout=WIRE_TIMEOUT) as client:
                via_threaded = [client.execute(body) for body in bad_bodies]
        finally:
            server.shutdown_gracefully()
        assert golden_forms(via_gateway) == golden_forms(via_threaded)


class TestCLIGoldenReplay:
    """The acceptance path: ``octopus query --url`` against a gateway-
    fronted server reproduces local in-process bytes for every executor."""

    @pytest.fixture(scope="class")
    def dataset_dir(self, tmp_path_factory):
        directory = tmp_path_factory.mktemp("golden") / "dataset"
        code = main(
            [
                "generate",
                "--kind",
                "citation",
                "--out",
                str(directory),
                "--size",
                "120",
                "--seed",
                "3",
            ]
        )
        assert code == 0
        return str(directory)

    @pytest.fixture(scope="class")
    def workload_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("golden") / "workload.json"
        path.write_text(
            json.dumps([request.to_dict() for request in GOLDEN_WORKLOAD])
        )
        return str(path)

    @pytest.fixture(scope="class")
    def local_replay(self, dataset_dir, workload_file):
        """The local CLI's output for the recorded workload (the golden)."""
        import contextlib
        import io

        stdout = io.StringIO()
        with contextlib.redirect_stdout(stdout):
            code = main(
                ["query", dataset_dir, f"@{workload_file}", "--batch", "--fast"]
            )
        assert code == 0
        return json.loads(stdout.getvalue())

    @pytest.mark.parametrize("executor", ["serial", "processes", "cluster"])
    def test_remote_replay_is_byte_identical(
        self, dataset_dir, workload_file, local_replay, executor, capsys,
        running_gateway,
    ):
        """Replay over the asyncio wire against every executor flavour."""
        import argparse

        from repro.cli import _load_service

        arguments = argparse.Namespace(
            dataset=dataset_dir,
            seed=0,
            fast=True,
            backend="serial",
            workers=2 if executor != "serial" else None,
            rr_kernel="vectorized",
        )
        service = _load_service(arguments)
        if executor == "cluster":
            from repro.cluster import ClusterCoordinator

            service = ClusterCoordinator(service, shards=2)
        elif executor != "serial":
            service = ConcurrentOctopusService(service, workers=2, mode=executor)
        with running_gateway(service) as gateway:
            capsys.readouterr()  # drop anything buffered before the replay
            code = main(
                [
                    "query",
                    "--url",
                    gateway.url,
                    f"@{workload_file}",
                    "--batch",
                    "--timeout",
                    str(WIRE_TIMEOUT),
                ]
            )
            remote_replay = json.loads(capsys.readouterr().out)
        assert code == 0
        local = golden_forms(
            ServiceResponse.from_dict(entry) for entry in local_replay
        )
        remote = golden_forms(
            ServiceResponse.from_dict(entry) for entry in remote_replay
        )
        assert remote == local

"""E1 — online keyword IM vs naive per-query IM (the core §I claim).

The naive solution "computes pp_{u,v} for each edge given the query and then
employs the traditional IM algorithms", which is "extremely expensive, and
cannot be used for answering online keyword queries".  This bench measures
one query ("data mining", k=5) answered four ways:

* naive CELF greedy with Monte-Carlo estimation (the classical baseline),
* naive RIS with guarantee-sized θ (TIM-style, reference [8]),
* OCTOPUS best-effort framework (bounds + lazy exact evaluation),
* OCTOPUS topic-sample index (with best-effort fallback).

Expected shape: both OCTOPUS paths are one to three orders of magnitude
faster than naive greedy, with the topic-sample path fastest when the query
lands near a sample; seed quality stays comparable (extra_info records the
spread of every method's seeds under one shared judge).
"""

import numpy as np
import pytest

from repro.im.greedy import greedy_im
from repro.im.ris import recommended_num_sets, ris_im
from repro.propagation.estimators import MonteCarloSpreadEstimator

K = 5


@pytest.fixture(scope="module")
def judge(bench_graph, bench_weights, gamma_dm):
    probabilities = bench_weights.edge_probabilities(gamma_dm)
    return MonteCarloSpreadEstimator(
        bench_graph, probabilities, num_samples=400, seed=7
    )


@pytest.mark.benchmark(group="e1-keyword-im")
def test_naive_greedy_mc(benchmark, bench_graph, bench_weights, gamma_dm, judge):
    def run():
        # Same Monte-Carlo budget per evaluation as the best-effort oracle,
        # so the comparison isolates the pruning, not the estimator budget.
        probabilities = bench_weights.edge_probabilities(gamma_dm)
        return greedy_im(
            bench_graph, probabilities, K, num_samples=60, seed=1
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["spread"] = judge.spread(result.seeds)
    benchmark.extra_info["evaluations"] = result.evaluations


@pytest.mark.benchmark(group="e1-keyword-im")
def test_naive_ris_full_theta(
    benchmark, bench_graph, bench_weights, gamma_dm, judge
):
    num_sets = recommended_num_sets(
        bench_graph.num_nodes, K, epsilon=0.3, max_sets=60_000
    )

    def run():
        probabilities = bench_weights.edge_probabilities(gamma_dm)
        return ris_im(
            bench_graph, probabilities, K, num_sets=num_sets, seed=2
        )

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["spread"] = judge.spread(result.seeds)
    benchmark.extra_info["num_rr_sets"] = num_sets


@pytest.mark.benchmark(group="e1-keyword-im")
def test_octopus_best_effort(benchmark, best_effort_engine, gamma_dm, judge):
    result = benchmark(best_effort_engine.query, gamma_dm, K)
    benchmark.extra_info["spread"] = judge.spread(result.seeds)
    benchmark.extra_info["exact_evaluations"] = result.statistics[
        "exact_evaluations"
    ]


@pytest.mark.benchmark(group="e1-keyword-im")
def test_octopus_topic_samples(benchmark, bench_system, gamma_dm, judge):
    index = bench_system.topic_sample_index

    def run():
        return index.query(
            gamma_dm,
            K,
            best_effort=bench_system.best_effort,
            gap_tolerance=bench_system.config.gap_tolerance,
        )

    result = benchmark(run)
    benchmark.extra_info["spread"] = judge.spread(result.seeds)
    benchmark.extra_info["answered_from_sample"] = result.statistics[
        "answered_from_sample"
    ]


@pytest.mark.benchmark(group="e1-keyword-im-k")
@pytest.mark.parametrize("k", [5, 10, 20])
def test_octopus_latency_vs_k(benchmark, best_effort_engine, gamma_dm, k):
    result = benchmark(best_effort_engine.query, gamma_dm, k)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["exact_evaluations"] = result.statistics[
        "exact_evaluations"
    ]

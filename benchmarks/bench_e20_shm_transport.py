"""E20 — the zero-copy data plane: shm descriptors vs pickled payloads.

The PR 8 claim: packed RR-set chunks and greedy-cover vectors are bulk
int64 payloads, and pickling them across worker/shard pipes pays twice —
serialize in the child, deserialize in the parent — before assembly even
starts.  Writing them into a shared-memory arena and shipping a
(segment, offset, lengths) descriptor eliminates that entirely: the bytes
crossing the pipe shrink from the full payload to ~100 bytes per chunk,
and parent-side assembly concatenates zero-copy views instead of
unpickled copies.

Three measurements, each over both transports (``REPRO_SHM`` toggles the
byte-identical pickle twin):

* **payload accounting + assembly** — serialized bytes per batch under
  each transport, and the parent-side assembly cost (unpickle + concat
  vs view + concat), isolated from sampling;
* **pool end-to-end** — ``ProcessPoolBackend.sample_rr_sets_packed`` at
  1/2/4 workers;
* **cluster end-to-end** — one distributed targeted query at 1/2/4
  shards (smoke trims to 1/2).

Answers are transport-independent by construction (the golden suites pin
that); E20 records what the indirection costs and saves.  The trajectory
lives in ``BENCH_HISTORY.jsonl``.
"""

import contextlib
import os
import pickle

import numpy as np
import pytest

from repro.backend import ProcessPoolBackend, SerialBackend
from repro.backend.shm import ShmArena, ShmSession, shm_enabled
from repro.cluster import ClusterCoordinator
from repro.core.octopus import Octopus, OctopusConfig
from repro.graph.generators import erdos_renyi_digraph
from repro.propagation.packed import PackedRRSets
from repro.service import OctopusService, TargetedInfluencersRequest

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

pytestmark = pytest.mark.skipif(
    not shm_enabled() and os.environ.get("REPRO_SHM", "") == "",
    reason="platform has no fork start method",
)

NUM_NODES = 300 if _SMOKE else 3000
EDGE_PROBABILITY = 0.012 if _SMOKE else 0.0035
ACTIVATION = 0.12  # slightly supercritical: RR sets in the hundreds
NUM_SETS = 100 if _SMOKE else 3000
WORKER_COUNTS = [1, 2] if _SMOKE else [1, 2, 4]
SHARD_COUNTS = [1, 2] if _SMOKE else [1, 2, 4]
TARGETED_NUM_SETS = 150 if _SMOKE else 1500


@contextlib.contextmanager
def _transport(name):
    """Pin the transport for the duration (restores the prior setting)."""
    prior = os.environ.get("REPRO_SHM")
    if name == "pickle":
        os.environ["REPRO_SHM"] = "0"
    else:
        os.environ.pop("REPRO_SHM", None)
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_SHM", None)
        else:
            os.environ["REPRO_SHM"] = prior


@pytest.fixture(scope="module")
def transport_graph():
    return erdos_renyi_digraph(NUM_NODES, EDGE_PROBABILITY, seed=2001)


@pytest.fixture(scope="module")
def transport_probabilities(transport_graph):
    return np.full(transport_graph.num_edges, ACTIVATION)


@pytest.fixture(scope="module")
def chunk_payloads(transport_graph, transport_probabilities):
    """The batch's chunk payloads, sampled once serially: the exact arrays
    either transport must move (chunk plans are backend-independent)."""
    packed = SerialBackend().sample_rr_sets_packed(
        transport_graph, transport_probabilities, NUM_SETS, seed=2002
    )
    chunks = []
    for low in range(0, packed.num_sets, 256):
        high = min(low + 256, packed.num_sets)
        base, top = packed.offsets[low], packed.offsets[high]
        chunks.append(
            (
                packed.nodes[base:top].copy(),
                (packed.offsets[low : high + 1] - base).copy(),
            )
        )
    return packed, chunks


@pytest.mark.benchmark(group="e20-shm-assembly")
def test_pickle_roundtrip_assembly(benchmark, transport_graph, chunk_payloads):
    """The historical parent-side cost: unpickle every chunk, then
    concatenate — plus the serialized bytes the pipe must carry."""
    packed, chunks = chunk_payloads
    wire = [pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL) for chunk in chunks]

    def assemble():
        return PackedRRSets.from_chunks(
            transport_graph.num_nodes, [pickle.loads(blob) for blob in wire]
        )

    rebuilt = benchmark.pedantic(assemble, rounds=5, iterations=1)
    assert rebuilt.num_sets == packed.num_sets
    benchmark.extra_info["transport"] = "pickle"
    benchmark.extra_info["num_chunks"] = len(chunks)
    benchmark.extra_info["payload_bytes"] = int(packed.nodes.nbytes + packed.offsets.nbytes)
    benchmark.extra_info["bytes_over_pipe"] = sum(len(blob) for blob in wire)


@pytest.mark.benchmark(group="e20-shm-assembly")
def test_shm_view_assembly(benchmark, transport_graph, chunk_payloads):
    """The data-plane cost: resolve descriptors to zero-copy views, then
    concatenate — only the descriptors cross the pipe."""
    packed, chunks = chunk_payloads
    session = ShmSession()
    try:
        arena = ShmArena(session, "bench")
        reader = ShmArena.reader(session)
        refs = [arena.write_arrays(chunk) for chunk in chunks]

        def assemble():
            return PackedRRSets.from_chunks(
                transport_graph.num_nodes,
                [tuple(reader.read(ref)) for ref in refs],
            )

        rebuilt = benchmark.pedantic(assemble, rounds=5, iterations=1)
        assert rebuilt.num_sets == packed.num_sets
        benchmark.extra_info["transport"] = "shm"
        benchmark.extra_info["num_chunks"] = len(chunks)
        benchmark.extra_info["payload_bytes"] = int(
            packed.nodes.nbytes + packed.offsets.nbytes
        )
        benchmark.extra_info["bytes_over_pipe"] = sum(
            len(pickle.dumps(ref, protocol=pickle.HIGHEST_PROTOCOL))
            for ref in refs
        )
    finally:
        session.close()


@pytest.mark.benchmark(group="e20-shm-pool")
@pytest.mark.parametrize("transport", ["shm", "pickle"])
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_pool_sampling_end_to_end(
    benchmark, transport_graph, transport_probabilities, transport, workers
):
    """Fork, sample, transport, assemble: the pooled sampling path."""
    with _transport(transport):
        with ProcessPoolBackend(workers) as backend:

            def run():
                return backend.sample_rr_sets_packed(
                    transport_graph,
                    transport_probabilities,
                    NUM_SETS,
                    seed=2002,
                )

            packed = benchmark.pedantic(run, rounds=3, iterations=1)
            assert backend.payload_transport == transport
    assert packed.num_sets == NUM_SETS
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["workers"] = workers
    benchmark.extra_info["num_sets"] = NUM_SETS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["payload_bytes"] = int(
        packed.nodes.nbytes + packed.offsets.nbytes
    )


@pytest.fixture(scope="module")
def cluster_system(bench_dataset):
    """Chunked sampling semantics (what the distributed path reproduces)."""
    config = OctopusConfig(
        num_sketches=30 if _SMOKE else 200,
        num_topic_samples=4 if _SMOKE else 16,
        topic_sample_rr_sets=200 if _SMOKE else 1500,
        oracle_samples=15 if _SMOKE else 60,
        execution_backend="threads",
        workers=1,
        seed=1002,
    )
    return Octopus.from_dataset(bench_dataset, config=config)


@pytest.mark.benchmark(group="e20-shm-cluster")
@pytest.mark.parametrize("transport", ["shm", "pickle"])
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_cluster_targeted_end_to_end(
    benchmark, cluster_system, transport, shards
):
    """One distributed targeted query: shard fan-out, cover rounds, merge."""
    request = TargetedInfluencersRequest(
        keywords="data mining", k=5, num_sets=TARGETED_NUM_SETS
    )
    with _transport(transport):
        cluster = ClusterCoordinator(
            OctopusService(cluster_system), shards=shards
        )
    try:
        assert cluster.stats()["executor.payload_transport"] == transport

        def run():
            cluster.cache.clear()
            return cluster.execute(request)

        response = benchmark.pedantic(run, rounds=3, iterations=1)
        assert response.ok
    finally:
        cluster.close()
    benchmark.extra_info["transport"] = transport
    benchmark.extra_info["shards"] = shards
    benchmark.extra_info["num_sets"] = TARGETED_NUM_SETS
    benchmark.extra_info["cpu_count"] = os.cpu_count()

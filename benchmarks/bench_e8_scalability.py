"""E8 — scalability: index build and online query vs graph size.

Sweeps the network size and measures (a) full system build (all offline
indexes) and (b) online keyword-IM query latency on the built system.

Expected shape: build grows roughly linearly with edge count (walk-sum
iterations, sketch sampling and topic-sample precomputation are all
near-linear); online query latency grows far more slowly than build —
the whole point of the offline/online split.  Pure-Python absolute numbers
are modest (see the calibration note); the *ratio* build:query is the
claim being reproduced.
"""

import os

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.citation import CitationNetworkGenerator

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SIZES = [40, 80] if _SMOKE else [200, 400, 800]


def _config() -> OctopusConfig:
    if _SMOKE:
        return OctopusConfig(
            num_sketches=20,
            num_topic_samples=3,
            topic_sample_rr_sets=150,
            oracle_samples=10,
            seed=81,
        )
    return OctopusConfig(
        num_sketches=150,
        num_topic_samples=8,
        topic_sample_rr_sets=800,
        oracle_samples=50,
        seed=81,
    )


def _dataset(size: int):
    return CitationNetworkGenerator(
        num_researchers=size,
        citations_per_paper=4,
        papers_per_author=2,
        seed=1000 + size,
    ).generate()


@pytest.mark.benchmark(group="e8-build")
@pytest.mark.parametrize("size", SIZES)
def test_system_build(benchmark, size):
    dataset = _dataset(size)

    def build():
        return Octopus.from_dataset(dataset, config=_config())

    system = benchmark.pedantic(build, rounds=1, iterations=1)
    benchmark.extra_info["num_nodes"] = size
    benchmark.extra_info["num_edges"] = dataset.graph.num_edges
    benchmark.extra_info["sketch_edges"] = system.influencer_index.statistics()[
        "total_edges"
    ]


@pytest.mark.benchmark(group="e8-query")
@pytest.mark.parametrize("size", SIZES)
def test_online_query(benchmark, size):
    dataset = _dataset(size)
    system = Octopus.from_dataset(dataset, config=_config())

    def query():
        return system.find_influencers("data mining", k=5)

    result = benchmark(query)
    benchmark.extra_info["num_nodes"] = size
    benchmark.extra_info["spread"] = result.spread


@pytest.mark.benchmark(group="e8-query-suggestion")
@pytest.mark.parametrize("size", SIZES)
def test_online_suggestion(benchmark, size):
    dataset = _dataset(size)
    system = Octopus.from_dataset(dataset, config=_config())
    target = system.find_influencers("data mining", k=1).seeds[0]

    def query():
        return system.suggest_keywords(target, k=3)

    result = benchmark(query)
    benchmark.extra_info["num_nodes"] = size
    benchmark.extra_info["spread"] = result.spread

"""E13 — the "instant results" claim: mixed workload latency percentiles.

Runs a Zipf-skewed mixed query workload (keyword IM, suggestion, paths,
auto-completion) against a built system and records per-service p50/p95,
with and without the result cache.

Expected shape: every service's p95 stays interactive (tens of ms at this
scale); the cache compresses the skewed workload's p50 dramatically because
popular queries repeat.
"""

import pytest

from repro.engine.workload import QueryWorkload, WorkloadConfig, run_workload


@pytest.fixture(scope="module")
def workload(bench_system):
    return QueryWorkload.generate(
        bench_system, WorkloadConfig(num_queries=60, zipf_s=1.5, seed=131)
    )


@pytest.mark.benchmark(group="e13-workload")
def test_cold_cache_workload(benchmark, bench_system, workload):
    def run():
        bench_system._result_cache.clear()
        return run_workload(bench_system, workload)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    for service, stats in report.per_service.items():
        benchmark.extra_info[f"{service}_p95_ms"] = round(stats["p95_ms"], 2)
    benchmark.extra_info["cache_hit_rate"] = round(report.cache_hit_rate, 3)


@pytest.mark.benchmark(group="e13-workload")
def test_warm_cache_workload(benchmark, bench_system, workload):
    bench_system._result_cache.clear()
    run_workload(bench_system, workload)  # warm it once

    report = benchmark.pedantic(
        lambda: run_workload(bench_system, workload), rounds=2, iterations=1
    )
    for service, stats in report.per_service.items():
        benchmark.extra_info[f"{service}_p95_ms"] = round(stats["p95_ms"], 2)
    benchmark.extra_info["cache_hit_rate"] = round(report.cache_hit_rate, 3)

"""E13 — the "instant results" claim: mixed workload latency percentiles.

Runs a Zipf-skewed mixed query workload (keyword IM, suggestion, paths,
auto-completion) as typed requests through the :class:`OctopusService`
dispatch layer and records per-service p50/p95, with and without the
service-layer result cache.

Expected shape: every service's p95 stays interactive (tens of ms at this
scale); the cache compresses the skewed workload's p50 dramatically because
popular queries repeat.
"""

import pytest

from repro.engine.workload import QueryWorkload, WorkloadConfig, run_workload
from repro.service import OctopusService


@pytest.fixture(scope="module")
def bench_service(bench_system):
    return OctopusService(bench_system)


@pytest.fixture(scope="module")
def workload(bench_service):
    return QueryWorkload.generate(
        bench_service, WorkloadConfig(num_queries=60, zipf_s=1.5, seed=131)
    )


@pytest.mark.benchmark(group="e13-workload")
def test_cold_cache_workload(benchmark, bench_service, workload):
    def run():
        bench_service.cache.clear()
        return run_workload(bench_service, workload)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    for service, stats in report.per_service.items():
        benchmark.extra_info[f"{service}_p95_ms"] = round(stats["p95_ms"], 2)
    benchmark.extra_info["cache_hit_rate"] = round(report.cache_hit_rate, 3)


@pytest.mark.benchmark(group="e13-workload")
def test_warm_cache_workload(benchmark, bench_service, workload):
    bench_service.cache.clear()
    run_workload(bench_service, workload)  # warm it once

    report = benchmark.pedantic(
        lambda: run_workload(bench_service, workload), rounds=2, iterations=1
    )
    for service, stats in report.per_service.items():
        benchmark.extra_info[f"{service}_p95_ms"] = round(stats["p95_ms"], 2)
    benchmark.extra_info["cache_hit_rate"] = round(report.cache_hit_rate, 3)


@pytest.mark.benchmark(group="e13-batch")
def test_batch_execution(benchmark, bench_service, workload):
    """Batch dispatch of the same workload: duplicates shared in one pass."""

    def run():
        bench_service.cache.clear()
        return bench_service.execute_batch(workload.queries)

    responses = benchmark.pedantic(run, rounds=2, iterations=1)
    shared = sum(1 for response in responses if response.cache_hit)
    benchmark.extra_info["batch_size"] = len(responses)
    benchmark.extra_info["shared_results"] = shared
    benchmark.extra_info["ok"] = all(response.ok for response in responses)

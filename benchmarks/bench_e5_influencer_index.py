"""E5 — influencer-index size / build cost / accuracy trade-off (§II-D).

Sweeps the number of sketches (poll roots) and measures build time, stored
edges (after lazy-propagation pruning), per-query spread-estimation latency
and estimation error against a high-budget Monte-Carlo reference.

Expected shape: build cost and memory grow linearly in sketch count; the
estimator's RMSE shrinks like 1/√R; query latency grows sublinearly because
only sketches containing the target are traversed (membership pruning).
"""

import numpy as np
import pytest

from repro.core.influencer_index import InfluencerIndex
from repro.propagation.ic import IndependentCascade

SKETCH_COUNTS = [50, 200, 800]


@pytest.fixture(scope="module")
def reference_spreads(bench_graph, bench_weights, gamma_dm):
    probabilities = bench_weights.edge_probabilities(gamma_dm)
    cascade = IndependentCascade(bench_graph, probabilities)
    users = list(range(0, bench_graph.num_nodes, 23))
    return {
        user: cascade.estimate_spread([user], num_samples=800, seed=5)
        for user in users
    }


@pytest.mark.benchmark(group="e5-build")
@pytest.mark.parametrize("num_sketches", SKETCH_COUNTS)
def test_index_build(benchmark, bench_weights, num_sketches):
    index = benchmark.pedantic(
        InfluencerIndex,
        args=(bench_weights,),
        kwargs=dict(num_sketches=num_sketches, seed=31),
        rounds=1,
        iterations=1,
    )
    stats = index.statistics()
    benchmark.extra_info["num_sketches"] = num_sketches
    benchmark.extra_info["stored_edges"] = stats["total_edges"]
    benchmark.extra_info["pruned_edges"] = stats["edges_pruned_permanently"]


@pytest.mark.benchmark(group="e5-accuracy")
@pytest.mark.parametrize("num_sketches", SKETCH_COUNTS)
def test_estimation_accuracy_and_latency(
    benchmark, bench_weights, gamma_dm, reference_spreads, num_sketches
):
    index = InfluencerIndex(bench_weights, num_sketches=num_sketches, seed=31)
    users = sorted(reference_spreads)

    def run():
        return [index.estimate_user_spread(user, gamma_dm) for user in users]

    estimates = benchmark(run)
    errors = [
        estimate - reference_spreads[user]
        for user, estimate in zip(users, estimates)
    ]
    benchmark.extra_info["num_sketches"] = num_sketches
    benchmark.extra_info["rmse"] = float(np.sqrt(np.mean(np.square(errors))))
    benchmark.extra_info["users_evaluated"] = len(users)

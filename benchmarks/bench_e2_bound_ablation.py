"""E2 — ablation of the three upper-bound estimators (§II-C).

Measures, per estimator: (a) bound evaluation latency for a query, (b) the
bound tightness (mean bound over a node sample, lower = tighter given all
are sound), and (c) the pruning power when driving the best-effort loop
(exact oracle evaluations needed).

Expected shape: neighborhood is cheapest and loosest; precomputation is
cheap online and tight for sharp queries; local is tightest but pays a
per-candidate online cost (hence evaluated on a shortlist, not all nodes).
"""

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM

K = 5


@pytest.mark.benchmark(group="e2-bound-latency")
@pytest.mark.parametrize("name", ["precomputation", "neighborhood"])
def test_bounds_all_nodes_latency(benchmark, bound_estimators, gamma_dm, name):
    estimator = bound_estimators[name]
    bounds = benchmark(estimator.bounds, gamma_dm)
    benchmark.extra_info["mean_bound"] = float(np.mean(bounds))
    benchmark.extra_info["index_size_floats"] = estimator.index_size


@pytest.mark.benchmark(group="e2-bound-latency")
def test_local_bounds_shortlist_latency(benchmark, bound_estimators, gamma_dm):
    estimator = bound_estimators["local"]
    shortlist = list(range(0, estimator.graph.num_nodes, 8))
    bounds = benchmark(estimator.bounds_for, shortlist, gamma_dm)
    benchmark.extra_info["mean_bound"] = float(np.mean(bounds))
    benchmark.extra_info["shortlist_size"] = len(shortlist)


@pytest.mark.benchmark(group="e2-pruning-power")
@pytest.mark.parametrize("name", ["precomputation", "neighborhood"])
def test_best_effort_pruning_power(
    benchmark, bench_weights, bound_estimators, gamma_dm, name
):
    engine = BestEffortKeywordIM(
        bench_weights,
        bound_estimators[name],
        oracle="mc",
        num_samples=60,
        seed=11,
    )
    result = benchmark.pedantic(engine.query, (gamma_dm, K), rounds=2, iterations=1)
    benchmark.extra_info["exact_evaluations"] = result.statistics[
        "exact_evaluations"
    ]
    benchmark.extra_info["candidates"] = result.statistics[
        "candidates_considered"
    ]
    benchmark.extra_info["spread"] = result.spread

"""E10 (extension) — targeted keyword IM (reference [7]).

Compares plain keyword IM against the audience-targeted variant on the
same query: the targeted objective should shift seeds toward the audience
and win clearly on audience-weighted spread, at a latency in the same
online range.

Expected shape: targeted seeds ≥ untargeted seeds on the weighted
objective (often by a wide margin when the audience is a small topical
subpopulation); RR-sampling latency comparable to plain RIS.
"""

import numpy as np
import pytest

from repro.core.targeted import TargetedKeywordIM
from repro.im.ris import ris_im

K = 5


@pytest.fixture(scope="module")
def targeted_setup(bench_system, bench_weights, gamma_dm):
    engine = TargetedKeywordIM(
        bench_weights, bench_system.inverted_index, num_sets=1500, seed=101
    )
    word_ids = bench_system.topic_model.vocabulary.ids_of(["data mining"])
    audience = engine.audience_for_keywords(word_ids)
    return engine, audience


@pytest.mark.benchmark(group="e10-targeted")
def test_targeted_query(benchmark, targeted_setup, gamma_dm):
    engine, audience = targeted_setup
    result = benchmark(engine.query, gamma_dm, K, audience)
    benchmark.extra_info["weighted_spread"] = result.spread
    benchmark.extra_info["audience_users"] = result.statistics[
        "audience_users"
    ]


@pytest.mark.benchmark(group="e10-targeted")
def test_untargeted_baseline_on_weighted_objective(
    benchmark, targeted_setup, bench_graph, bench_weights, gamma_dm
):
    engine, audience = targeted_setup
    probabilities = bench_weights.edge_probabilities(gamma_dm)

    result = benchmark(
        ris_im, bench_graph, probabilities, K, num_sets=1500, seed=102
    )
    weighted = engine.estimate_weighted_spread(
        result.seeds, gamma_dm, audience, num_samples=400, seed=103
    )
    targeted_result = engine.query(gamma_dm, K, audience)
    targeted_weighted = engine.estimate_weighted_spread(
        targeted_result.seeds, gamma_dm, audience, num_samples=400, seed=103
    )
    benchmark.extra_info["untargeted_weighted_spread"] = weighted
    benchmark.extra_info["targeted_weighted_spread"] = targeted_weighted
    benchmark.extra_info["targeted_advantage"] = targeted_weighted / max(
        weighted, 1e-9
    )

"""E15 — RR sampling-kernel ablation: vectorized vs legacy, packed payloads.

The PR 3 claim: rebuilding `_reverse_reachable` as a frontier-batched NumPy
kernel (gather the whole frontier's in-CSR slices per BFS level, one coin
array per level) multiplies RR-set throughput wherever RR sets are
non-trivial, and the packed flat-array representation makes greedy max-cover
a bincount/argmax loop and chunk results two flat buffers.

Setup: a ~50k-edge Erdős–Rényi digraph with uniform activation probability
chosen slightly supercritical (mean RR set in the hundreds of nodes — the
regime where query-time IM budgets actually land).  Both kernels sample the
same distribution; they are timed end to end (``RRSetCollection.sample`` +
``greedy_max_cover``).  ``extra_info`` records the measured
``speedup_vs_legacy`` together with ``cpu_count`` (single-core runners —
the kernels are single-threaded anyway) and the pickle payload bytes of the
packed vs set-based batch representations.  No speedup is asserted; the
trajectory lives in ``BENCH_HISTORY.jsonl``.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_digraph
from repro.propagation.rrsets import RRSetCollection

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

NUM_NODES = 300 if _SMOKE else 5000
EDGE_PROBABILITY = 0.012 if _SMOKE else 0.002  # ≈ 50k edges at full size
ACTIVATION = 0.12  # slightly supercritical at mean degree ≈ 10
NUM_SETS = 60 if _SMOKE else 800
K = 10


@pytest.fixture(scope="module")
def kernel_graph():
    return erdos_renyi_digraph(NUM_NODES, EDGE_PROBABILITY, seed=1501)


@pytest.fixture(scope="module")
def activation_probabilities(kernel_graph):
    return np.full(kernel_graph.num_edges, ACTIVATION)


def _sample_and_cover(graph, probabilities, kernel):
    collection = RRSetCollection.sample(
        graph, probabilities, NUM_SETS, seed=1502, kernel=kernel
    )
    seeds, spread = collection.greedy_max_cover(K)
    return collection, seeds, spread


def _record_shape(benchmark, graph, collection, kernel):
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["num_sets"] = NUM_SETS
    benchmark.extra_info["num_edges"] = int(graph.num_edges)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["mean_rr_size"] = round(
        float(np.diff(collection.packed.offsets).mean()), 1
    )


@pytest.mark.benchmark(group="e15-kernels")
def test_legacy_kernel_sample_and_cover(
    benchmark, kernel_graph, activation_probabilities
):
    """Baseline: the historical node-at-a-time Python kernel."""
    collection, seeds, _spread = benchmark.pedantic(
        _sample_and_cover,
        args=(kernel_graph, activation_probabilities, "legacy"),
        rounds=2,
        iterations=1,
    )
    assert len(seeds) == K
    _record_shape(benchmark, kernel_graph, collection, "legacy")


@pytest.mark.benchmark(group="e15-kernels")
def test_vectorized_kernel_sample_and_cover(
    benchmark, kernel_graph, activation_probabilities
):
    """Frontier-batched kernel, plus the measured speedup over legacy."""
    legacy_started = time.perf_counter()
    _sample_and_cover(kernel_graph, activation_probabilities, "legacy")
    legacy_seconds = time.perf_counter() - legacy_started

    collection, seeds, _spread = benchmark.pedantic(
        _sample_and_cover,
        args=(kernel_graph, activation_probabilities, "vectorized"),
        rounds=2,
        iterations=1,
    )
    assert len(seeds) == K
    _record_shape(benchmark, kernel_graph, collection, "vectorized")
    benchmark.extra_info["legacy_seconds"] = round(legacy_seconds, 4)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["speedup_vs_legacy"] = round(
            legacy_seconds / benchmark.stats.stats.mean, 2
        )


@pytest.mark.benchmark(group="e15-kernels")
def test_packed_payload_pickle(
    benchmark, kernel_graph, activation_probabilities
):
    """What a chunk result costs to ship: packed buffers vs Python sets."""
    collection = RRSetCollection.sample(
        kernel_graph, activation_probabilities, NUM_SETS, seed=1502
    )
    packed_payload = collection.packed.chunk_payload()
    set_payload = collection.rr_sets

    benchmark.pedantic(
        lambda: pickle.dumps(packed_payload), rounds=3, iterations=1
    )
    packed_bytes = len(pickle.dumps(packed_payload))
    set_bytes = len(pickle.dumps(set_payload))
    set_pickle_started = time.perf_counter()
    pickle.dumps(set_payload)
    set_pickle_seconds = time.perf_counter() - set_pickle_started
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["num_sets"] = NUM_SETS
    benchmark.extra_info["payload_bytes_packed"] = packed_bytes
    benchmark.extra_info["payload_bytes_sets"] = set_bytes
    benchmark.extra_info["payload_bytes_ratio"] = round(
        set_bytes / max(packed_bytes, 1), 3
    )
    benchmark.extra_info["set_pickle_seconds"] = round(set_pickle_seconds, 5)

"""E21 — warm restart: snapshot boot vs cold dataset build.

The economics the snapshot subsystem (PR 9) must justify: a serving host
that restarts — or a coordinator respawning a dead shard — skips dataset
ingestion (tokenisation, EM topic fitting, vocabulary construction) and
reconstructs the system from packed OCTOSNAP arrays.  Three
measurements:

* **cold build** — ``Octopus.from_dataset`` end to end, the price every
  boot paid before snapshots existed;
* **snapshot boot** — ``load_snapshot`` on the same system: checksum
  verification + array adoption + index rebuild (the indexes are
  deliberately rebuilt, not serialized — see the format module), the
  price a warm restart pays;
* **snapshot write** — ``save_snapshot``, the once-per-deploy cost.

``extra_info`` records the snapshot file size and the cold/warm ratio so
``BENCH_HISTORY.jsonl`` tracks both the speedup and the disk footprint
as the format evolves.
"""

import os

import pytest

from repro.core.octopus import Octopus, OctopusConfig
from repro.snapshot import load_snapshot, save_snapshot

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

CONFIG = OctopusConfig(
    num_sketches=30 if _SMOKE else 200,
    num_topic_samples=4 if _SMOKE else 16,
    topic_sample_rr_sets=200 if _SMOKE else 1500,
    oracle_samples=15 if _SMOKE else 60,
    seed=1002,
)


@pytest.fixture(scope="module")
def built_system(bench_dataset):
    return Octopus.from_dataset(bench_dataset, config=CONFIG)


@pytest.fixture(scope="module")
def snapshot_file(built_system, tmp_path_factory):
    path = tmp_path_factory.mktemp("e21") / "bench.octosnap"
    save_snapshot(built_system, str(path), source="bench_dataset")
    return str(path)


@pytest.mark.benchmark(group="e21-snapshot")
def test_cold_build_from_dataset(benchmark, bench_dataset):
    """The full ingestion pipeline — the cost a snapshot boot avoids."""
    system = benchmark.pedantic(
        lambda: Octopus.from_dataset(bench_dataset, config=CONFIG),
        rounds=3,
        iterations=1,
    )
    assert system.graph.num_nodes > 0
    benchmark.extra_info["num_nodes"] = int(system.graph.num_nodes)
    benchmark.extra_info["num_edges"] = int(system.graph.num_edges)


@pytest.mark.benchmark(group="e21-snapshot")
def test_snapshot_boot(benchmark, snapshot_file, bench_dataset):
    """Checksummed restore + index rebuild — the warm-restart price."""
    import time

    cold_started = time.perf_counter()
    Octopus.from_dataset(bench_dataset, config=CONFIG)
    cold_seconds = time.perf_counter() - cold_started

    system = benchmark.pedantic(
        lambda: load_snapshot(snapshot_file), rounds=3, iterations=1
    )
    assert system.graph.num_nodes > 0
    benchmark.extra_info["snapshot_bytes"] = os.path.getsize(snapshot_file)
    benchmark.extra_info["cold_build_seconds"] = round(cold_seconds, 6)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["warm_over_cold_ratio"] = round(
            benchmark.stats.stats.mean / max(cold_seconds, 1e-9), 3
        )


@pytest.mark.benchmark(group="e21-snapshot")
def test_snapshot_write(benchmark, built_system, tmp_path):
    """The once-per-deploy cost of producing the OCTOSNAP file."""
    target = str(tmp_path / "write.octosnap")

    def run():
        save_snapshot(built_system, target, source="bench")
        return os.path.getsize(target)

    size = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["snapshot_bytes"] = int(size)

"""E11 (ablation) — the best-effort framework's exact-evaluation oracle.

DESIGN.md §5 marks the oracle as a configuration choice: Monte-Carlo
forward simulation (noisy, cheap per call on small spreads) vs a fixed
RR-set collection per query (deterministic within the query, pays an
upfront sampling cost).

Expected shape: the RIS oracle front-loads cost (collection build) and
then evaluates seeds in O(|collection|) set intersections, so it wins when
the bound framework requests many evaluations (larger k); the MC oracle
wins at small k.  Determinism also stabilises CELF: the RIS oracle should
need fewer re-evaluations.
"""

import pytest

from repro.core.besteffort import BestEffortKeywordIM


@pytest.mark.benchmark(group="e11-oracle")
@pytest.mark.parametrize("oracle", ["mc", "ris"])
@pytest.mark.parametrize("k", [5, 10])
def test_oracle_choice(
    benchmark, bench_weights, bound_estimators, gamma_dm, oracle, k
):
    engine = BestEffortKeywordIM(
        bench_weights,
        bound_estimators["precomputation"],
        oracle=oracle,
        num_samples=60,
        num_sets=2000,
        seed=111,
    )
    result = benchmark.pedantic(
        engine.query, (gamma_dm, k), rounds=2, iterations=1
    )
    benchmark.extra_info["oracle"] = oracle
    benchmark.extra_info["k"] = k
    benchmark.extra_info["exact_evaluations"] = result.statistics[
        "exact_evaluations"
    ]
    benchmark.extra_info["spread"] = result.spread

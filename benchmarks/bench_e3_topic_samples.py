"""E3 — the topic-sample index: sample count vs latency / hit rate.

Sweeps the number of offline-sampled topic distributions and measures, for
a pool of realistic keyword queries, the direct-answer (cache-hit) rate and
the mean L1 distance to the nearest sample, plus the per-query latency
through the index.

Expected shape: more samples → closer nearest sample → higher direct-answer
rate and lower latency (direct answers skip the oracle entirely), at a
linearly growing offline precomputation cost (also measured).
"""

import numpy as np
import pytest

from repro.core.topic_samples import TopicSampleIndex

QUERY_KEYWORDS = [
    "data mining",
    "clustering",
    "machine learning",
    "query optimization",
    "social network",
    "consensus",
    "web search",
    "visualization",
]


@pytest.fixture(scope="module")
def query_gammas(bench_system):
    return [bench_system.derive_gamma(keyword) for keyword in QUERY_KEYWORDS]


@pytest.mark.benchmark(group="e3-build")
@pytest.mark.parametrize("num_samples", [4, 16, 64])
def test_index_build_cost(benchmark, bench_weights, num_samples):
    index = benchmark.pedantic(
        TopicSampleIndex,
        kwargs=dict(
            edge_weights=bench_weights,
            num_samples=num_samples,
            max_k=10,
            num_rr_sets=800,
            seed=21,
        ),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["num_samples"] = num_samples
    benchmark.extra_info["stored_seed_sets"] = sum(
        len(sample.seeds_by_k) for sample in index.samples
    )


@pytest.mark.benchmark(group="e3-query")
@pytest.mark.parametrize("num_samples", [4, 16, 64])
def test_query_through_index(
    benchmark, bench_weights, bench_system, query_gammas, num_samples
):
    index = TopicSampleIndex(
        bench_weights,
        num_samples=num_samples,
        max_k=10,
        num_rr_sets=800,
        seed=21,
    )
    engine = bench_system.best_effort

    def run_all():
        hits = 0
        distances = []
        for gamma in query_gammas:
            result = index.query(
                gamma, 5, best_effort=engine, gap_tolerance=0.3
            )
            hits += int(result.statistics.get("answered_from_sample", 0))
            distances.append(result.statistics.get("l1_distance", 0.0))
        return hits, float(np.mean(distances))

    hits, mean_distance = benchmark(run_all)
    benchmark.extra_info["num_samples"] = num_samples
    benchmark.extra_info["direct_answer_rate"] = hits / len(query_gammas)
    benchmark.extra_info["mean_l1_to_nearest"] = mean_distance

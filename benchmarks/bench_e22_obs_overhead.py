"""E22 — observability overhead: tracing off vs on vs on+debug_timings.

PR 10 threads request tracing through every serving layer; this
experiment prices it.  The acceptance budget is **<5 % warm-latency
overhead with tracing on** (request ids stamped, stage spans recorded,
histograms fed): a trace is a handful of ``perf_counter`` reads plus one
``dataclasses.replace`` at the front door, so the tax should disappear
into socket noise.  ``debug_timings`` additionally serialises the stage
breakdown into every envelope, which only debugging sessions pay.

All three modes hammer the same warm :class:`OctopusService` behind the
threaded front end on a persistent connection, so the comparison
isolates the tracing code path.  ``BENCH_SMOKE=1`` shrinks the backend;
the CI bench-smoke job executes this module with ``--benchmark-disable``
so the tracing benchmark code cannot rot.
"""

import os

import pytest

from repro.server import OctopusClient, serve_in_background
from repro.service import OctopusService, RadarRequest

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: The warm probe request (cheap lane, small payload — front-end bound).
PROBE = RadarRequest("data mining")

#: Tracing modes priced against each other: server kwargs + client headers.
MODES = {
    "off": {"tracing": False, "headers": {}},
    "on": {"tracing": True, "headers": {}},
    "debug": {"tracing": True, "headers": {"X-Debug-Timings": "1"}},
}


@pytest.fixture(scope="module")
def obs_service(bench_system):
    """One warm dispatcher shared by every tracing mode."""
    service = OctopusService(bench_system)
    response = service.execute(PROBE)
    assert response.ok, response.error
    return service


@pytest.fixture(scope="module", params=sorted(MODES))
def traced_frontend(request, obs_service):
    """A threaded server in one tracing mode → ``(mode, url, headers)``."""
    mode = MODES[request.param]
    server = serve_in_background(
        obs_service,
        request_timeout=30.0,
        tracing=mode["tracing"],
        slow_query_ms=0.0,  # the slow log is priced separately below
    )
    yield request.param, server.url, mode["headers"]
    server.shutdown_gracefully()


@pytest.mark.benchmark(group="e22-obs-overhead")
def test_warm_latency_by_mode(benchmark, traced_frontend):
    """Warm per-request latency in each tracing mode.

    Compare the three modes' means within one run: ``on`` vs ``off`` is
    the headline overhead number, ``debug`` adds envelope serialisation.
    """
    mode, url, headers = traced_frontend
    with OctopusClient(url, timeout=30.0, request_headers=headers) as client:
        response = benchmark(client.execute, PROBE)
    assert response.ok
    if mode == "off":
        assert response.request_id is None
    else:
        assert response.request_id is not None
    if mode == "debug":
        assert response.timings
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["payload_bytes"] = len(response.to_json())


@pytest.mark.benchmark(group="e22-obs-overhead")
def test_slow_query_log_cost(benchmark, obs_service):
    """Worst case: every request crosses the slow threshold and logs."""
    server = serve_in_background(
        obs_service, request_timeout=30.0, tracing=True, slow_query_ms=0.0001
    )
    try:
        with OctopusClient(server.url, timeout=30.0) as client:
            response = benchmark(client.execute, PROBE)
        assert response.ok
    finally:
        server.shutdown_gracefully()
    benchmark.extra_info["mode"] = "on+slowlog-every-request"


@pytest.mark.benchmark(group="e22-obs-overhead")
def test_metrics_scrape_latency(benchmark, obs_service):
    """A ``GET /metrics`` scrape must stay cheap under live traffic."""
    import http.client

    server = serve_in_background(obs_service, request_timeout=30.0, tracing=True)
    try:
        with OctopusClient(server.url, timeout=30.0) as client:
            for _ in range(5):  # populate the histograms being rendered
                assert client.execute(PROBE).ok
        host, port = server.url.split("//", 1)[1].rstrip("/").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=30.0)

        def scrape():
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            return response.status, response.read()

        try:
            status, body = benchmark(scrape)
        finally:
            connection.close()
        assert status == 200
        benchmark.extra_info["body_bytes"] = len(body)
    finally:
        server.shutdown_gracefully()

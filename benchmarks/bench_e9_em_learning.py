"""E9 — EM learning of the TIC model (the §II-B substrate, reference [2]).

Measures EM fit cost vs topic count and corpus size, and records the
log-likelihood improvement and data-fit quality (correlation between the
learned edge envelope and observed activation frequencies).

Expected shape: per-iteration cost linear in (items × topics + events ×
topics); log-likelihood increases monotonically; data-fit correlation is
high (> 0.7) regardless of corpus size, while planted-parameter recovery
improves with corpus density (more events per edge).
"""

import os

import numpy as np
import pytest

from repro.datasets.citation import CitationNetworkGenerator
from repro.topics.em import EMConfig, TICLearner

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"
_CORPUS_RESEARCHERS = 50 if _SMOKE else 200


def _fit_quality(dataset, fitted):
    graph = dataset.graph
    attempts, successes = {}, {}
    for item in dataset.items:
        for event in item.events:
            edge = graph.edge_id(event.source, event.target)
            attempts[edge] = attempts.get(edge, 0) + 1
            successes[edge] = successes.get(edge, 0) + int(event.activated)
    edges = sorted(attempts)
    frequency = np.array([successes[e] / attempts[e] for e in edges])
    learned = fitted.edge_weights.max_over_topics()[edges]
    return float(np.corrcoef(frequency, learned)[0, 1])


@pytest.mark.benchmark(group="e9-em-topics")
@pytest.mark.parametrize("num_topics", [4, 8])
def test_em_fit_vs_topics(benchmark, bench_dataset, num_topics):
    learner = TICLearner(
        bench_dataset.graph,
        bench_dataset.vocabulary,
        EMConfig(num_topics=num_topics, max_iterations=15, seed=0),
    )
    fitted = benchmark.pedantic(
        learner.fit, (bench_dataset.items,), rounds=1, iterations=1
    )
    benchmark.extra_info["num_topics"] = num_topics
    benchmark.extra_info["iterations"] = fitted.iterations
    benchmark.extra_info["ll_improvement"] = (
        fitted.log_likelihoods[-1] - fitted.log_likelihoods[0]
    )
    benchmark.extra_info["fit_correlation"] = _fit_quality(
        bench_dataset, fitted
    )


@pytest.mark.benchmark(group="e9-em-corpus")
@pytest.mark.parametrize("papers_per_author", [2, 6])
def test_em_fit_vs_corpus_density(benchmark, papers_per_author):
    dataset = CitationNetworkGenerator(
        num_researchers=_CORPUS_RESEARCHERS,
        citations_per_paper=3,
        papers_per_author=papers_per_author,
        seed=91,
    ).generate()
    learner = TICLearner(
        dataset.graph,
        dataset.vocabulary,
        EMConfig(num_topics=8, max_iterations=15, seed=0),
    )
    fitted = benchmark.pedantic(
        learner.fit, (dataset.items,), rounds=1, iterations=1
    )
    planted = dataset.true_edge_weights.max_over_topics()
    learned = fitted.edge_weights.max_over_topics()
    benchmark.extra_info["papers_per_author"] = papers_per_author
    benchmark.extra_info["num_items"] = len(dataset.items)
    benchmark.extra_info["fit_correlation"] = _fit_quality(dataset, fitted)
    benchmark.extra_info["planted_recovery_correlation"] = float(
        np.corrcoef(learned, planted)[0, 1]
    )

"""E4 — keyword suggestion: influencer index vs naive sampling (§II-D).

The naive approach re-estimates the target's spread from scratch (forward
Monte-Carlo) for every candidate keyword set; OCTOPUS evaluates all
candidates against the precomputed influencer-index sketches (coupled
worlds, vectorised liveness).

Expected shape: the index-based suggester answers in milliseconds and its
latency is flat in graph size (only sketches containing the target are
touched), while the naive path scales with candidates × samples × cascade
size.  Greedy quality is recorded against exhaustive search.
"""

import numpy as np
import pytest

from repro.propagation.ic import IndependentCascade

K = 3


@pytest.fixture(scope="module")
def target(bench_system):
    return bench_system.find_influencers("data mining", 1).seeds[0]


@pytest.mark.benchmark(group="e4-suggestion")
def test_octopus_index_suggestion(benchmark, bench_system, target):
    def run():
        return bench_system.suggest_keywords(target, k=K)

    result = benchmark(run)
    benchmark.extra_info["spread"] = result.spread
    benchmark.extra_info["keywords"] = ",".join(result.keywords)
    benchmark.extra_info["set_evaluations"] = result.statistics[
        "set_evaluations"
    ]


@pytest.mark.benchmark(group="e4-suggestion")
def test_naive_mc_suggestion(
    benchmark, bench_system, bench_graph, bench_weights, target
):
    """Greedy over the same candidate pool with per-set MC estimation."""
    model = bench_system.topic_model
    candidates = bench_system.suggester.candidates_for(target)[:12]

    def run():
        selected = []
        current = 0.0
        for _round in range(K):
            best_word, best_gain = None, 0.0
            for word in candidates:
                if word in selected:
                    continue
                gamma = model.keyword_topic_posterior(selected + [word])
                probabilities = bench_weights.edge_probabilities(gamma)
                cascade = IndependentCascade(bench_graph, probabilities)
                spread = cascade.estimate_spread([target], 60, seed=3)
                if spread - current > best_gain:
                    best_word, best_gain = word, spread - current
            if best_word is None:
                break
            selected.append(best_word)
            current += best_gain
        return selected, current

    selected, spread = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["spread"] = spread
    benchmark.extra_info["keywords"] = ",".join(
        model.vocabulary.word_of(w) for w in selected
    )


@pytest.mark.benchmark(group="e4-greedy-vs-exact")
def test_exact_enumeration(benchmark, bench_system, target):
    def run():
        return bench_system.suggest_keywords(target, k=K, method="exact")

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    greedy = bench_system.suggest_keywords(target, k=K)
    benchmark.extra_info["exact_spread"] = result.spread
    benchmark.extra_info["greedy_spread"] = greedy.spread
    benchmark.extra_info["greedy_over_exact"] = greedy.spread / max(
        result.spread, 1e-9
    )


@pytest.mark.benchmark(group="e4-suggestion-k")
@pytest.mark.parametrize("k", [1, 3, 5])
def test_suggestion_latency_vs_k(benchmark, bench_system, target, k):
    def run():
        return bench_system.suggest_keywords(target, k=k)

    result = benchmark(run)
    benchmark.extra_info["k"] = k
    benchmark.extra_info["keywords_selected"] = len(result.keywords)

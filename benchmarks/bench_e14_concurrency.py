"""E14 — concurrent serving: worker-pool throughput vs the serial service.

The concurrency claim of the backend/executor layer: an RR-set-heavy query
stream (targeted keyword IM forces fresh weighted RR sampling per query)
served by :class:`~repro.service.ConcurrentOctopusService` in process mode
should scale with the worker count, because each query runs GIL-free on a
forked replica of the indexes.

Expected shape: on an N-core machine throughput approaches min(workers, N)×
the serial service; ``extra_info`` records the measured ratio together with
``cpu_count`` so the trajectory in ``BENCH_HISTORY.jsonl`` is interpretable
on any host (a single-core runner cannot show a parallel speedup — the
ratio then documents the executor's overhead instead).

The threads-mode benchmark measures the other win: identical in-flight
requests de-duplicated against a shared thread-safe cache on a skewed
workload.
"""

import os
import time

import pytest

from repro.engine.workload import QueryWorkload, WorkloadConfig, run_workload
from repro.service import (
    ConcurrentOctopusService,
    OctopusService,
    TargetedInfluencersRequest,
)

WORKERS = max(2, min(4, os.cpu_count() or 1))

# Distinct num_sets values give every request a distinct cache key, so each
# one really computes (no result sharing) — a pure RR-sampling-bound stream.
HEAVY_REQUESTS = [
    TargetedInfluencersRequest(keywords="data mining", k=5, num_sets=1200 + i)
    for i in range(6)
]


@pytest.mark.benchmark(group="e14-concurrency")
def test_serial_throughput_rr_heavy(benchmark, bench_system):
    """Baseline: the serial dispatcher grinds the stream one query at a time."""
    service = OctopusService(bench_system)

    def run():
        service.cache.clear()
        return service.execute_batch(HEAVY_REQUESTS)

    responses = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(response.ok for response in responses)
    benchmark.extra_info["queries"] = len(HEAVY_REQUESTS)
    benchmark.extra_info["cpu_count"] = os.cpu_count()


@pytest.mark.benchmark(group="e14-concurrency")
def test_process_pool_throughput_rr_heavy(benchmark, bench_system):
    """Process-mode executor on the same stream, plus the speedup ratio."""
    serial_service = OctopusService(bench_system)
    serial_started = time.perf_counter()
    serial_responses = serial_service.execute_batch(HEAVY_REQUESTS)
    serial_seconds = time.perf_counter() - serial_started
    assert all(response.ok for response in serial_responses)

    service = OctopusService(bench_system)
    with ConcurrentOctopusService(
        service, workers=WORKERS, mode="processes"
    ) as executor:
        executor.execute(HEAVY_REQUESTS[0])  # warm the fork pool once

        def run():
            service.cache.clear()
            return executor.execute_batch(HEAVY_REQUESTS)

        responses = benchmark.pedantic(run, rounds=2, iterations=1)
    assert all(response.ok for response in responses)
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["serial_seconds"] = round(serial_seconds, 4)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["throughput_vs_serial"] = round(
            serial_seconds / benchmark.stats.stats.mean, 3
        )


@pytest.mark.benchmark(group="e14-concurrency")
def test_thread_pool_skewed_workload(benchmark, bench_system):
    """Threads-mode executor on a skewed mixed workload (shared cache wins)."""
    service = OctopusService(bench_system)
    workload = QueryWorkload.generate(
        service, WorkloadConfig(num_queries=60, zipf_s=1.5, seed=141)
    )
    with ConcurrentOctopusService(service, workers=WORKERS) as executor:

        def run():
            service.cache.clear()
            return run_workload(executor, workload)

        report = benchmark.pedantic(run, rounds=2, iterations=1)
        benchmark.extra_info["workers"] = WORKERS
        benchmark.extra_info["cache_hit_rate"] = round(report.cache_hit_rate, 3)
        benchmark.extra_info["shared_inflight"] = executor.stats()[
            "executor.shared_inflight"
        ]

"""E12 (extension) — model refresh cost: absorb vs rebuild (ref. [9]).

When periodic EM re-fits drift the edge probabilities, the influencer
index can absorb the refresh in place whenever the new envelope stays
under the one the sketches pruned against (the thresholds remain a valid
coupling).  This bench measures the absorbed-refresh cost against a full
sketch rebuild.

Expected shape: absorbed refresh is orders of magnitude cheaper than
rebuild (it only drops per-sketch weight caches) while answering the same
queries; envelope-raising refreshes pay the rebuild price once.
"""

import numpy as np
import pytest

from repro.core.dynamic import DynamicInfluenceEngine
from repro.core.influencer_index import InfluencerIndex
from repro.topics.edges import TopicEdgeWeights


@pytest.fixture(scope="module")
def drifted(bench_graph, bench_dataset):
    weights = bench_dataset.true_edge_weights
    rng = np.random.default_rng(121)
    drift = np.clip(
        weights.weights * rng.uniform(0.7, 1.0, size=weights.weights.shape),
        0.0,
        1.0,
    )
    return TopicEdgeWeights(bench_graph, drift)


@pytest.mark.benchmark(group="e12-refresh")
def test_absorbed_refresh(benchmark, bench_dataset, drifted):
    weights = bench_dataset.true_edge_weights
    engine = DynamicInfluenceEngine(weights, num_sketches=300, seed=122)
    users = list(range(0, bench_dataset.graph.num_nodes, 37))
    gamma = np.full(weights.num_topics, 1.0 / weights.num_topics)

    def refresh_and_query():
        engine.refresh(drifted)
        return [engine.estimate_user_spread(user, gamma) for user in users]

    benchmark(refresh_and_query)
    benchmark.extra_info["absorbed"] = engine.refreshes_absorbed
    benchmark.extra_info["rebuilt"] = engine.refreshes_rebuilt


@pytest.mark.benchmark(group="e12-refresh")
def test_full_rebuild(benchmark, bench_dataset, drifted):
    users = list(range(0, bench_dataset.graph.num_nodes, 37))
    gamma = np.full(drifted.num_topics, 1.0 / drifted.num_topics)

    def rebuild_and_query():
        index = InfluencerIndex(drifted, num_sketches=300, seed=122)
        return [index.estimate_user_spread(user, gamma) for user in users]

    benchmark(rebuild_and_query)
    benchmark.extra_info["num_sketches"] = 300

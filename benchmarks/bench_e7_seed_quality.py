"""E7 — seed-set quality across algorithms (the Scenario-1 claim).

On a graph small enough for high-budget lazy greedy to stand in for the
(intractable) optimum, every algorithm's seed set is judged by one shared
high-precision Monte-Carlo estimator.

Expected shape: best-effort / topic-sample / RIS all land within a few
percent of greedy (consistent with their (1−1/e)-family guarantees), and
all are clearly above degree / PageRank / random rankings — influence
maximization finds complementary seeds, rankings find redundant ones.
"""

import pytest

from repro.im.greedy import greedy_im
from repro.im.heuristics import (
    degree_discount_seeds,
    degree_seeds,
    pagerank_seeds,
    random_seeds,
)
from repro.im.mia import mia_im
from repro.im.ris import ris_im
from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
)

K = 5


@pytest.fixture(scope="module")
def probabilities(bench_weights, gamma_dm):
    return bench_weights.edge_probabilities(gamma_dm)


@pytest.fixture(scope="module")
def judge(bench_graph, probabilities):
    return MonteCarloSpreadEstimator(
        bench_graph, probabilities, num_samples=1000, seed=71
    )


@pytest.fixture(scope="module")
def greedy_reference(bench_graph, probabilities, judge):
    estimator = RRSetSpreadEstimator(
        bench_graph, probabilities, num_sets=8000, seed=72
    )
    result = greedy_im(bench_graph, probabilities, K, estimator=estimator)
    return judge.spread(result.seeds)


def _record(benchmark, judge, seeds, greedy_reference):
    spread = judge.spread(seeds)
    benchmark.extra_info["spread"] = spread
    benchmark.extra_info["fraction_of_greedy"] = spread / max(
        greedy_reference, 1e-9
    )


@pytest.mark.benchmark(group="e7-quality")
def test_ris(benchmark, bench_graph, probabilities, judge, greedy_reference):
    result = benchmark(
        ris_im, bench_graph, probabilities, K, num_sets=4000, seed=73
    )
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_mia(benchmark, bench_graph, probabilities, judge, greedy_reference):
    result = benchmark.pedantic(
        mia_im,
        (bench_graph, probabilities, K),
        kwargs=dict(threshold=0.01),
        rounds=1,
        iterations=1,
    )
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_best_effort(benchmark, best_effort_engine, gamma_dm, judge, greedy_reference):
    result = benchmark(best_effort_engine.query, gamma_dm, K)
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_degree(benchmark, bench_graph, judge, greedy_reference):
    result = benchmark(degree_seeds, bench_graph, K)
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_degree_discount(
    benchmark, bench_graph, probabilities, judge, greedy_reference
):
    result = benchmark(degree_discount_seeds, bench_graph, K, probabilities)
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_pagerank(benchmark, bench_graph, judge, greedy_reference):
    result = benchmark(pagerank_seeds, bench_graph, K)
    _record(benchmark, judge, result.seeds, greedy_reference)


@pytest.mark.benchmark(group="e7-quality")
def test_random(benchmark, bench_graph, judge, greedy_reference):
    result = benchmark(random_seeds, bench_graph, K, 74)
    _record(benchmark, judge, result.seeds, greedy_reference)

"""E6 — influential path exploration: latency and tree size vs θ (§II-E).

Sweeps the MIA pruning threshold for the forward and reverse directions and
records latency, tree size, and cluster counts — the knobs behind the demo's
interactive exploration.

Expected shape: smaller θ → larger trees → superlinear latency growth (the
Dijkstra frontier grows with tree size); reverse exploration mirrors the
forward costs; the d3 export adds negligible overhead.
"""

import pytest

from repro.viz.d3 import path_tree_to_d3_force

THRESHOLDS = [0.1, 0.05, 0.01, 0.001]


@pytest.fixture(scope="module")
def star_user(bench_system):
    return bench_system.find_influencers("data mining", 1).seeds[0]


@pytest.mark.benchmark(group="e6-paths-forward")
@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_forward_exploration(benchmark, bench_system, star_user, threshold):
    tree = benchmark(
        bench_system.explore_paths, star_user, threshold=threshold
    )
    benchmark.extra_info["threshold"] = threshold
    benchmark.extra_info["tree_size"] = tree.size
    benchmark.extra_info["clusters"] = len(tree.clusters(min_size=2))


@pytest.mark.benchmark(group="e6-paths-reverse")
@pytest.mark.parametrize("threshold", [0.05, 0.01])
def test_reverse_exploration(benchmark, bench_system, threshold):
    sink = bench_system.graph.num_nodes - 1  # late paper: many influencers
    tree = benchmark(
        bench_system.explore_paths,
        sink,
        direction="influenced_by",
        threshold=threshold,
    )
    benchmark.extra_info["threshold"] = threshold
    benchmark.extra_info["tree_size"] = tree.size


@pytest.mark.benchmark(group="e6-paths-export")
def test_d3_export_overhead(benchmark, bench_system, star_user):
    tree = bench_system.explore_paths(star_user, threshold=0.01)
    payload = benchmark(path_tree_to_d3_force, tree)
    benchmark.extra_info["nodes"] = len(payload["nodes"])
    benchmark.extra_info["links"] = len(payload["links"])


@pytest.mark.benchmark(group="e6-paths-topic")
def test_topic_conditioned_exploration(benchmark, bench_system, star_user):
    tree = benchmark(
        bench_system.explore_paths,
        star_user,
        keywords="data mining",
        threshold=0.01,
    )
    benchmark.extra_info["tree_size"] = tree.size

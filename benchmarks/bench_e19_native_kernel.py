"""E19 — native RR kernel: compiled chunk-batched sampling vs the others.

The PR 7 claim: moving the chunk loop into a compiled core — one C call
per chunk of roots, packed ``(nodes, offsets)`` written directly, GIL
released — beats even the frontier-batched ``vectorized`` kernel, whose
per-level NumPy dispatch overhead dominates once RR sets are deep; and the
compiled greedy cover-update removes the remaining ``bincount`` passes
from seed selection without moving a single tie-break.

Setup mirrors E15 (a ~50k-edge Erdős–Rényi digraph, activation slightly
supercritical so mean RR sets land in the hundreds of nodes) so the two
experiments' histories compare directly.  All three kernels are timed end
to end (``RRSetCollection.sample`` + ``greedy_max_cover``).  ``extra_info``
records ``cpu_count`` (the kernels are single-threaded), whether the run
used ``native-compiled`` or ``native-fallback`` (the acceptance bar — a
2× margin over ``vectorized`` — applies to compiled runs only), and the
measured ``speedup_vs_vectorized`` / ``speedup_vs_legacy``.  The
trajectory lives in ``BENCH_HISTORY.jsonl``.
"""

import os
import time

import numpy as np
import pytest

from repro.graph.generators import erdos_renyi_digraph
from repro.propagation.native import kernel_provenance
from repro.propagation.rrsets import RRSetCollection

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

NUM_NODES = 300 if _SMOKE else 5000
EDGE_PROBABILITY = 0.012 if _SMOKE else 0.002  # ≈ 50k edges at full size
ACTIVATION = 0.12  # slightly supercritical at mean degree ≈ 10
NUM_SETS = 60 if _SMOKE else 800
K = 10


@pytest.fixture(scope="module")
def kernel_graph():
    return erdos_renyi_digraph(NUM_NODES, EDGE_PROBABILITY, seed=1901)


@pytest.fixture(scope="module")
def activation_probabilities(kernel_graph):
    return np.full(kernel_graph.num_edges, ACTIVATION)


def _sample_and_cover(graph, probabilities, kernel):
    collection = RRSetCollection.sample(
        graph, probabilities, NUM_SETS, seed=1902, kernel=kernel
    )
    seeds, spread = collection.greedy_max_cover(K)
    return collection, seeds, spread


def _time_once(graph, probabilities, kernel):
    started = time.perf_counter()
    _sample_and_cover(graph, probabilities, kernel)
    return time.perf_counter() - started


def _record_shape(benchmark, graph, collection, kernel):
    benchmark.extra_info["kernel"] = kernel
    benchmark.extra_info["num_sets"] = NUM_SETS
    benchmark.extra_info["num_edges"] = int(graph.num_edges)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["native_kernel"] = kernel_provenance()
    benchmark.extra_info["mean_rr_size"] = round(
        float(np.diff(collection.packed.offsets).mean()), 1
    )


@pytest.mark.benchmark(group="e19-native-kernel")
def test_legacy_kernel_sample_and_cover(
    benchmark, kernel_graph, activation_probabilities
):
    """Baseline 1: the historical node-at-a-time Python kernel."""
    collection, seeds, _spread = benchmark.pedantic(
        _sample_and_cover,
        args=(kernel_graph, activation_probabilities, "legacy"),
        rounds=2,
        iterations=1,
    )
    assert len(seeds) == K
    _record_shape(benchmark, kernel_graph, collection, "legacy")


@pytest.mark.benchmark(group="e19-native-kernel")
def test_vectorized_kernel_sample_and_cover(
    benchmark, kernel_graph, activation_probabilities
):
    """Baseline 2: the frontier-batched NumPy kernel (the default)."""
    collection, seeds, _spread = benchmark.pedantic(
        _sample_and_cover,
        args=(kernel_graph, activation_probabilities, "vectorized"),
        rounds=2,
        iterations=1,
    )
    assert len(seeds) == K
    _record_shape(benchmark, kernel_graph, collection, "vectorized")


@pytest.mark.benchmark(group="e19-native-kernel")
def test_native_kernel_sample_and_cover(
    benchmark, kernel_graph, activation_probabilities
):
    """The chunk-batched native kernel, with both baselines re-timed
    in-process so the recorded speedups come off the same machine state."""
    legacy_seconds = _time_once(
        kernel_graph, activation_probabilities, "legacy"
    )
    vectorized_seconds = _time_once(
        kernel_graph, activation_probabilities, "vectorized"
    )

    collection, seeds, _spread = benchmark.pedantic(
        _sample_and_cover,
        args=(kernel_graph, activation_probabilities, "native"),
        rounds=3,
        iterations=1,
    )
    assert len(seeds) == K
    _record_shape(benchmark, kernel_graph, collection, "native")
    benchmark.extra_info["legacy_seconds"] = round(legacy_seconds, 4)
    benchmark.extra_info["vectorized_seconds"] = round(vectorized_seconds, 4)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        mean = benchmark.stats.stats.mean
        benchmark.extra_info["speedup_vs_vectorized"] = round(
            vectorized_seconds / mean, 2
        )
        benchmark.extra_info["speedup_vs_legacy"] = round(
            legacy_seconds / mean, 2
        )

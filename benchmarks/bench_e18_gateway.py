"""E18 — serving front ends: asyncio gateway vs threaded server.

PR 6 adds an asyncio front end with admission control in the request
path; this experiment prices it.  Three questions:

* **tax** — what does the event loop + dispatch queue add to a warm
  single request over the threaded server's thread-per-connection path?
* **fan-in** — with many concurrent keep-alive clients, which front end
  sustains more requests per second on loopback?
* **shed latency** — when the gateway *refuses* work (tenant bucket
  empty), how fast is the structured 429?  Load shedding only protects
  tail latency if rejection is much cheaper than service.

Both front ends serve the same warm :class:`OctopusService` so the
comparison isolates the transport stack.  ``BENCH_SMOKE=1`` shrinks the
backend and the fan-in width; the CI bench-smoke job executes this
module with ``--benchmark-disable`` so the gateway benchmark code cannot
rot.
"""

import concurrent.futures
import os

import pytest

from repro.gateway import GatewayConfig, OctopusAsyncGateway
from repro.server import OctopusClient, serve_in_background
from repro.service import (
    CompleteRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
)

BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

#: Fan-in shape: concurrent keep-alive clients × requests per client.
FAN_CLIENTS = 4 if BENCH_SMOKE else 8
FAN_REQUESTS = 5 if BENCH_SMOKE else 25

#: The warm probe request (cheap lane, small payload).
PROBE = RadarRequest("data mining")

#: The fan-in mix: mostly cheap with some heavy, like real traffic.
FAN_MIX = [
    CompleteRequest(prefix="da", limit=10),
    RadarRequest("data mining"),
    FindInfluencersRequest("data mining", k=5),
]

FRONTENDS = ("threaded", "asyncio")


@pytest.fixture(scope="module")
def gateway_service(bench_system):
    """One warm dispatcher shared by both front ends."""
    service = OctopusService(bench_system)
    for request in [PROBE, *FAN_MIX]:
        response = service.execute(request)
        assert response.ok, response.error
    return service


@pytest.fixture(scope="module", params=FRONTENDS)
def frontend(request, gateway_service):
    """A running front end of either flavour → ``(name, url, teardown)``."""
    if request.param == "threaded":
        server = serve_in_background(gateway_service, request_timeout=30.0)
    else:
        server = OctopusAsyncGateway(
            gateway_service,
            port=0,
            config=GatewayConfig(queue_depth=256, workers=FAN_CLIENTS),
        )
        server.start()
    yield request.param, server.url
    server.shutdown_gracefully()


@pytest.mark.benchmark(group="e18-gateway")
def test_warm_single_latency(benchmark, frontend):
    """The per-request tax of each front end on a persistent connection."""
    name, url = frontend
    with OctopusClient(url, timeout=30.0) as client:
        response = benchmark(client.execute, PROBE)
    assert response.ok
    benchmark.extra_info["frontend"] = name
    benchmark.extra_info["payload_bytes"] = len(response.to_json())


@pytest.mark.benchmark(group="e18-gateway")
def test_concurrent_fan_in(benchmark, frontend):
    """Many keep-alive clients at once: total wall time for the burst."""
    name, url = frontend
    clients = [OctopusClient(url, timeout=30.0) for _ in range(FAN_CLIENTS)]
    workload = [FAN_MIX[i % len(FAN_MIX)] for i in range(FAN_REQUESTS)]

    def one_client(client):
        return [client.execute(request) for request in workload]

    def burst():
        with concurrent.futures.ThreadPoolExecutor(FAN_CLIENTS) as pool:
            return list(pool.map(one_client, clients))

    try:
        results = benchmark(burst)
    finally:
        for client in clients:
            client.close()
    assert all(r.ok for batch in results for r in batch)
    total = FAN_CLIENTS * FAN_REQUESTS
    benchmark.extra_info["frontend"] = name
    benchmark.extra_info["total_requests"] = total
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["requests_per_second"] = round(
            total / max(benchmark.stats.stats.mean, 1e-9), 1
        )


@pytest.mark.benchmark(group="e18-gateway")
def test_shed_latency(benchmark, gateway_service):
    """Time to a structured 429 once the tenant bucket is empty.

    Shedding must be far cheaper than serving — the rejected request
    never reaches the compute pool, so this is pure front-end path.
    """
    gateway = OctopusAsyncGateway(
        gateway_service,
        port=0,
        config=GatewayConfig(tenant_rate=1e-6, tenant_burst=1),
    )
    gateway.start()
    try:
        with OctopusClient(gateway.url, timeout=30.0) as client:
            assert client.execute(PROBE).ok  # spend the burst token
            response = benchmark(client.execute, PROBE)
        assert not response.ok
        assert response.error.code == "rate_limited"
    finally:
        gateway.shutdown_gracefully()
    benchmark.extra_info["frontend"] = "asyncio"
    benchmark.extra_info["retry_after_seconds"] = (
        response.error.details["retry_after_seconds"]
    )

"""Shared fixtures for the experiment benchmarks (see DESIGN.md §4).

Everything expensive is session-scoped.  The benchmark graph is kept at a
few hundred nodes so the whole suite runs in minutes on a laptop while
preserving the *shapes* the paper's claims rest on (see the repro
calibration note: billion-edge scale needs C extensions, out of scope).

Besides pytest-benchmark's human table, every run writes one
machine-readable JSON artifact (``BENCH_RESULTS.json`` next to this file,
or ``$BENCH_JSON_PATH``) with per-benchmark stats and ``extra_info``, and
*appends* the same records to ``BENCH_HISTORY.jsonl`` (or
``$BENCH_HISTORY_PATH``) keyed by git SHA and timestamp — the overwrite
artifact answers "how fast is it now", the history answers "how fast has
it been across PRs".

Setting ``BENCH_SMOKE=1`` shrinks every workload to smoke size: the CI
bench-smoke job runs the whole suite that way (with ``--benchmark-disable``
and ``BENCH_HISTORY_PATH`` pointed at a temp file) so benchmark code cannot
rot outside tier-1 collection.  Smoke numbers are *not* comparable to real
runs and must never be appended to the committed history.
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import (
    LocalGraphBound,
    NeighborhoodBound,
    PrecomputationBound,
)
from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.citation import CitationNetworkGenerator


#: Smoke mode: tiny sizes so CI can execute every benchmark module quickly.
BENCH_SMOKE = os.environ.get("BENCH_SMOKE") == "1"


@pytest.fixture(scope="session")
def bench_dataset():
    """The workhorse dataset: 400-researcher synthetic ACMCite."""
    return CitationNetworkGenerator(
        num_researchers=80 if BENCH_SMOKE else 400,
        citations_per_paper=4,
        papers_per_author=3,
        seed=1001,
    ).generate()


@pytest.fixture(scope="session")
def bench_graph(bench_dataset):
    return bench_dataset.graph


@pytest.fixture(scope="session")
def bench_weights(bench_dataset):
    return bench_dataset.true_edge_weights


@pytest.fixture(scope="session")
def bench_system(bench_dataset):
    if BENCH_SMOKE:
        config = OctopusConfig(
            num_sketches=30,
            num_topic_samples=4,
            topic_sample_rr_sets=200,
            oracle_samples=15,
            seed=1002,
        )
    else:
        config = OctopusConfig(
            num_sketches=200,
            num_topic_samples=16,
            topic_sample_rr_sets=1500,
            oracle_samples=60,
            seed=1002,
        )
    return Octopus.from_dataset(bench_dataset, config=config)


@pytest.fixture(scope="session")
def gamma_dm(bench_system):
    """The running example query: γ('data mining')."""
    return bench_system.derive_gamma("data mining")


@pytest.fixture(scope="session")
def bound_estimators(bench_weights):
    """The three §II-C bound estimators, built once."""
    return {
        "precomputation": PrecomputationBound(bench_weights, grid=4),
        "neighborhood": NeighborhoodBound(bench_weights),
        "local": LocalGraphBound(bench_weights, radius=2),
    }


@pytest.fixture(scope="session")
def best_effort_engine(bench_weights, bound_estimators):
    return BestEffortKeywordIM(
        bench_weights,
        bound_estimators["precomputation"],
        oracle="mc",
        num_samples=60,
        seed=1003,
    )


def pytest_sessionfinish(session, exitstatus):
    """Dump one machine-readable dict per benchmark to a JSON artifact."""
    benchmark_session = getattr(session.config, "_benchmarksession", None)
    if benchmark_session is None or not benchmark_session.benchmarks:
        return
    records = []
    for bench in benchmark_session.benchmarks:
        try:
            stats = bench.stats
            records.append(
                {
                    "name": bench.name,
                    "group": bench.group,
                    "fullname": bench.fullname,
                    "rounds": int(stats.rounds),
                    "mean_s": float(stats.mean),
                    "stddev_s": float(stats.stddev) if stats.rounds > 1 else 0.0,
                    "min_s": float(stats.min),
                    "max_s": float(stats.max),
                    "extra_info": dict(bench.extra_info),
                }
            )
        except Exception:  # noqa: BLE001 — never fail the run over reporting
            continue
    if not records:
        return
    target = pathlib.Path(
        os.environ.get(
            "BENCH_JSON_PATH",
            pathlib.Path(__file__).parent / "BENCH_RESULTS.json",
        )
    )
    try:
        target.write_text(json.dumps(records, indent=1, sort_keys=True))
        print(f"\nbenchmark JSON written to {target}")
    except OSError:
        pass
    _append_history(records)


def _git_sha() -> str:
    """The current commit SHA, or ``unknown`` outside a git checkout."""
    try:
        return (
            subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=pathlib.Path(__file__).parent,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            or "unknown"
        )
    except Exception:  # noqa: BLE001 — never fail the run over reporting
        return "unknown"


def _append_history(records) -> None:
    """Append this run to the across-PRs trajectory log (one JSON line)."""
    history = pathlib.Path(
        os.environ.get(
            "BENCH_HISTORY_PATH",
            pathlib.Path(__file__).parent / "BENCH_HISTORY.jsonl",
        )
    )
    entry = {
        "git_sha": _git_sha(),
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "benchmarks": records,
    }
    try:
        with history.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        print(f"benchmark history appended to {history}")
    except OSError:
        pass

"""Shared fixtures for the experiment benchmarks (see DESIGN.md §4).

Everything expensive is session-scoped.  The benchmark graph is kept at a
few hundred nodes so the whole suite runs in minutes on a laptop while
preserving the *shapes* the paper's claims rest on (see the repro
calibration note: billion-edge scale needs C extensions, out of scope).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.besteffort import BestEffortKeywordIM
from repro.core.bounds import (
    LocalGraphBound,
    NeighborhoodBound,
    PrecomputationBound,
)
from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.citation import CitationNetworkGenerator


@pytest.fixture(scope="session")
def bench_dataset():
    """The workhorse dataset: 400-researcher synthetic ACMCite."""
    return CitationNetworkGenerator(
        num_researchers=400,
        citations_per_paper=4,
        papers_per_author=3,
        seed=1001,
    ).generate()


@pytest.fixture(scope="session")
def bench_graph(bench_dataset):
    return bench_dataset.graph


@pytest.fixture(scope="session")
def bench_weights(bench_dataset):
    return bench_dataset.true_edge_weights


@pytest.fixture(scope="session")
def bench_system(bench_dataset):
    config = OctopusConfig(
        num_sketches=200,
        num_topic_samples=16,
        topic_sample_rr_sets=1500,
        oracle_samples=60,
        seed=1002,
    )
    return Octopus.from_dataset(bench_dataset, config=config)


@pytest.fixture(scope="session")
def gamma_dm(bench_system):
    """The running example query: γ('data mining')."""
    return bench_system.derive_gamma("data mining")


@pytest.fixture(scope="session")
def bound_estimators(bench_weights):
    """The three §II-C bound estimators, built once."""
    return {
        "precomputation": PrecomputationBound(bench_weights, grid=4),
        "neighborhood": NeighborhoodBound(bench_weights),
        "local": LocalGraphBound(bench_weights, radius=2),
    }


@pytest.fixture(scope="session")
def best_effort_engine(bench_weights, bound_estimators):
    return BestEffortKeywordIM(
        bench_weights,
        bound_estimators["precomputation"],
        oracle="mc",
        num_samples=60,
        seed=1003,
    )

"""E17 — sharded serving: queries/sec and per-query latency vs shard count.

The cluster question PR 5 opens: what does shard fan-out cost, and what
does it buy?  Three measurements per shard count (1 / 2 / 4; smoke runs
trim to 1 / 2):

* **distributed targeted latency** — the fan-out max-cover pipeline
  (chunk-partitioned sampling + per-round marginal-gain merges), the
  cluster's heavy path, against the single-process floor on the same
  chunked configuration (byte-identical answers — E17 measures pure
  scheduling cost);
* **routed throughput** — a stream of cheap distinct queries round-robined
  over shard pipes, the protocol-overhead measurement.

On an N-core host the distributed path approaches min(shards, N)× the
floor for sampling-bound queries; ``extra_info`` records ``cpu_count``
with every ratio so the ``BENCH_HISTORY.jsonl`` trajectory stays
interpretable on single-core runners (which can only show overhead, not
speedup).  Caches are cleared inside every timed round: E17 measures
compute paths, not the coordinator's LRU.
"""

import os
import time

import pytest

from repro.cluster import ClusterCoordinator
from repro.core.octopus import Octopus, OctopusConfig
from repro.service import (
    CompleteRequest,
    OctopusService,
    RadarRequest,
    TargetedInfluencersRequest,
)

_SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SHARD_COUNTS = [1, 2] if _SMOKE else [1, 2, 4]
TARGETED_NUM_SETS = 300 if _SMOKE else 1500

TARGETED_REQUEST = TargetedInfluencersRequest(
    keywords="data mining", k=5, num_sets=TARGETED_NUM_SETS
)

#: Distinct cheap requests: every slot has its own cache key, so the
#: routed-throughput stream really crosses a shard pipe per slot.
ROUTED_REQUESTS = [
    CompleteRequest(prefix=prefix, limit=5)
    for prefix in ("da", "cl", "fe", "sa", "ou", "de")
] + [RadarRequest("data mining"), RadarRequest("clustering")]


@pytest.fixture(scope="module")
def chunked_system(bench_dataset):
    """A bench-sized system on chunked sampling semantics (the semantics
    the distributed max-cover path reproduces byte-for-byte)."""
    config = OctopusConfig(
        num_sketches=30 if _SMOKE else 200,
        num_topic_samples=4 if _SMOKE else 16,
        topic_sample_rr_sets=200 if _SMOKE else 1500,
        oracle_samples=15 if _SMOKE else 60,
        execution_backend="threads",
        workers=1,
        seed=1002,
    )
    return Octopus.from_dataset(bench_dataset, config=config)


@pytest.fixture(params=SHARD_COUNTS, scope="module")
def cluster(request, chunked_system):
    """One coordinator per shard count (shards fork the shared system)."""
    coordinator = ClusterCoordinator(
        OctopusService(chunked_system), shards=request.param
    )
    yield coordinator
    coordinator.close()


@pytest.mark.benchmark(group="e17-cluster")
def test_single_process_targeted_floor(benchmark, chunked_system):
    """The floor the fan-out competes against: same config, no shards."""
    service = OctopusService(chunked_system)

    def run():
        service.cache.clear()
        return service.execute(TARGETED_REQUEST)

    response = benchmark.pedantic(run, rounds=3, iterations=1)
    assert response.ok
    benchmark.extra_info["num_sets"] = TARGETED_NUM_SETS
    benchmark.extra_info["cpu_count"] = os.cpu_count()


@pytest.mark.benchmark(group="e17-cluster")
def test_distributed_targeted_latency(benchmark, cluster, chunked_system):
    """The fan-out pipeline per shard count, with the floor ratio."""
    floor_service = OctopusService(chunked_system)
    floor_rounds = 2
    started = time.perf_counter()
    for _ in range(floor_rounds):
        floor_service.cache.clear()
        floor = floor_service.execute(TARGETED_REQUEST)
    floor_seconds = (time.perf_counter() - started) / floor_rounds
    assert floor.ok

    def run():
        cluster.cache.clear()
        return cluster.execute(TARGETED_REQUEST)

    response = benchmark.pedantic(run, rounds=3, iterations=1)
    assert response.ok
    benchmark.extra_info["shards"] = cluster.shards
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    benchmark.extra_info["floor_seconds"] = round(floor_seconds, 6)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["fanout_overhead_ratio"] = round(
            benchmark.stats.stats.mean / max(floor_seconds, 1e-9), 3
        )


@pytest.mark.benchmark(group="e17-cluster")
def test_routed_throughput(benchmark, cluster):
    """Queries/sec of a cheap distinct-request stream over shard pipes."""

    def run():
        cluster.cache.clear()
        return cluster.execute_batch(ROUTED_REQUESTS)

    responses = benchmark.pedantic(run, rounds=3, iterations=1)
    assert all(response.ok for response in responses)
    benchmark.extra_info["shards"] = cluster.shards
    benchmark.extra_info["queries"] = len(ROUTED_REQUESTS)
    benchmark.extra_info["cpu_count"] = os.cpu_count()
    if benchmark.stats is not None:
        benchmark.extra_info["queries_per_second"] = round(
            len(ROUTED_REQUESTS) / max(benchmark.stats.stats.mean, 1e-9), 1
        )

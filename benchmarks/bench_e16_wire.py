"""E16 — wire transport: over-the-wire vs in-process latency per request type.

The serving question PR 4 opens: what does the HTTP hop cost on top of the
dispatcher?  For each request type we measure the same request executed

* **in process** — ``OctopusService.execute`` (the floor), and
* **over the wire** — ``OctopusClient.execute`` against a threaded
  :class:`~repro.server.OctopusHTTPServer` on loopback, with a persistent
  (keep-alive) connection.

Both paths run **warm**: the very first execution populates the result
cache, so the pair isolates transport + envelope cost from index compute
(cold compute cost is E1/E4/E14's business).  ``extra_info`` records the
response payload size — wire overhead scales with serialized bytes — and
the in-process mean so the history keeps the per-type overhead ratio.

``BENCH_SMOKE=1`` shrinks the backend (see ``conftest.py``); the CI
bench-smoke job executes this module with ``--benchmark-disable`` so the
serving benchmark code cannot rot.
"""

import pytest

from repro.server import OctopusClient, serve_in_background
from repro.service import (
    CompleteRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    StatsRequest,
    SuggestKeywordsRequest,
)

#: One representative request per service family, cheapest to heaviest.
WIRE_REQUESTS = {
    "complete": CompleteRequest(prefix="da", limit=10),
    "radar": RadarRequest("data mining"),
    "stats": StatsRequest(),
    "suggest": SuggestKeywordsRequest(user=0, k=2),
    "influencers": FindInfluencersRequest("data mining", k=5),
}


@pytest.fixture(scope="module")
def wire_service(bench_system):
    """One warm dispatcher shared by both sides of every comparison."""
    service = OctopusService(bench_system)
    for request in WIRE_REQUESTS.values():
        response = service.execute(request)
        assert response.ok, response.error
    return service


@pytest.fixture(scope="module")
def wire_client(wire_service):
    """A keep-alive client against a loopback server over the dispatcher."""
    server = serve_in_background(wire_service, request_timeout=30.0)
    client = OctopusClient(server.url, timeout=30.0)
    yield client
    client.close()
    server.shutdown_gracefully()


@pytest.mark.benchmark(group="e16-wire")
@pytest.mark.parametrize("name", sorted(WIRE_REQUESTS))
def test_in_process_latency(benchmark, name, wire_service):
    """Floor: the warm dispatcher without any socket in the path."""
    request = WIRE_REQUESTS[name]
    response = benchmark(wire_service.execute, request)
    assert response.ok
    benchmark.extra_info["request_type"] = name
    benchmark.extra_info["payload_bytes"] = len(response.to_json())


@pytest.mark.benchmark(group="e16-wire")
@pytest.mark.parametrize("name", sorted(WIRE_REQUESTS))
def test_over_the_wire_latency(benchmark, name, wire_service, wire_client):
    """The same warm request through HTTP on a persistent connection."""
    import time

    request = WIRE_REQUESTS[name]
    # Average the in-process floor over a small loop: a single execute()
    # call jitters by an order of magnitude, which would dominate the
    # recorded overhead ratio.
    floor_rounds = 50
    started = time.perf_counter()
    for _ in range(floor_rounds):
        floor = wire_service.execute(request)
    in_process_seconds = (time.perf_counter() - started) / floor_rounds
    assert floor.ok

    response = benchmark(wire_client.execute, request)
    assert response.ok
    benchmark.extra_info["request_type"] = name
    benchmark.extra_info["payload_bytes"] = len(response.to_json())
    benchmark.extra_info["in_process_seconds"] = round(in_process_seconds, 6)
    if benchmark.stats is not None:  # absent under --benchmark-disable
        benchmark.extra_info["wire_overhead_ratio"] = round(
            benchmark.stats.stats.mean / max(in_process_seconds, 1e-9), 3
        )


@pytest.mark.benchmark(group="e16-wire")
def test_batch_amortizes_the_wire(benchmark, wire_service, wire_client):
    """One /batch POST vs N /query POSTs: the HTTP hop amortizes."""
    requests = [WIRE_REQUESTS[name] for name in sorted(WIRE_REQUESTS)] * 4

    responses = benchmark(wire_client.execute_batch, requests)
    assert all(response.ok for response in responses)
    benchmark.extra_info["batch_size"] = len(requests)

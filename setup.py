"""Build hook for the optional compiled RR kernel.

All static metadata lives in ``pyproject.toml``; this file exists solely to
declare ``repro.propagation._rrnative`` (the chunk-batched RR-sampling and
greedy cover-update C core) as an **optional** extension: a missing or
broken compiler downgrades the build to pure Python with a warning instead
of failing it.  The native kernel is always selectable either way — its
pure-NumPy fallback is draw-for-draw identical to the compiled core.

Two supported flows:

* ``pip install -e .`` — builds the extension if a compiler is present,
  installs fine without one;
* ``python setup.py build_ext --inplace`` — drops the ``.so`` next to
  ``src/repro/propagation/native.py`` so the tier-1
  ``PYTHONPATH=src`` flow (no install at all) picks it up too.
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """Never fail the whole build over the optional extension.

    ``Extension(optional=True)`` already swallows per-extension compile
    errors; this belt-and-braces subclass also swallows toolchain-level
    failures (no compiler at all), which some setuptools versions raise
    before the per-extension guard is reached.
    """

    def run(self):  # noqa: D102 — see class docstring
        try:
            super().run()
        except Exception as error:  # noqa: BLE001 — degrade, don't die
            self._warn(error)

    def build_extension(self, ext):  # noqa: D102 — see class docstring
        try:
            super().build_extension(ext)
        except Exception as error:  # noqa: BLE001 — degrade, don't die
            self._warn(error)

    @staticmethod
    def _warn(error):
        print(
            "WARNING: building repro.propagation._rrnative failed "
            f"({error}); the native RR kernel will run on its pure-Python "
            "fallback (identical results, compiled speed forgone)."
        )


setup(
    ext_modules=[
        Extension(
            "repro.propagation._rrnative",
            sources=["src/repro/propagation/_rrnative.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)

"""Heuristic seed selectors: the cheap baselines.

Scenario 1 contrasts influence maximization with "ranking users with their
individual influence" — these selectors implement exactly that strawman
(degree, PageRank) plus the degree-discount refinement and a random control.
Benchmark E7 measures how much spread they give up against greedy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.graph.analysis import pagerank
from repro.graph.digraph import SocialGraph
from repro.im.base import IMResult
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = [
    "degree_seeds",
    "degree_discount_seeds",
    "pagerank_seeds",
    "random_seeds",
]


def degree_seeds(graph: SocialGraph, k: int) -> IMResult:
    """The *k* nodes with the largest out-degree."""
    check_positive(k, "k")
    degrees = graph.out_degree()
    order = np.argsort(-degrees, kind="stable")[: min(k, graph.num_nodes)]
    seeds = [int(node) for node in order]
    return IMResult(seeds=seeds, spread=float("nan"), statistics={"method": 0.0})


def degree_discount_seeds(
    graph: SocialGraph,
    k: int,
    edge_probabilities: Optional[np.ndarray] = None,
) -> IMResult:
    """Degree-discount heuristic (Chen et al., KDD 2009), directed variant.

    Each selection discounts the remaining degree of the selected node's
    neighbours; the discount uses the mean activation probability when a
    probability vector is supplied (the classical formula assumes uniform p).
    """
    check_positive(k, "k")
    if edge_probabilities is not None and graph.num_edges > 0:
        probability = float(np.mean(edge_probabilities))
    else:
        probability = 0.1
    degrees = graph.out_degree().astype(np.float64)
    discounted = degrees.copy()
    selected_mask = np.zeros(graph.num_nodes, dtype=bool)
    neighbor_seeds = np.zeros(graph.num_nodes, dtype=np.float64)
    seeds: List[int] = []
    for _ in range(min(k, graph.num_nodes)):
        masked = np.where(selected_mask, -np.inf, discounted)
        node = int(np.argmax(masked))
        if masked[node] == -np.inf:
            break
        seeds.append(node)
        selected_mask[node] = True
        for neighbor in graph.out_neighbors(node):
            neighbor = int(neighbor)
            if selected_mask[neighbor]:
                continue
            neighbor_seeds[neighbor] += 1.0
            t = neighbor_seeds[neighbor]
            discounted[neighbor] = (
                degrees[neighbor]
                - 2.0 * t
                - (degrees[neighbor] - t) * t * probability
            )
    return IMResult(seeds=seeds, spread=float("nan"), statistics={"method": 1.0})


def pagerank_seeds(
    graph: SocialGraph, k: int, damping: float = 0.85, *, reverse: bool = True
) -> IMResult:
    """Top-*k* nodes by PageRank.

    With *reverse* (default) the scores are computed on the reversed graph,
    so mass flows toward *influencers* rather than toward popular sinks —
    the appropriate direction for influence analysis.
    """
    check_positive(k, "k")
    target = graph.reversed() if reverse else graph
    scores = pagerank(target, damping=damping)
    order = np.argsort(-scores, kind="stable")[: min(k, graph.num_nodes)]
    seeds = [int(node) for node in order]
    return IMResult(seeds=seeds, spread=float("nan"), statistics={"method": 2.0})


def random_seeds(graph: SocialGraph, k: int, seed: SeedLike = None) -> IMResult:
    """Uniformly random distinct seeds (the control baseline)."""
    check_positive(k, "k")
    rng = as_generator(seed)
    count = min(k, graph.num_nodes)
    chosen = rng.choice(graph.num_nodes, size=count, replace=False)
    return IMResult(
        seeds=[int(node) for node in chosen],
        spread=float("nan"),
        statistics={"method": 3.0},
    )

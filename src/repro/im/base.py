"""Common result type for influence-maximization algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["IMResult"]


@dataclass
class IMResult:
    """Outcome of a seed-selection run.

    Attributes
    ----------
    seeds:
        Selected seed nodes in selection order.
    spread:
        Estimated expected spread of the full seed set.
    marginal_gains:
        Estimated marginal gain recorded when each seed was selected
        (aligned with *seeds*).
    evaluations:
        Number of spread-oracle calls — the work measure benchmark E2 uses
        to compare pruning strategies.
    statistics:
        Free-form algorithm-specific counters (e.g. RR sets used, nodes
        pruned by bounds).
    """

    seeds: List[int]
    spread: float
    marginal_gains: List[float] = field(default_factory=list)
    evaluations: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in result: {self.seeds}")

    @property
    def k(self) -> int:
        """Number of selected seeds."""
        return len(self.seeds)

    def __repr__(self) -> str:
        return (
            f"IMResult(k={self.k}, spread={self.spread:.2f}, "
            f"evaluations={self.evaluations})"
        )

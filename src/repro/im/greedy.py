"""Lazy (CELF) greedy influence maximization.

The classical ``(1 − 1/e)`` greedy of Kempe et al., accelerated by the CELF
observation: marginal gains are non-increasing across rounds (submodularity),
so a stale cached gain is an upper bound and the queue's best fresh entry can
be accepted without re-evaluating the rest.  This is the "traditional IM
algorithm" whose per-query cost motivates OCTOPUS's online techniques
(Section I) — benchmark E1 runs it as the naive baseline.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.im.base import IMResult
from repro.propagation.estimators import MonteCarloSpreadEstimator, SpreadEstimator
from repro.utils.heap import LazyGreedyQueue
from repro.utils.rng import SeedLike
from repro.utils.validation import ValidationError, check_positive

__all__ = ["greedy_im"]


def greedy_im(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    k: int,
    *,
    estimator: Optional[SpreadEstimator] = None,
    num_samples: int = 200,
    candidates: Optional[Iterable[int]] = None,
    lazy: bool = True,
    seed: SeedLike = None,
) -> IMResult:
    """Select *k* seeds by (lazy) greedy marginal-gain maximization.

    Parameters
    ----------
    estimator:
        Spread oracle; defaults to Monte-Carlo estimation with
        *num_samples* cascades per evaluation.
    candidates:
        Restrict selection to these nodes (defaults to all nodes).  The
        best-effort framework passes pruned candidate pools here.
    lazy:
        Disable to run plain greedy (every candidate re-evaluated every
        round) — used by tests to validate CELF equivalence.
    """
    check_positive(k, "k")
    if estimator is None:
        estimator = MonteCarloSpreadEstimator(
            graph, edge_probabilities, num_samples=num_samples, seed=seed
        )
    if candidates is None:
        pool = list(range(graph.num_nodes))
    else:
        pool = sorted(set(int(node) for node in candidates))
        for node in pool:
            if not 0 <= node < graph.num_nodes:
                raise ValidationError(f"candidate {node} out of range")
    if not pool:
        raise ValidationError("candidate pool is empty")

    evaluations = 0
    seeds: list = []
    gains: list = []
    current_spread = 0.0

    if lazy:
        queue: LazyGreedyQueue = LazyGreedyQueue()
        for node in pool:
            gain = estimator.spread([node])
            evaluations += 1
            queue.push(node, gain)
        queue.mark_all_stale()  # singleton spreads are bounds for round 2+
        while len(seeds) < k and len(queue) > 0:
            node, gain, fresh = queue.pop_best()
            if fresh or not seeds:
                # Round 1: singleton spread equals the marginal gain on the
                # empty set, so the stale entry is already exact.
                seeds.append(node)
                gains.append(gain)
                current_spread += gain
                queue.mark_all_stale()
            else:
                refreshed = estimator.spread(seeds + [node]) - current_spread
                evaluations += 1
                queue.push(node, max(refreshed, 0.0))
    else:
        remaining = set(pool)
        while len(seeds) < k and remaining:
            best_node, best_gain = -1, -np.inf
            for node in sorted(remaining):
                gain = estimator.spread(seeds + [node]) - current_spread
                evaluations += 1
                if gain > best_gain:
                    best_node, best_gain = node, gain
            seeds.append(best_node)
            gains.append(best_gain)
            current_spread += best_gain
            remaining.discard(best_node)

    final_spread = estimator.spread(seeds)
    evaluations += 1
    return IMResult(
        seeds=seeds,
        spread=final_spread,
        marginal_gains=gains,
        evaluations=evaluations,
        statistics={"lazy": float(lazy)},
    )

"""Maximum-influence-arborescence (MIA) model — reference [4].

MIA restricts influence to the highest-probability path between each node
pair and ignores paths below a threshold θ, turning spread computation into
tree dynamic programming.  OCTOPUS uses MIA twice: as a fast deterministic
spread oracle inside the best-effort keyword IM, and as the structure behind
influential-path visualisation (Section II-E, :mod:`repro.core.paths`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.graph.traversal import max_probability_paths
from repro.im.base import IMResult
from repro.utils.heap import LazyGreedyQueue
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_node_id,
    check_positive,
)

__all__ = ["MIAModel", "mia_im"]


class MIAModel:
    """All maximum-influence in-arborescences for one edge-probability vector.

    For every node ``v`` the model stores MIIA(v, θ): the tree of best
    influence paths into ``v`` with path probability ≥ θ.  The expected
    spread of a seed set ``S`` is approximated by ``Σ_v ap(v | S)`` where the
    activation probability ``ap`` is computed bottom-up on each tree.
    """

    def __init__(
        self,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        threshold: float = 0.01,
    ) -> None:
        probabilities = np.asarray(edge_probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise ValidationError(
                f"edge_probabilities must have shape ({graph.num_edges},), "
                f"got {probabilities.shape}"
            )
        check_in_range(threshold, 0.0, 1.0, "threshold")
        self.graph = graph
        self.edge_probabilities = probabilities
        self.threshold = threshold
        # Per root v: dict node -> next hop toward v, the leaves-first member
        # order, and each tree node's children (one hop further from v).
        self._arborescences: Dict[int, Dict[int, int]] = {}
        self._members_of: Dict[int, List[int]] = {}
        self._children_of: Dict[int, Dict[int, List[int]]] = {}
        self._build()

    def _build(self) -> None:
        graph = self.graph
        for root in range(graph.num_nodes):
            _probs, parents = max_probability_paths(
                graph,
                root,
                self.edge_probabilities,
                threshold=self.threshold,
                reverse=True,
            )
            self._arborescences[root] = parents
            self._members_of[root] = self._topological_order(parents, root)
            children: Dict[int, List[int]] = {}
            for node, parent in parents.items():
                if node != root:
                    children.setdefault(parent, []).append(node)
            self._children_of[root] = children

    @staticmethod
    def _topological_order(parents: Dict[int, int], root: int) -> List[int]:
        """Members of the arborescence ordered leaves-first (root last)."""
        children: Dict[int, List[int]] = {}
        for node, parent in parents.items():
            if node == root:
                continue
            children.setdefault(parent, []).append(node)
        order: List[int] = []
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            stack.append((node, True))
            for child in children.get(node, []):
                stack.append((child, False))
        return order

    def arborescence(self, root: int) -> Dict[int, int]:
        """MIIA(root): mapping node → next hop toward *root*."""
        check_node_id(root, self.graph.num_nodes, "root")
        return dict(self._arborescences[root])

    def activation_probability(self, root: int, seeds: Set[int]) -> float:
        """``ap(root | seeds)`` under the MIA approximation.

        Tree DP: a non-seed node is activated iff at least one tree child
        activates and its edge fires; children are independent in the tree.
        """
        check_node_id(root, self.graph.num_nodes, "root")
        if root in seeds:
            return 1.0
        children = self._children_of[root]
        ap: Dict[int, float] = {}
        for node in self._members_of[root]:
            if node in seeds:
                ap[node] = 1.0
                continue
            node_children = children.get(node)
            if not node_children:
                ap[node] = 0.0
                continue
            failure = 1.0
            for child in node_children:
                edge_probability = self._tree_edge_probability(child, node)
                failure *= 1.0 - ap.get(child, 0.0) * edge_probability
            ap[node] = 1.0 - failure
        return ap.get(root, 0.0)

    def _tree_edge_probability(self, source: int, target: int) -> float:
        edge_id = self.graph.edge_id(source, target)
        return float(self.edge_probabilities[edge_id])

    def spread(self, seeds: Sequence[int]) -> float:
        """MIA spread approximation ``Σ_v ap(v | seeds)``."""
        seed_set = set(int(s) for s in seeds)
        for node in seed_set:
            check_node_id(node, self.graph.num_nodes, "seed")
        total = 0.0
        for root in range(self.graph.num_nodes):
            total += self.activation_probability(root, seed_set)
        return total


class _CachedMIASpread:
    """Adapter exposing :class:`MIAModel` as a SpreadEstimator with caching."""

    def __init__(self, model: MIAModel) -> None:
        self._model = model
        self._cache: Dict[frozenset, float] = {}

    def spread(self, seeds: Sequence[int]) -> float:
        key = frozenset(int(s) for s in seeds)
        if key not in self._cache:
            self._cache[key] = self._model.spread(key)
        return self._cache[key]


def mia_im(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    k: int,
    *,
    threshold: float = 0.01,
    model: Optional[MIAModel] = None,
    candidates: Optional[Sequence[int]] = None,
) -> IMResult:
    """MIA-based influence maximization: CELF greedy over the MIA spread.

    Deterministic (no sampling).  The MIA spread is submodular in the seed
    set [4], so lazy evaluation is sound.
    """
    check_positive(k, "k")
    if model is None:
        model = MIAModel(graph, edge_probabilities, threshold)
    estimator = _CachedMIASpread(model)
    pool = (
        list(range(graph.num_nodes))
        if candidates is None
        else sorted(set(int(c) for c in candidates))
    )
    if not pool:
        raise ValidationError("candidate pool is empty")
    queue: LazyGreedyQueue = LazyGreedyQueue()
    evaluations = 0
    for node in pool:
        queue.push(node, estimator.spread([node]))
        evaluations += 1
    queue.mark_all_stale()
    seeds: List[int] = []
    gains: List[float] = []
    current = 0.0
    while len(seeds) < k and len(queue) > 0:
        node, gain, fresh = queue.pop_best()
        if fresh or not seeds:
            seeds.append(node)
            gains.append(gain)
            current += gain
            queue.mark_all_stale()
        else:
            refreshed = estimator.spread(seeds + [node]) - current
            evaluations += 1
            queue.push(node, max(refreshed, 0.0))
    spread = estimator.spread(seeds) if seeds else 0.0
    return IMResult(
        seeds=seeds,
        spread=spread,
        marginal_gains=gains,
        evaluations=evaluations,
        statistics={"threshold": threshold},
    )

"""Reverse-influence-sampling IM (the TIM/IMM family, reference [8]).

Samples reverse-reachable sets and selects seeds by greedy maximum coverage.
With ``θ = O((k ln n + ln 1/δ) n / (ε² · OPT))`` sets the result is a
``(1 − 1/e − ε)`` approximation with probability ``1 − δ``; the helper
:func:`recommended_num_sets` applies the conservative ``OPT ≥ k`` bound so
callers get a principled default without the full IMM estimation phase.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.im.base import IMResult
from repro.propagation.kernels import DEFAULT_RR_KERNEL
from repro.propagation.rrsets import RRSetCollection
from repro.utils.rng import SeedLike
from repro.utils.validation import check_in_range, check_positive

__all__ = ["ris_im", "recommended_num_sets"]


def recommended_num_sets(
    num_nodes: int,
    k: int,
    epsilon: float = 0.3,
    delta: Optional[float] = None,
    max_sets: int = 200_000,
) -> int:
    """Number of RR sets for an ``(1 − 1/e − ε)`` guarantee (conservative).

    Uses ``θ = (8 + 2ε)(k ln n + ln(2/δ)) / (ε² · OPT)`` scaled by ``n`` with
    ``OPT ≥ k``, capped at *max_sets* to stay laptop-friendly (the repro
    calibration note: billion-edge sampling needs C extensions).
    """
    check_positive(num_nodes, "num_nodes")
    check_positive(k, "k")
    check_in_range(epsilon, 0.0, 1.0, "epsilon", inclusive=False)
    if delta is None:
        delta = 1.0 / num_nodes
    check_in_range(delta, 0.0, 1.0, "delta", inclusive=False)
    numerator = (8 + 2 * epsilon) * (
        k * math.log(max(num_nodes, 2)) + math.log(2.0 / delta)
    )
    theta = numerator * num_nodes / (epsilon**2 * max(k, 1))
    return int(min(max(theta, 1.0), max_sets))


def ris_im(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    k: int,
    *,
    num_sets: Optional[int] = None,
    epsilon: float = 0.3,
    seed: SeedLike = None,
    collection: Optional[RRSetCollection] = None,
    kernel: str = DEFAULT_RR_KERNEL,
) -> IMResult:
    """Select *k* seeds via RR-set maximum coverage.

    Passing an existing *collection* skips sampling — the topic-sample index
    reuses collections across offline precomputation this way.  *kernel*
    selects the RR sampling core (vectorized / legacy).
    """
    check_positive(k, "k")
    if collection is None:
        if num_sets is None:
            num_sets = recommended_num_sets(graph.num_nodes, k, epsilon)
        collection = RRSetCollection.sample(
            graph, edge_probabilities, num_sets, seed, kernel=kernel
        )
    seeds, spread = collection.greedy_max_cover(k)
    return IMResult(
        seeds=seeds,
        spread=spread,
        marginal_gains=[],
        evaluations=len(collection),
        statistics={"num_rr_sets": float(len(collection))},
    )

"""Influence-maximization algorithms (the baselines OCTOPUS builds on).

* :func:`greedy_im` — lazy (CELF) greedy with a pluggable spread estimator.
* :func:`ris_im` — reverse-reachable-set IM in the TIM/IMM family [8].
* :mod:`repro.im.mia` — the maximum-influence-arborescence model [4].
* :mod:`repro.im.heuristics` — degree / degree-discount / PageRank / random.

All return an :class:`~repro.im.base.IMResult`.
"""

from repro.im.base import IMResult
from repro.im.greedy import greedy_im
from repro.im.heuristics import (
    degree_discount_seeds,
    degree_seeds,
    pagerank_seeds,
    random_seeds,
)
from repro.im.mia import MIAModel, mia_im
from repro.im.ris import recommended_num_sets, ris_im

__all__ = [
    "IMResult",
    "greedy_im",
    "ris_im",
    "recommended_num_sets",
    "MIAModel",
    "mia_im",
    "degree_seeds",
    "degree_discount_seeds",
    "pagerank_seeds",
    "random_seeds",
]

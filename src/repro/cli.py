"""Command-line interface to the OCTOPUS system.

The demo paper fronts OCTOPUS with a web UI; this CLI exposes the same
services to a terminal (and doubles as the reference client for the
library).  A dataset directory (created by ``octopus generate`` or
:func:`repro.datasets.loaders.save_dataset`) plays the role of the deployed
network.  Every command is served through the typed
:class:`~repro.service.OctopusService` layer — the CLI renders
:class:`~repro.service.ServiceResponse` payloads, it never calls the
algorithms directly.

Commands::

    octopus generate  --kind citation --out DIR [--size N] [--seed S]
    octopus influencers DIR "data mining" [-k 10]
    octopus suggest     DIR "Ada Abadi"   [-k 3]
    octopus paths       DIR "Ada Abadi"   [--keywords "data mining"]
                        [--threshold 0.01] [--reverse] [--json FILE]
    octopus radar       DIR "em algorithm"
    octopus complete    DIR --users PREFIX | --keywords PREFIX
    octopus stats       DIR
    octopus query       DIR REQUEST_JSON [--batch] [--pretty]
    octopus query       --url http://HOST:PORT REQUEST_JSON [--batch]
    octopus serve       DIR [--host H] [--port P] [--auth-token TOKEN]
                        [--executor {serial,threads,processes,cluster}]
                        [--shards N] [--frontend {threaded,asyncio}]
                        [--queue-depth N] [--gateway-workers N]
                        [--heavy-slots N] [--tenant-rate RPS]
                        [--tls-cert PEM --tls-key PEM]
                        [--log-level {debug,info,warning}] [--log-json]
                        [--no-trace] [--slow-query-ms MS]

``query`` is the wire-level entry point: it takes a JSON request (or a JSON
array with ``--batch``), ``@file`` to read from a file, or ``-`` for stdin,
and prints the JSON response envelope(s).  With ``--url`` the request is
routed to a remote ``octopus serve`` instance instead of building the
indexes locally — same input, same output bytes (the determinism contract
extends across the socket).

``serve`` boots the HTTP wire transport over a dataset: ``POST /query``,
``POST /batch``, ``GET /stats`` and ``GET /healthz`` speak the JSON
envelopes, and ``GET /metrics`` exposes Prometheus text for scraping.
``--log-level`` turns on library console logging (``--log-json`` for one
JSON object per line, request ids included); ``--no-trace`` disables
request tracing and ``--slow-query-ms`` tunes the slow-query log
threshold.  ``--executor threads|processes`` serves requests from a
:class:`~repro.service.ConcurrentOctopusService` worker pool (``--workers``
sizes it); ``--executor cluster`` serves from ``--shards`` long-lived shard
processes behind a :class:`~repro.cluster.ClusterCoordinator` — answers
are byte-identical at any shard count.  ``--auth-token`` requires
``Authorization: Bearer`` on every endpoint except ``/healthz`` (pass the
same token to ``query --url --auth-token``).  Ctrl-C shuts down gracefully
— in-flight requests drain into a final metrics report.

``serve --frontend asyncio`` swaps the threaded front end for the
:mod:`repro.gateway` event-loop server — same wire bytes, plus admission
control (``--queue-depth``, shed requests get 429 + ``Retry-After``),
priority lanes (``--gateway-workers``, ``--heavy-slots``), per-tenant
token buckets (``--tenant-rate``, ``--tenant-burst``) and slow-client
timeouts (``--read-timeout``, ``--write-timeout``).  ``--tls-cert`` +
``--tls-key`` serve HTTPS on either front end; ``query --url https://…``
verifies against the system trust store, a ``--ca-cert`` bundle, or not
at all with ``--insecure``, and ``query --retries N`` backs off on 429
per the server's ``Retry-After`` hint.

Every system command also accepts ``--backend {serial,threads,processes}``
and ``--workers N``: index builds and RR-set sampling run on the chosen
execution backend.  ``threads`` and ``processes`` are deterministic and
interchangeable — the same seed gives the same answers on either, at any
worker count — while ``serial`` (the default) bypasses the backend layer
and keeps the single-stream draw order.  ``query --batch`` with
``--workers > 1`` serves the batch through the concurrent executor.
``--rr-kernel {vectorized,legacy,native}`` picks the RR sampling core:
results are deterministic per kernel, and only ``legacy`` with ``--backend
serial`` reproduces historical (pre-kernel) releases bit for bit.
``native`` runs the chunk-batched compiled extension when it is built
(``python setup.py build_ext --inplace`` or a ``pip install`` with a
compiler) and a draw-for-draw identical pure-Python fallback otherwise —
``octopus stats`` reports which via ``execution.native_kernel``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.loaders import load_dataset, save_dataset
from repro.datasets.social import SocialNetworkGenerator
from repro.service import (
    CompleteRequest,
    ExplorePathsRequest,
    FindInfluencersRequest,
    OctopusService,
    RadarRequest,
    ServiceResponse,
    StatsRequest,
    SuggestKeywordsRequest,
    request_from_json,
)
from repro.utils.validation import ValidationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="octopus",
        description="Online topic-aware influence analysis (ICDE'18 repro).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset directory"
    )
    generate.add_argument(
        "--kind", choices=("citation", "social"), default="citation"
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--size", type=int, default=500, help="user count")
    generate.add_argument("--seed", type=int, default=7)

    def add_system_command(
        name: str, help_text: str, *, dataset_optional: bool = False
    ) -> argparse.ArgumentParser:
        sub = commands.add_parser(name, help=help_text)
        if dataset_optional:
            sub.add_argument(
                "dataset",
                nargs="?",
                default=None,
                help="dataset directory (omit when using --url)",
            )
        else:
            sub.add_argument("dataset", help="dataset directory")
        sub.add_argument("--seed", type=int, default=0, help="engine seed")
        sub.add_argument(
            "--fast",
            action="store_true",
            help="small index budgets (quicker startup, noisier answers)",
        )
        sub.add_argument(
            "--backend",
            choices=("serial", "threads", "processes"),
            default="serial",
            help="execution backend for index builds and RR sampling; "
            "threads and processes give identical answers to each other "
            "for a fixed seed at any --workers, while serial (default) "
            "preserves the historical single-stream results",
        )
        sub.add_argument(
            "--workers",
            type=int,
            default=None,
            help="worker count for pooled backends (default: CPU count)",
        )
        sub.add_argument(
            "--rr-kernel",
            choices=("vectorized", "legacy", "native"),
            default="vectorized",
            help="RR sampling kernel: the frontier-batched vectorized core "
            "(default), the historical node-at-a-time legacy core, or the "
            "chunk-batched native core (compiled extension when built, "
            "identical pure-Python fallback otherwise); each is "
            "deterministic for a fixed seed, but they draw in different "
            "orders and give different (equally distributed) samples",
        )
        return sub

    influencers = add_system_command(
        "influencers", "keyword-based influential user discovery"
    )
    influencers.add_argument("keywords", help="comma-separated keywords")
    influencers.add_argument("-k", type=int, default=10)

    suggest = add_system_command(
        "suggest", "personalized influential keyword suggestion"
    )
    suggest.add_argument("user", help="user name or id")
    suggest.add_argument("-k", type=int, default=3)
    suggest.add_argument(
        "--exact", action="store_true", help="exhaustive search (slow)"
    )

    paths = add_system_command("paths", "influential path exploration")
    paths.add_argument("user", help="user name or id")
    paths.add_argument("--keywords", default=None)
    paths.add_argument("--threshold", type=float, default=0.01)
    paths.add_argument(
        "--reverse", action="store_true", help="explore who influences the user"
    )
    paths.add_argument("--json", default=None, help="write d3 payload here")

    radar = add_system_command("radar", "topic interpretation of keywords")
    radar.add_argument("keywords", help="comma-separated keywords")

    complete = add_system_command("complete", "auto-completion")
    group = complete.add_mutually_exclusive_group(required=True)
    group.add_argument("--users", metavar="PREFIX")
    group.add_argument("--keywords", metavar="PREFIX")
    complete.add_argument("--limit", type=int, default=10)

    add_system_command("stats", "system and index statistics")

    query = add_system_command(
        "query",
        "execute a JSON service request (the wire-level API)",
        dataset_optional=True,
    )
    query.add_argument(
        "request",
        help="JSON request object, '@path' to read a file, or '-' for stdin",
    )
    query.add_argument(
        "--batch",
        action="store_true",
        help="treat the input as a JSON array and execute it as a batch",
    )
    query.add_argument(
        "--pretty", action="store_true", help="indent the JSON response"
    )
    query.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="send the request to a remote 'octopus serve' instance instead "
        "of building the dataset's indexes locally",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="HTTP timeout in seconds for --url requests",
    )
    query.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="bearer token for --url requests against a server started "
        "with --auth-token",
    )
    query.add_argument(
        "--ca-cert",
        default=None,
        metavar="PEM",
        help="CA bundle to verify an https:// --url server against "
        "(for self-signed deployments)",
    )
    query.add_argument(
        "--insecure",
        action="store_true",
        help="skip TLS certificate verification for https:// --url "
        "requests (encrypted but unauthenticated)",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry 429 responses up to N times, sleeping the server's "
        "Retry-After hint between attempts (default 0: report the "
        "rate-limit envelope immediately)",
    )

    snapshot = add_system_command(
        "snapshot",
        "write a warm-start snapshot of the built system (OCTOSNAP)",
    )
    snapshot.add_argument(
        "--out",
        required=True,
        metavar="PATH",
        help="snapshot file to write (atomic: temp file + rename)",
    )

    serve = add_system_command(
        "serve",
        "serve the JSON envelopes over HTTP (the wire transport)",
        dataset_optional=True,
    )
    serve.add_argument(
        "--snapshot",
        default=None,
        metavar="PATH",
        help="boot from an OCTOSNAP snapshot instead of building from the "
        "dataset (instant warm start; the snapshot's embedded config — "
        "including the seed — wins over --seed/--fast/--backend flags); "
        "with --executor cluster the snapshot also enables dead-shard "
        "respawn",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 binds an ephemeral port; default 8642)",
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "threads", "processes", "cluster"),
        default="serial",
        help="request executor: 'serial' computes on the connection's "
        "handler thread; 'threads'/'processes' serve through a concurrent "
        "worker pool with in-flight de-duplication (--workers sizes the "
        "pool as well as the compute backend); 'cluster' serves through "
        "long-lived shard processes (--shards sizes the cluster) with "
        "deterministic fan-out — shard count never changes answer bytes",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=2,
        help="shard-process count for --executor cluster (default 2)",
    )
    serve.add_argument(
        "--auth-token",
        default=None,
        metavar="TOKEN",
        help="require 'Authorization: Bearer TOKEN' on every endpoint "
        "except /healthz (shared-secret auth for non-loopback serving)",
    )
    serve.add_argument(
        "--frontend",
        choices=("threaded", "asyncio"),
        default="threaded",
        help="HTTP front end: 'threaded' spends one OS thread per "
        "connection (simple, fine on loopback); 'asyncio' multiplexes "
        "all connections on one event loop with admission control, "
        "priority lanes and per-tenant rate limits (the production "
        "front door)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="asyncio front end: per-lane admission queue bound; "
        "requests beyond it are shed with 429 + Retry-After "
        "(default 64)",
    )
    serve.add_argument(
        "--gateway-workers",
        type=int,
        default=4,
        help="asyncio front end: concurrent dispatch/compute slots "
        "(default 4)",
    )
    serve.add_argument(
        "--heavy-slots",
        type=int,
        default=None,
        help="asyncio front end: cap on concurrently executing heavy "
        "queries (influence maximization, large batches); default all "
        "but one worker so cheap traffic always has a slot",
    )
    serve.add_argument(
        "--tenant-rate",
        type=float,
        default=None,
        metavar="RPS",
        help="asyncio front end: per-tenant sustained requests/second "
        "(token bucket keyed by bearer token; default off)",
    )
    serve.add_argument(
        "--tenant-burst",
        type=int,
        default=None,
        help="asyncio front end: per-tenant burst size "
        "(default max(1, int(RPS)))",
    )
    serve.add_argument(
        "--read-timeout",
        type=float,
        default=10.0,
        help="asyncio front end: seconds a client may take per socket "
        "read before being disconnected (default 10)",
    )
    serve.add_argument(
        "--write-timeout",
        type=float,
        default=10.0,
        help="asyncio front end: seconds a client may take to accept a "
        "response before being disconnected (default 10)",
    )
    serve.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help="serve HTTPS using this certificate chain "
        "(requires --tls-key)",
    )
    serve.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--log-level",
        choices=("debug", "info", "warning"),
        default=None,
        help="enable library console logging on stderr at this level "
        "(default: no library logging; slow-query lines need at least "
        "'warning')",
    )
    serve.add_argument(
        "--log-json",
        action="store_true",
        help="emit log lines as one JSON object per line (implies "
        "--log-level info unless --log-level is given); each object "
        "carries the request id when the line was logged under a trace",
    )
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="disable request tracing (request ids, stage timings, "
        "slow-query log); serving bytes are identical either way",
    )
    serve.add_argument(
        "--slow-query-ms",
        type=float,
        default=None,
        metavar="MS",
        help="threshold for the structured slow-query log line "
        "(default REPRO_SLOW_QUERY_MS or 1000)",
    )
    return parser


def _load_service(arguments: argparse.Namespace) -> OctopusService:
    """Build the system and wrap it in the service layer."""
    dataset = load_dataset(arguments.dataset)
    backend = getattr(arguments, "backend", "serial")
    workers = getattr(arguments, "workers", None)
    rr_kernel = getattr(arguments, "rr_kernel", "vectorized")
    if arguments.fast:
        config = OctopusConfig(
            num_sketches=60,
            num_topic_samples=6,
            topic_sample_rr_sets=400,
            oracle_samples=30,
            execution_backend=backend,
            workers=workers,
            rr_kernel=rr_kernel,
            seed=arguments.seed,
        )
    else:
        config = OctopusConfig(
            execution_backend=backend,
            workers=workers,
            rr_kernel=rr_kernel,
            seed=arguments.seed,
        )
    return OctopusService(Octopus.from_dataset(dataset, config=config))


def _user_argument(text: str):
    """CLI user arguments are ids when numeric, names otherwise."""
    stripped = text.strip()
    if stripped.lstrip("-").isdigit():
        return int(stripped)
    return text


def _render_error(response: ServiceResponse) -> int:
    """Print a service error envelope the way the CLI reports errors."""
    assert response.error is not None
    print(f"error: {response.error.message}", file=sys.stderr)
    return 2


def _command_generate(arguments: argparse.Namespace) -> int:
    if arguments.kind == "citation":
        dataset = CitationNetworkGenerator(
            num_researchers=arguments.size, seed=arguments.seed
        ).generate()
    else:
        dataset = SocialNetworkGenerator(
            num_users=arguments.size, seed=arguments.seed
        ).generate()
    save_dataset(dataset, arguments.out)
    summary = dataset.summary()
    print(f"wrote {dataset.name} to {arguments.out}")
    for key in ("num_users", "num_edges", "num_items", "vocabulary_size"):
        print(f"  {key:<18s} {summary[key]:,.0f}")
    return 0


def _command_influencers(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    response = service.execute(
        FindInfluencersRequest(keywords=arguments.keywords, k=arguments.k)
    )
    if not response.ok:
        return _render_error(response)
    payload = response.payload
    print(f"keywords : {', '.join(payload['keywords'])}")
    print(f"spread   : {payload['spread']:.1f}")
    print(f"latency  : {response.latency_ms:.1f} ms")
    ranked = list(zip(payload["seeds"], payload["labels"]))
    for rank, (node, label) in enumerate(ranked[: arguments.k], start=1):
        print(f"{rank:3d}. {label}  (user {node})")
    return 0


def _command_suggest(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    method = "exact" if arguments.exact else "greedy"
    response = service.execute(
        SuggestKeywordsRequest(
            user=_user_argument(arguments.user), k=arguments.k, method=method
        )
    )
    if not response.ok:
        return _render_error(response)
    payload = response.payload
    print(f"user     : {payload['target_label']} (user {payload['target']})")
    print(f"keywords : {', '.join(payload['keywords'])}")
    print(f"spread   : {payload['spread']:.1f}")
    from repro.viz.text import render_radar

    radar = service.execute(RadarRequest(payload["keywords"]))
    if not radar.ok:
        return _render_error(radar)
    print(render_radar(radar.payload))
    return 0


def _command_paths(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    direction = "influenced_by" if arguments.reverse else "influences"
    response = service.execute(
        ExplorePathsRequest(
            user=_user_argument(arguments.user),
            keywords=arguments.keywords,
            threshold=arguments.threshold,
            direction=direction,
        )
    )
    if not response.ok:
        return _render_error(response)
    from repro.core.paths import PathTree
    from repro.viz.text import render_path_tree

    tree = PathTree.from_dict(response.payload)
    print(render_path_tree(tree))
    if arguments.json:
        from repro.viz.d3 import path_tree_to_d3_force

        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(path_tree_to_d3_force(tree), handle, indent=1)
        print(f"d3 payload written to {arguments.json}")
    return 0


def _command_radar(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    response = service.execute(RadarRequest(keywords=arguments.keywords))
    if not response.ok:
        return _render_error(response)
    from repro.viz.text import render_radar

    print(render_radar(response.payload))
    return 0


def _command_complete(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    if arguments.users is not None:
        request = CompleteRequest(
            prefix=arguments.users, kind="users", limit=arguments.limit
        )
    else:
        request = CompleteRequest(
            prefix=arguments.keywords, kind="keywords", limit=arguments.limit
        )
    response = service.execute(request)
    if not response.ok:
        return _render_error(response)
    for key, payload in response.payload["completions"]:
        print(f"{key}\t{payload}")
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    service = _load_service(arguments)
    response = service.execute(StatsRequest())
    if not response.ok:
        return _render_error(response)
    for key, value in sorted(response.payload.items()):
        print(_render_stat(key, value))
    return 0


def _render_stat(key: str, value) -> str:
    """One aligned stats line (floats as numbers, identity keys as text)."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return f"{key:<45s} {value:.4f}"
    return f"{key:<45s} {value}"


def _server_ssl_context(arguments: argparse.Namespace):
    """The server-side ``SSLContext`` for ``--tls-cert``/``--tls-key``
    (``None`` for plain HTTP); both flags must come together."""
    import ssl

    cert = getattr(arguments, "tls_cert", None)
    key = getattr(arguments, "tls_key", None)
    if cert is None and key is None:
        return None
    if cert is None or key is None:
        raise ValidationError("--tls-cert and --tls-key must be given together")
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    try:
        context.load_cert_chain(cert, key)
    except (OSError, ssl.SSLError) as error:
        raise ValidationError(f"cannot load TLS material: {error}") from error
    return context


def _command_snapshot(arguments: argparse.Namespace) -> int:
    from repro.snapshot import save_snapshot

    service = _load_service(arguments)
    try:
        header = save_snapshot(
            service.backend, arguments.out, source=arguments.dataset
        )
    except Exception as error:  # noqa: BLE001 — CLI error contract
        print(f"error: {error}", file=sys.stderr)
        return 2
    size = os.path.getsize(arguments.out)
    print(f"wrote snapshot to {arguments.out} ({size:,d} bytes)")
    print(f"  format version   {header['version']}")
    print(f"  nodes / edges    {header['num_nodes']:,d} / "
          f"{header['num_edges']:,d}")
    print(f"  topics           {len(header['topic_names'])}")
    print("boot it with: octopus serve --snapshot " + arguments.out)
    return 0


def _snapshot_service(arguments: argparse.Namespace) -> OctopusService:
    """Warm-boot the service layer from an OCTOSNAP file."""
    from repro.snapshot import load_snapshot

    return OctopusService(load_snapshot(arguments.snapshot))


def _command_serve(arguments: argparse.Namespace) -> int:
    try:
        ssl_context = _server_ssl_context(arguments)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if arguments.log_level is not None or arguments.log_json:
        from repro.utils.logging import enable_console_logging

        enable_console_logging(
            arguments.log_level or "info", json_lines=arguments.log_json
        )
    if arguments.snapshot is None and arguments.dataset is None:
        print("error: serve needs a dataset directory or --snapshot PATH",
              file=sys.stderr)
        return 2
    if arguments.snapshot is not None:
        from repro.snapshot import SnapshotError

        try:
            service = _snapshot_service(arguments)
        except (SnapshotError, OSError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    else:
        service = _load_service(arguments)
    if arguments.executor == "cluster":
        from repro.cluster import ClusterCoordinator

        service = ClusterCoordinator(
            service,
            shards=arguments.shards,
            snapshot_path=arguments.snapshot,
        )
    elif arguments.executor != "serial":
        from repro.service import ConcurrentOctopusService

        mode = "threads" if arguments.executor == "threads" else "processes"
        service = ConcurrentOctopusService(
            service, workers=arguments.workers, mode=mode
        )
    if arguments.frontend == "asyncio":
        from repro.gateway import GatewayConfig, OctopusAsyncGateway

        server = OctopusAsyncGateway(
            service,
            host=arguments.host,
            port=arguments.port,
            config=GatewayConfig(
                queue_depth=arguments.queue_depth,
                workers=arguments.gateway_workers,
                heavy_slots=arguments.heavy_slots,
                tenant_rate=arguments.tenant_rate,
                tenant_burst=arguments.tenant_burst,
                read_timeout=arguments.read_timeout,
                write_timeout=arguments.write_timeout,
            ),
            auth_token=arguments.auth_token,
            ssl_context=ssl_context,
            verbose=arguments.verbose,
            tracing=False if arguments.no_trace else None,
            slow_query_ms=arguments.slow_query_ms,
        )
        server.start()
    else:
        from repro.server import OctopusHTTPServer

        server = OctopusHTTPServer(
            service,
            host=arguments.host,
            port=arguments.port,
            auth_token=arguments.auth_token,
            ssl_context=ssl_context,
            verbose=arguments.verbose,
            tracing=False if arguments.no_trace else None,
            slow_query_ms=arguments.slow_query_ms,
        )
    origin = (
        arguments.dataset
        if arguments.snapshot is None
        else f"snapshot {arguments.snapshot}"
    )
    print(f"serving {origin} on {server.url} "
          f"(executor={arguments.executor}, frontend={arguments.frontend})")
    print("endpoints: POST /query  POST /batch  GET /stats  GET /healthz  "
          "GET /metrics")
    print("press Ctrl-C to drain and stop")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\ndraining in-flight requests ...", file=sys.stderr)
    finally:
        final = server.shutdown_gracefully()
        for key in sorted(final):
            if key.startswith(
                ("service.", "cache.", "http.", "executor.", "cluster.",
                 "gateway.")
            ):
                print(_render_stat(key, final[key]))
    return 0


def _read_query_input(text: str) -> str:
    """Resolve the ``query`` command's request argument to raw JSON text."""
    if text == "-":
        return sys.stdin.read()
    if text.startswith("@"):
        with open(text[1:], "r", encoding="utf-8") as handle:
            return handle.read()
    return text


def _query_remote(arguments: argparse.Namespace, raw: str, entries, indent) -> int:
    """Route the ``query`` input at a remote server via the HTTP client.

    *entries* is the already-parsed batch array (``None`` without
    ``--batch`` — the raw text then goes over the wire untouched, so the
    server validates exactly what the user wrote).
    """
    from repro.server import OctopusClient, OctopusTransportError

    verify: object = True
    if getattr(arguments, "insecure", False):
        verify = False
    elif getattr(arguments, "ca_cert", None) is not None:
        verify = arguments.ca_cert
    try:
        with OctopusClient(
            arguments.url,
            timeout=arguments.timeout,
            auth_token=getattr(arguments, "auth_token", None),
            verify=verify,
            retries=getattr(arguments, "retries", 0),
        ) as client:
            if entries is not None:
                responses = client.execute_batch(entries)
                print(
                    json.dumps(
                        [response.to_dict() for response in responses],
                        sort_keys=True,
                        indent=indent,
                    )
                )
                return 0 if all(response.ok for response in responses) else 2
            response = client.execute(raw)
            print(response.to_json(indent=indent))
            return 0 if response.ok else 2
    except OctopusTransportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def _command_query(arguments: argparse.Namespace) -> int:
    # Read and shape-check the input before the (expensive) index build.
    try:
        raw = _read_query_input(arguments.request)
    except OSError as error:
        print(f"error: cannot read request: {error}", file=sys.stderr)
        return 2
    indent = 1 if arguments.pretty else None
    entries = None
    if arguments.batch:
        try:
            entries = json.loads(raw)
        except json.JSONDecodeError as error:
            print(f"error: batch input is not valid JSON: {error}", file=sys.stderr)
            return 2
        if not isinstance(entries, list):
            print("error: --batch expects a JSON array", file=sys.stderr)
            return 2
    if arguments.url is not None:
        return _query_remote(arguments, raw, entries, indent)
    if arguments.dataset is None:
        print("error: query needs a dataset directory or --url", file=sys.stderr)
        return 2
    if arguments.batch:
        service = _load_service(arguments)
        workers = arguments.workers or 1
        if workers > 1:
            # Concurrent batch serving: same envelopes, worker threads,
            # in-flight de-duplication of identical requests.
            from repro.service import ConcurrentOctopusService

            with ConcurrentOctopusService(service, workers=workers) as executor:
                responses = executor.execute_batch(entries)
        else:
            responses = service.execute_batch(entries)
        print(
            json.dumps(
                [response.to_dict() for response in responses],
                sort_keys=True,
                indent=indent,
            )
        )
        return 0 if all(response.ok for response in responses) else 2
    try:
        request = request_from_json(raw)
    except ValidationError as error:
        try:
            name = str(json.loads(raw).get("service") or "unknown")
        except (json.JSONDecodeError, AttributeError):
            name = "unknown"
        response = ServiceResponse.failure(
            name, "malformed_request", str(error)
        )
        print(response.to_json(indent=indent))
        return 2
    response = _load_service(arguments).execute(request)
    print(response.to_json(indent=indent))
    return 0 if response.ok else 2


_HANDLERS = {
    "generate": _command_generate,
    "influencers": _command_influencers,
    "suggest": _command_suggest,
    "paths": _command_paths,
    "radar": _command_radar,
    "complete": _command_complete,
    "stats": _command_stats,
    "query": _command_query,
    "snapshot": _command_snapshot,
    "serve": _command_serve,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _HANDLERS[arguments.command](arguments)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface to the OCTOPUS system.

The demo paper fronts OCTOPUS with a web UI; this CLI exposes the same
services to a terminal (and doubles as the reference client for the
library).  A dataset directory (created by ``octopus generate`` or
:func:`repro.datasets.loaders.save_dataset`) plays the role of the deployed
network.

Commands::

    octopus generate  --kind citation --out DIR [--size N] [--seed S]
    octopus influencers DIR "data mining" [-k 10]
    octopus suggest     DIR "Ada Abadi"   [-k 3]
    octopus paths       DIR "Ada Abadi"   [--keywords "data mining"]
                        [--threshold 0.01] [--reverse] [--json FILE]
    octopus radar       DIR "em algorithm"
    octopus complete    DIR --users PREFIX | --keywords PREFIX
    octopus stats       DIR
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.core.octopus import Octopus, OctopusConfig
from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.loaders import load_dataset, save_dataset
from repro.datasets.social import SocialNetworkGenerator
from repro.utils.validation import ValidationError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="octopus",
        description="Online topic-aware influence analysis (ICDE'18 repro).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a synthetic dataset directory"
    )
    generate.add_argument(
        "--kind", choices=("citation", "social"), default="citation"
    )
    generate.add_argument("--out", required=True, help="output directory")
    generate.add_argument("--size", type=int, default=500, help="user count")
    generate.add_argument("--seed", type=int, default=7)

    def add_system_command(name: str, help_text: str) -> argparse.ArgumentParser:
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("dataset", help="dataset directory")
        sub.add_argument("--seed", type=int, default=0, help="engine seed")
        sub.add_argument(
            "--fast",
            action="store_true",
            help="small index budgets (quicker startup, noisier answers)",
        )
        return sub

    influencers = add_system_command(
        "influencers", "keyword-based influential user discovery"
    )
    influencers.add_argument("keywords", help="comma-separated keywords")
    influencers.add_argument("-k", type=int, default=10)

    suggest = add_system_command(
        "suggest", "personalized influential keyword suggestion"
    )
    suggest.add_argument("user", help="user name or id")
    suggest.add_argument("-k", type=int, default=3)
    suggest.add_argument(
        "--exact", action="store_true", help="exhaustive search (slow)"
    )

    paths = add_system_command("paths", "influential path exploration")
    paths.add_argument("user", help="user name or id")
    paths.add_argument("--keywords", default=None)
    paths.add_argument("--threshold", type=float, default=0.01)
    paths.add_argument(
        "--reverse", action="store_true", help="explore who influences the user"
    )
    paths.add_argument("--json", default=None, help="write d3 payload here")

    radar = add_system_command("radar", "topic interpretation of keywords")
    radar.add_argument("keywords", help="comma-separated keywords")

    complete = add_system_command("complete", "auto-completion")
    group = complete.add_mutually_exclusive_group(required=True)
    group.add_argument("--users", metavar="PREFIX")
    group.add_argument("--keywords", metavar="PREFIX")
    complete.add_argument("--limit", type=int, default=10)

    add_system_command("stats", "system and index statistics")
    return parser


def _load_system(arguments: argparse.Namespace) -> Octopus:
    dataset = load_dataset(arguments.dataset)
    if arguments.fast:
        config = OctopusConfig(
            num_sketches=60,
            num_topic_samples=6,
            topic_sample_rr_sets=400,
            oracle_samples=30,
            seed=arguments.seed,
        )
    else:
        config = OctopusConfig(seed=arguments.seed)
    return Octopus.from_dataset(dataset, config=config)


def _resolve_user_argument(system: Octopus, text: str):
    try:
        return system.resolve_user(int(text))
    except (ValueError, ValidationError):
        return system.resolve_user(text)


def _command_generate(arguments: argparse.Namespace) -> int:
    if arguments.kind == "citation":
        dataset = CitationNetworkGenerator(
            num_researchers=arguments.size, seed=arguments.seed
        ).generate()
    else:
        dataset = SocialNetworkGenerator(
            num_users=arguments.size, seed=arguments.seed
        ).generate()
    save_dataset(dataset, arguments.out)
    summary = dataset.summary()
    print(f"wrote {dataset.name} to {arguments.out}")
    for key in ("num_users", "num_edges", "num_items", "vocabulary_size"):
        print(f"  {key:<18s} {summary[key]:,.0f}")
    return 0


def _command_influencers(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    result = system.find_influencers(arguments.keywords, k=arguments.k)
    print(f"keywords : {', '.join(result.query.keywords)}")
    print(f"spread   : {result.spread:.1f}")
    print(f"latency  : {result.elapsed_seconds * 1e3:.1f} ms")
    for rank, (node, label) in enumerate(result.top(arguments.k), start=1):
        print(f"{rank:3d}. {label}  (user {node})")
    return 0


def _command_suggest(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    user = _resolve_user_argument(system, arguments.user)
    method = "exact" if arguments.exact else "greedy"
    result = system.suggest_keywords(user, k=arguments.k, method=method)
    print(f"user     : {result.target_label} (user {result.target})")
    print(f"keywords : {', '.join(result.keywords)}")
    print(f"spread   : {result.spread:.1f}")
    from repro.viz.radar import radar_chart_data
    from repro.viz.text import render_radar

    payload = radar_chart_data(
        system.topic_model, result.keywords, system.topic_names
    )
    print(render_radar(payload))
    return 0


def _command_paths(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    user = _resolve_user_argument(system, arguments.user)
    direction = "influenced_by" if arguments.reverse else "influences"
    tree = system.explore_paths(
        user,
        keywords=arguments.keywords,
        threshold=arguments.threshold,
        direction=direction,
    )
    from repro.viz.text import render_path_tree

    print(render_path_tree(tree))
    if arguments.json:
        from repro.viz.d3 import path_tree_to_d3_force

        with open(arguments.json, "w", encoding="utf-8") as handle:
            json.dump(path_tree_to_d3_force(tree), handle, indent=1)
        print(f"d3 payload written to {arguments.json}")
    return 0


def _command_radar(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    from repro.viz.text import render_radar

    print(render_radar(system.radar(arguments.keywords)))
    return 0


def _command_complete(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    if arguments.users is not None:
        completions = system.autocomplete_users(arguments.users, arguments.limit)
    else:
        completions = system.autocomplete_keywords(
            arguments.keywords, arguments.limit
        )
    for key, payload in completions:
        print(f"{key}\t{payload}")
    return 0


def _command_stats(arguments: argparse.Namespace) -> int:
    system = _load_system(arguments)
    for key, value in sorted(system.statistics().items()):
        print(f"{key:<45s} {value:.4f}")
    return 0


_HANDLERS = {
    "generate": _command_generate,
    "influencers": _command_influencers,
    "suggest": _command_suggest,
    "paths": _command_paths,
    "radar": _command_radar,
    "complete": _command_complete,
    "stats": _command_stats,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        return _HANDLERS[arguments.command](arguments)
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""LRU cache for query results.

Online systems answer repeated queries; OCTOPUS caches the three services'
results keyed by their normalised query.  Hit/miss counters feed the system
statistics panel.

The cache is thread-safe: the concurrent service executor shares one
instance across worker threads, so every mutation (lookup bookkeeping,
insertion, eviction) happens under an internal lock and the counters stay
consistent — ``hits + misses`` always equals the number of lookups, and
``evictions`` matches the entries actually dropped.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional

from repro.utils.validation import check_positive

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded least-recently-used mapping with hit/miss/eviction counters."""

    def __init__(self, capacity: int = 256) -> None:
        check_positive(capacity, "capacity")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value or ``None``; refreshes recency on hit."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh *key*, evicting the least recent on overflow."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for statistics panels (size, hits, misses, ...)."""
        with self._lock:
            return {
                "size": float(len(self._data)),
                "capacity": float(self.capacity),
                "hits": float(self.hits),
                "misses": float(self.misses),
                "evictions": float(self.evictions),
                "hit_rate": self.hit_rate,
            }

"""LRU cache for query results.

Online systems answer repeated queries; OCTOPUS caches the three services'
results keyed by their normalised query.  Hit/miss counters feed the system
statistics panel.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional

from repro.utils.validation import check_positive

__all__ = ["LRUCache"]


class LRUCache:
    """Bounded least-recently-used mapping."""

    def __init__(self, capacity: int = 256) -> None:
        check_positive(capacity, "capacity")
        self.capacity = capacity
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value or ``None``; refreshes recency on hit."""
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh *key*, evicting the least recent on overflow."""
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop all entries and reset counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

"""Keyword → users inverted index.

Maps each vocabulary word to the users whose actions used it, with term
frequencies.  The Octopus facade uses it for candidate generation (which
users are even relevant to a keyword) and for the keyword statistics shown
in the UI.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.utils.validation import ValidationError

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Postings lists of (user, frequency) per word id."""

    def __init__(self) -> None:
        self._postings: Dict[int, Dict[int, int]] = {}
        self._user_totals: Dict[int, int] = {}

    def add(self, word_id: int, user: int, count: int = 1) -> None:
        """Record *count* uses of *word_id* by *user*."""
        if count <= 0:
            raise ValidationError(f"count must be positive, got {count}")
        postings = self._postings.setdefault(int(word_id), {})
        postings[int(user)] = postings.get(int(user), 0) + count
        self._user_totals[int(user)] = self._user_totals.get(int(user), 0) + count

    def add_document(self, user: int, word_ids: Iterable[int]) -> None:
        """Record one document's words for *user*."""
        for word_id in word_ids:
            self.add(word_id, user)

    def users_of(self, word_id: int, limit: int = 0) -> List[Tuple[int, int]]:
        """Users having used *word_id*, most frequent first.

        ``limit=0`` returns all.
        """
        postings = self._postings.get(int(word_id), {})
        ranked = sorted(postings.items(), key=lambda kv: (-kv[1], kv[0]))
        if limit > 0:
            ranked = ranked[:limit]
        return ranked

    def document_frequency(self, word_id: int) -> int:
        """Number of distinct users having used *word_id*."""
        return len(self._postings.get(int(word_id), {}))

    def frequency(self, word_id: int, user: int) -> int:
        """Uses of *word_id* by *user*."""
        return self._postings.get(int(word_id), {}).get(int(user), 0)

    def user_activity(self, user: int) -> int:
        """Total word occurrences attributed to *user*."""
        return self._user_totals.get(int(user), 0)

    def vocabulary_ids(self) -> List[int]:
        """All word ids with at least one posting."""
        return sorted(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

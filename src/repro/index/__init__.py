"""Auxiliary indexes of the online query engine.

* :class:`~repro.index.trie.Trie` — prefix auto-completion for user names
  and keywords (the demo's auto-completion tool in Scenario 2).
* :class:`~repro.index.inverted.InvertedIndex` — keyword → users postings.
* :class:`~repro.index.cache.LRUCache` — query-result cache.
"""

from repro.index.cache import LRUCache
from repro.index.inverted import InvertedIndex
from repro.index.trie import Trie

__all__ = ["Trie", "InvertedIndex", "LRUCache"]

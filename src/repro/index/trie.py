"""Prefix trie for auto-completion of user names and keywords.

Scenario 2: "She can simply type in the name in OCTOPUS, while assisted by an
auto-completion tool."  Entries carry a payload (node id / word id) and a
weight (e.g. occurrence count) so completions are ranked.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.utils.validation import ValidationError, check_positive

__all__ = ["Trie"]


class _TrieNode:
    __slots__ = ("children", "entries")

    def __init__(self) -> None:
        self.children: Dict[str, "_TrieNode"] = {}
        # (key, payload, weight) tuples terminating at this node.
        self.entries: List[Tuple[str, Any, float]] = []


class Trie:
    """Case-insensitive prefix index with weighted completions."""

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, key: str, payload: Any = None, weight: float = 1.0) -> None:
        """Insert *key* with an optional payload and ranking weight."""
        if not isinstance(key, str) or not key.strip():
            raise ValidationError(f"trie key must be a non-empty string, got {key!r}")
        normalized = key.strip().lower()
        node = self._root
        for character in normalized:
            node = node.children.setdefault(character, _TrieNode())
        node.entries.append((key.strip(), payload, float(weight)))
        self._size += 1

    def complete(self, prefix: str, limit: int = 10) -> List[Tuple[str, Any]]:
        """Completions of *prefix*, heaviest first, as (key, payload).

        An empty prefix returns the globally heaviest entries.
        """
        check_positive(limit, "limit")
        if not isinstance(prefix, str):
            raise ValidationError(f"prefix must be a string, got {prefix!r}")
        node = self._root
        for character in prefix.strip().lower():
            if character not in node.children:
                return []
            node = node.children[character]
        matches: List[Tuple[str, Any, float]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            matches.extend(current.entries)
            stack.extend(current.children.values())
        matches.sort(key=lambda entry: (-entry[2], entry[0]))
        return [(key, payload) for key, payload, _weight in matches[:limit]]

    def contains(self, key: str) -> bool:
        """Whether an exact *key* was inserted."""
        node = self._root
        for character in key.strip().lower():
            if character not in node.children:
                return False
            node = node.children[character]
        return bool(node.entries)

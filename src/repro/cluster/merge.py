"""Pure shard-merge arithmetic of the distributed max-cover loop.

The cluster's headline invariant — shard count is a pure execution detail —
rests on a piece of exact integer arithmetic: greedy maximum coverage over a
packed batch of RR sets decomposes *losslessly* across any contiguous
partition of the batch.  This module holds that arithmetic, free of any
process or pipe machinery, so it can be exercised in-process (the hypothesis
property suite drives it directly against
:meth:`~repro.propagation.rrsets.RRSetCollection.greedy_max_cover`).

Decomposition.  Split a packed batch of ``R`` RR sets into ``S`` contiguous
slices (shard ``s`` holds sets ``[lo_s, hi_s)``, concatenated in shard
order).  Then, at every greedy round:

* the global per-node coverage array is the elementwise **sum** of the
  shards' local coverage arrays (each set lives in exactly one shard);
* the global first-occurrence tie-break array is the elementwise **min**
  of the shards' local arrays shifted by their member-offset *base* (the
  packed ``nodes`` array is the concatenation of the shard-local arrays);
* the number of covered sets is the **sum** of the shards' local counts.

So the coordinator can pick ``argmax`` over summed coverage (ties broken by
min shifted first-occurrence — byte-for-byte the serial rule), broadcast the
chosen seed, and let each shard subtract its own newly-covered member counts
locally.  No floating point is involved until the final spread estimate,
which applies the exact expression serial code applies to the same integers.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.propagation.native import apply_cover_seed
from repro.propagation.packed import PackedRRSets

__all__ = [
    "ShardCoverState",
    "merge_coverage",
    "merge_first_seen",
    "partition_contiguous",
    "pick_cover_seed",
]


def partition_contiguous(total: int, parts: int) -> List[Tuple[int, int]]:
    """Balanced contiguous split of ``range(total)`` into *parts* slices.

    Earlier slices take the remainder, matching ``np.array_split``.  Used
    both for chunk→shard assignment (the sampling partition) and for
    node-range ownership (the index partition); slices may be empty when
    ``parts > total``.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    base, remainder = divmod(total, parts)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for part in range(parts):
        size = base + (1 if part < remainder else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


class ShardCoverState:
    """One shard's slice of a greedy max-cover computation.

    Mirrors the per-round update of
    :meth:`~repro.propagation.rrsets.RRSetCollection.greedy_max_cover`
    exactly, restricted to the shard's local packed batch.  ``base`` is the
    shard's offset into the *global* concatenated member array (the sum of
    ``len(packed.nodes)`` over all earlier shards) and ``total_members``
    the global member count — together they turn the local first-occurrence
    array into the global tie-break values the serial greedy uses.
    """

    def __init__(
        self, packed: PackedRRSets, base: int, total_members: int
    ) -> None:
        self.packed = packed
        self.member_offsets, self.member_sets = packed.membership()
        self.coverage = packed.coverage_counts().astype(np.int64)
        self.covered = np.zeros(packed.num_sets, dtype=bool)
        first_local = packed.first_occurrence()
        # Local sentinel (len(local nodes)) → global sentinel (total
        # member count), so a node absent from this shard can never win a
        # tie against a real occurrence in another shard.
        self.first_seen_global = np.where(
            first_local < len(packed.nodes),
            first_local + base,
            total_members,
        ).astype(np.int64)

    @property
    def covered_count(self) -> int:
        """Number of locally covered RR sets."""
        return int(self.covered.sum())

    def apply_seed(self, seed: int) -> None:
        """Fold one selected seed into the local coverage/covered state.

        Identical arithmetic to the serial greedy's inner update: mark the
        seed's not-yet-covered sets covered and subtract their members'
        counts from the coverage array, so no set's members are walked
        more than once over the whole loop.  Delegates to
        :func:`repro.propagation.native.apply_cover_seed`, which runs the
        compiled cover-update core when the extension is loaded and the
        NumPy path otherwise — exact integer arithmetic either way, so
        shard merges stay byte-compatible with serial selection.
        """
        packed = self.packed
        apply_cover_seed(
            seed,
            self.member_offsets,
            self.member_sets,
            self.covered,
            packed.offsets,
            packed.nodes,
            self.coverage,
        )


def merge_coverage(local_coverages: Sequence[np.ndarray]) -> np.ndarray:
    """Global per-node coverage: elementwise sum of the shard arrays."""
    if not local_coverages:
        raise ValueError("merge_coverage needs at least one shard array")
    total = np.zeros_like(np.asarray(local_coverages[0], dtype=np.int64))
    for local in local_coverages:
        total = total + np.asarray(local, dtype=np.int64)
    return total


def merge_first_seen(first_seens: Sequence[np.ndarray]) -> np.ndarray:
    """Global tie-break array: elementwise min of shifted shard arrays."""
    if not first_seens:
        raise ValueError("merge_first_seen needs at least one shard array")
    # Force a copy: with one shard the input may be a zero-copy view into
    # that shard's arena, which the shard overwrites on later rounds —
    # the merged tie-break array must outlive the transport window.
    merged = np.array(first_seens[0], dtype=np.int64)
    for local in first_seens[1:]:
        merged = np.minimum(merged, np.asarray(local, dtype=np.int64))
    return merged


def pick_cover_seed(
    total_coverage: np.ndarray, first_seen: np.ndarray
) -> Optional[int]:
    """One greedy round's selection over merged shard reports.

    Byte-for-byte the serial rule: the node with maximum remaining
    coverage, ties broken by earliest global first occurrence; ``None``
    when no node covers anything new (the serial loop's break condition).
    """
    best_cover = int(total_coverage.max())
    if best_cover <= 0:
        return None
    candidates = np.flatnonzero(total_coverage == best_cover)
    return int(candidates[np.argmin(first_seen[candidates])])

"""Sharded multi-process serving for the OCTOPUS service layer.

The cluster package keeps partitioned graph/index state resident in
long-lived shard worker processes and merges per-shard answers behind the
standard service-executor surface:

* :mod:`repro.cluster.worker` — the :class:`~repro.cluster.worker.ShardWorker`
  process: a forked full-service replica plus a node-range partition and
  session-local packed RR batches, speaking the typed shard protocol
  (:mod:`repro.cluster.protocol`) over its pipe;
* :mod:`repro.cluster.merge` — the exact integer arithmetic that makes
  greedy max-cover decompose losslessly across contiguous shard slices;
* :mod:`repro.cluster.coordinator` — the
  :class:`~repro.cluster.coordinator.ClusterCoordinator` implementing
  ``execute`` / ``execute_batch`` / ``stats`` / ``close`` by routing or
  fanning out, with every wait bounded and dead shards degrading (never
  hanging) the cluster.

Determinism contract: shard count is a pure execution detail.
``deterministic_form()`` of every response is byte-identical for 1, 2 and
4 shards and identical to the single-process ``OctopusService`` with the
same configuration (``tests/cluster/`` proves it three ways).
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ShardCommandError,
    ShardDeadError,
    ShardError,
    ShardTimeoutError,
)
from repro.cluster.merge import (
    ShardCoverState,
    merge_coverage,
    merge_first_seen,
    partition_contiguous,
    pick_cover_seed,
)
from repro.cluster.worker import ShardWorker

__all__ = [
    "ClusterCoordinator",
    "ShardCommandError",
    "ShardCoverState",
    "ShardDeadError",
    "ShardError",
    "ShardTimeoutError",
    "ShardWorker",
    "merge_coverage",
    "merge_first_seen",
    "partition_contiguous",
    "pick_cover_seed",
]

"""The cluster coordinator: the service-executor surface over shard fan-out.

:class:`ClusterCoordinator` implements the executor contract the rest of
the system already speaks — ``execute`` / ``execute_batch`` / ``stats`` /
``close`` — on top of long-lived :mod:`~repro.cluster.worker` shard
processes, so it drops into :class:`~repro.server.OctopusHTTPServer` and
the CLI exactly where :class:`~repro.service.OctopusService` or
:class:`~repro.service.ConcurrentOctopusService` would.

Execution model
---------------

The coordinator forks ``shards`` worker processes at construction; each
inherits the fully built service (graph, indexes, middleware) copy-on-write
and owns a contiguous **node range** of the graph.  Requests then take one
of two paths:

* **Routing** — user-affine queries (suggestion, path exploration) go to
  the shard owning the resolved user's node range, so mutable per-user
  index state (delayed sketch materialization) accumulates only on the
  owner; everything else load-balances round-robin over live shards.
  Every shard replica is seed-identical to the single-process service, so
  the response bytes do not depend on the chosen shard.
* **Distributed max-cover** — targeted-IM queries, when the configured
  execution backend uses the chunked sampling scheme (``execution_backend
  != "serial"``), fan out: the coordinator draws the query's audience-
  weighted roots and builds the exact chunk plan
  (:func:`repro.backend.base.rr_chunk_plan`) the single-process backend
  would build, hands each shard a contiguous chunk range to sample and
  hold resident, then runs the greedy seed-selection loop over the wire —
  each round every shard reports its marginal-gain (coverage) vector, the
  coordinator picks the argmax with the serial tie-break rule
  (:func:`repro.cluster.merge.pick_cover_seed`) and broadcasts the chosen
  seed.  Because chunk streams are keyed by chunk index — never by shard
  — the sampled batch, the greedy selections and every float in the
  response are **byte-identical** for 1, 2 or 4 shards and to the
  single-process service: shard count is a pure execution detail.

Failure model
-------------

Every wait is bounded.  A shard that dies mid-request surfaces as a
structured ``internal_error`` envelope within the pipe timeout (never a
hang, never an unparseable body); later requests route around dead shards
and :meth:`health` reports the cluster degraded.  A distributed query that
loses a shard mid-session falls back to whole-query routing on a live
replica — which computes the same bytes — before giving up.
"""

from __future__ import annotations

import copy
import dataclasses
import glob
import itertools
import multiprocessing
import os
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.backend.base import DEFAULT_RR_CHUNK_SIZE, rr_chunk_plan, seed_to_sequence
from repro.backend.shm import (
    ShmArena,
    ShmSession,
    ShmSlice,
    default_arena_bytes,
    shm_enabled,
)
from repro.cluster.merge import (
    merge_coverage,
    merge_first_seen,
    partition_contiguous,
    pick_cover_seed,
)
from repro.cluster.protocol import (
    ChunkSpec,
    CoverInit,
    CoverRound,
    DropSession,
    ExecuteRequest,
    Ping,
    SampleShard,
    ShardStatsCmd,
    Shutdown,
)
from repro.cluster.worker import shard_main, shard_respawn_main
from repro.core.octopus import Octopus
from repro.obs.histogram import aggregate_latency_keys
from repro.obs.trace import (
    current_trace,
    record_stage,
    stage as trace_stage,
    stamp_response,
)
from repro.core.query import KeywordQuery
from repro.core.targeted import TargetedKeywordIM
from repro.service.dispatcher import OctopusService, RequestLike
from repro.service.middleware import RateLimitMiddleware
from repro.service.requests import (
    ExplorePathsRequest,
    ServiceRequest,
    StatsRequest,
    SuggestKeywordsRequest,
    TargetedInfluencersRequest,
)
from repro.service.responses import ServiceResponse, jsonify
from repro.utils.validation import ValidationError, check_positive, check_simplex

__all__ = [
    "ClusterCoordinator",
    "ShardCommandError",
    "ShardDeadError",
    "ShardError",
    "ShardTimeoutError",
]


class ShardError(Exception):
    """Base of shard-communication failures (never leaves the coordinator
    as an exception — callers receive structured envelopes)."""


class ShardDeadError(ShardError):
    """The shard process exited or its pipe closed."""


class ShardTimeoutError(ShardError):
    """The shard did not answer (or free its pipe) within the bound."""


class ShardCommandError(ShardError):
    """The shard answered, but with a protocol-level error reply."""


class _ShardHandle:
    """Parent-side endpoint of one shard: pipe, process, lock, liveness.

    The pipe carries ``(sequence, ...)`` frames; a bounded wait that
    expires records its sequence as abandoned so the late reply is
    discarded instead of being matched to the next command — one slow
    answer can never poison the exchanges that follow.
    """

    def __init__(
        self,
        shard_id: int,
        process: multiprocessing.Process,
        connection,
        node_range: Tuple[int, int],
        arena: Optional[ShmArena] = None,
    ) -> None:
        self.shard_id = shard_id
        self.process = process
        self.connection = connection
        self.node_range = node_range
        self.arena = arena
        self.lock = threading.Lock()
        self.dead_reason = ""
        self._alive = True
        self._sequence = 0
        self._abandoned: set = set()

    def resolve(self, value: Any) -> Any:
        """Materialise any :class:`ShmSlice` descriptors in a reply value.

        The resolved arrays are zero-copy read-only views into the shard's
        arena; they stay valid exactly until the next command is sent to
        this shard (the worker rewinds its arena at the start of every
        cover command), which the one-command-in-flight protocol plus the
        merge arithmetic's fresh output arrays make safe.
        """
        if self.arena is None:
            return value
        if isinstance(value, ShmSlice):
            return self.arena.read(value)[0]
        if isinstance(value, dict):
            return {
                key: self.arena.read(entry)[0]
                if isinstance(entry, ShmSlice)
                else entry
                for key, entry in value.items()
            }
        return value

    def is_alive(self) -> bool:
        """Liveness: not marked dead *and* the process is still running."""
        if not self._alive:
            return False
        if not self.process.is_alive():
            self.mark_dead("process exited")
            return False
        return True

    def mark_dead(self, reason: str) -> None:
        """Take the shard out of rotation (idempotent, keeps first cause)."""
        self._alive = False
        if not self.dead_reason:
            self.dead_reason = reason

    # -- locked-pipe primitives (caller holds ``self.lock``) ------------

    def send_locked(self, command: Any) -> int:
        """Ship one command frame; returns its sequence number."""
        if not self.is_alive():
            raise ShardDeadError(
                f"shard {self.shard_id} is dead ({self.dead_reason})"
            )
        self._sequence += 1
        sequence = self._sequence
        try:
            self.connection.send((sequence, command))
        except (BrokenPipeError, OSError) as error:
            self.mark_dead(f"pipe send failed: {error}")
            raise ShardDeadError(
                f"shard {self.shard_id} died while receiving a command"
            ) from error
        return sequence

    def receive_locked(self, sequence: int, timeout: float) -> Any:
        """Wait (bounded) for the reply to *sequence*; discard stale ones."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                # The reply may still arrive; remember to discard it.
                self._abandoned.add(sequence)
                raise ShardTimeoutError(
                    f"shard {self.shard_id} did not answer within "
                    f"{timeout:.1f}s"
                )
            try:
                if not self.connection.poll(remaining):
                    continue  # deadline re-checked at the top
                frame_sequence, reply = self.connection.recv()
            except (EOFError, OSError) as error:
                self.mark_dead(f"pipe closed: {type(error).__name__}")
                raise ShardDeadError(
                    f"shard {self.shard_id} died mid-request"
                ) from error
            if frame_sequence == sequence:
                if not reply.ok:
                    raise ShardCommandError(reply.error)
                return self.resolve(reply.value)
            if frame_sequence in self._abandoned:
                self._abandoned.discard(frame_sequence)
                continue  # late answer to a timed-out exchange
            self.mark_dead(
                f"protocol desync (expected frame {sequence}, "
                f"got {frame_sequence})"
            )
            raise ShardDeadError(f"shard {self.shard_id} desynchronised")

    # -- whole exchanges -------------------------------------------------

    def call(
        self,
        command: Any,
        timeout: float,
        lock_timeout: Optional[float] = None,
    ) -> Any:
        """One lock + send + receive exchange with bounded waits."""
        wait = lock_timeout if lock_timeout is not None else timeout
        if not self.lock.acquire(timeout=wait):
            raise ShardTimeoutError(
                f"shard {self.shard_id} is busy (lock not free within "
                f"{wait:.1f}s)"
            )
        try:
            sequence = self.send_locked(command)
            return self.receive_locked(sequence, timeout)
        finally:
            self.lock.release()

    def shutdown(self, timeout: float) -> None:
        """Graceful stop: ask, join, then terminate if it lingers."""
        if self._alive and self.process.is_alive():
            try:
                self.call(Shutdown(), timeout=timeout, lock_timeout=timeout)
            except ShardError:
                pass  # we are tearing it down either way
        self._alive = False
        try:
            self.connection.close()
        except OSError:  # pragma: no cover — close is best-effort
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)


class ClusterCoordinator:
    """Sharded multi-process service executor (see module docstring).

    Accepts an :class:`OctopusService` or a bare :class:`Octopus` backend
    (wrapped with *service_kwargs*), mirroring the concurrent executor's
    construction surface.  The coordinator keeps the authoritative result
    cache and metrics; shard replicas run with their caches disabled.
    """

    def __init__(
        self,
        service: Union[OctopusService, Octopus],
        *,
        shards: int = 2,
        shard_timeout: float = 60.0,
        snapshot_path: Optional[str] = None,
        **service_kwargs: Any,
    ) -> None:
        if isinstance(service, OctopusService):
            if service_kwargs:
                raise ValidationError(
                    "service_kwargs only apply when wrapping a bare Octopus"
                )
            self.service = service
        elif isinstance(service, Octopus):
            self.service = OctopusService(service, **service_kwargs)
        else:
            raise ValidationError(
                f"service must be an OctopusService or Octopus, "
                f"got {type(service).__name__}"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ValidationError(
                "the cluster executor needs the 'fork' start method "
                "(POSIX only)"
            )
        self.shards = int(shards)
        check_positive(self.shards, "shards")
        self.shard_timeout = float(shard_timeout)
        check_positive(self.shard_timeout, "shard_timeout")
        self.closed = False
        # With a snapshot on disk, a dead shard can be respawned from it
        # (see respawn_dead_shards) instead of degrading permanently.
        self.snapshot_path = snapshot_path
        self._respawn_lock = threading.Lock()
        num_nodes = self.service.backend.graph.num_nodes
        node_ranges = partition_contiguous(num_nodes, self.shards)
        context = multiprocessing.get_context("fork")
        self._context = context
        # The shared-memory data plane: one coordinator-owned session
        # directory holding one arena per shard, created *before* the
        # forks so each shard inherits its base mapping.  Ownership stays
        # here — a killed shard cannot leak a segment, and close()
        # reclaims the whole session directory in one sweep.  Each arena
        # must hold one cover reply (two int64 node-length vectors) with
        # generous headroom; larger graphs grow on demand.
        self._shm_session: Optional[ShmSession] = None
        arenas: List[Optional[ShmArena]] = [None] * self.shards
        if shm_enabled():
            self._shm_session = ShmSession()
            capacity = max(
                default_arena_bytes(), 4 * num_nodes * 8 + 65536
            )
            arenas = [
                ShmArena(self._shm_session, f"shard{shard_id}", capacity)
                for shard_id in range(self.shards)
            ]
        self._handles: List[_ShardHandle] = []
        for shard_id in range(self.shards):
            parent_end, child_end = context.Pipe(duplex=True)
            process = context.Process(
                target=shard_main,
                args=(
                    child_end,
                    self.service,
                    shard_id,
                    self.shards,
                    node_ranges[shard_id],
                    arenas[shard_id],
                ),
                name=f"octopus-shard-{shard_id}",
                daemon=True,
            )
            process.start()
            child_end.close()  # the parent keeps only its end
            self._handles.append(
                _ShardHandle(
                    shard_id,
                    process,
                    parent_end,
                    node_ranges[shard_id],
                    arenas[shard_id],
                )
            )
        self._round_robin = itertools.count()
        self._session_ids = itertools.count()
        # The coordinator is the authoritative serving layer (like its
        # cache and metrics): a configured rate limit is enforced here,
        # once, for every path — distributed, routed, or cache hit.  The
        # shard replicas' forked limiter copies are neutralised at fork
        # (see worker.shard_main), exactly like their result caches.
        self._rate_limiter: Optional[RateLimitMiddleware] = next(
            (
                layer
                for layer in self.service.middleware
                if isinstance(layer, RateLimitMiddleware)
            ),
            None,
        )

    # ------------------------------------------------------------------
    # The executor surface
    # ------------------------------------------------------------------

    def execute(self, request: RequestLike) -> ServiceResponse:
        """Serve one request across the cluster; never raises."""
        try:
            typed = OctopusService._coerce(request)
        except ValidationError as error:
            return stamp_response(
                ServiceResponse.failure(
                    OctopusService._service_name_of(request),
                    "malformed_request",
                    str(error),
                )
            )
        started = time.perf_counter()
        if self.closed:
            return self._finish(
                ServiceResponse.failure(
                    typed.service, "internal_error", "cluster coordinator is closed"
                ),
                started,
                None,
            )
        if self._rate_limiter is not None:
            # Mirror the dispatcher's stack order: the limiter sits above
            # the cache, so over-limit requests never consult it.  With a
            # token available the middleware returns call_next's value.
            verdict = self._rate_limiter(typed, lambda _request: None)
            if verdict is not None:
                return self._finish(verdict, started, None)
        if isinstance(typed, StatsRequest):
            # Live cluster-wide counters: always computed here, never cached.
            return self._finish(
                ServiceResponse.success(typed.service, self.stats()),
                started,
                None,
            )
        key = self._safe_cache_key(typed)
        if key is not None:
            with trace_stage("cache_lookup"):
                cached = self.service.cache.get(key)
            if cached is not None:
                response = dataclasses.replace(
                    cached,
                    cache_hit=True,
                    payload=copy.deepcopy(cached.payload),
                    latency_ms=(time.perf_counter() - started) * 1e3,
                )
                self.service.metrics.record(response)
                return stamp_response(response)
        return self._finish(self._compute(typed), started, key)

    def execute_batch(
        self, requests: Sequence[RequestLike]
    ) -> List[ServiceResponse]:
        """Serve many requests, sharing duplicates like the dispatcher.

        Same grouping/de-duplication semantics as
        :meth:`OctopusService.execute_batch`: each distinct cacheable query
        computes once and duplicates receive its payload with
        ``cache_hit=True``; a bad request fails only its own slot.
        """
        responses: List[Optional[ServiceResponse]] = [None] * len(requests)
        groups: Dict[str, List[Tuple[int, ServiceRequest]]] = {}
        for position, raw in enumerate(requests):
            try:
                typed = OctopusService._coerce(raw)
            except ValidationError as error:
                responses[position] = stamp_response(
                    ServiceResponse.failure(
                        OctopusService._service_name_of(raw),
                        "malformed_request",
                        str(error),
                    )
                )
                continue
            groups.setdefault(typed.service, []).append((position, typed))
        for _service, members in groups.items():
            shared: Dict[Any, ServiceResponse] = {}
            for position, typed in members:
                key = self._safe_cache_key(typed)
                original = shared.get(key) if key is not None else None
                if original is not None:
                    started = time.perf_counter()
                    duplicate = dataclasses.replace(
                        original,
                        cache_hit=True,
                        payload=copy.deepcopy(original.payload),
                        latency_ms=(time.perf_counter() - started) * 1e3,
                    )
                    responses[position] = stamp_response(duplicate)
                    self.service.metrics.record(duplicate)
                    continue
                response = self.execute(typed)
                responses[position] = response
                if key is not None and response.ok:
                    shared[key] = response
        assert all(response is not None for response in responses)
        return list(responses)  # type: ignore[arg-type]

    def stats(self) -> Dict[str, Any]:
        """Coordinator + per-shard statistics, self-describing.

        ``executor.*`` identifies the executor (kind, shard count,
        liveness); ``cluster.shard<i>.*`` carries per-shard counters
        (skipped, not blocked on, when a shard is busy with a long
        exchange).  ``service.*`` / ``cache.*`` are the coordinator's
        authoritative serving metrics.  When shard replicas have served
        routed traffic, their per-service latency histograms are merged
        key-wise (bucket counts sum exactly; percentiles recompute over
        the merged distribution) and re-emitted under
        ``cluster.shards.service.*`` so ``/stats`` shows fleet-wide
        latency, not just the coordinator's own.
        """
        stats: Dict[str, Any] = dict(self.service.stats())
        stats["executor.kind"] = "cluster"
        stats["executor.workers"] = float(self.shards)
        stats["executor.shards"] = float(self.shards)
        stats["executor.payload_transport"] = (
            "shm" if self._shm_session is not None else "pickle"
        )
        alive = 0
        shard_snapshots: List[Dict[str, float]] = []
        for handle in self._handles:
            prefix = f"cluster.shard{handle.shard_id}"
            if not handle.is_alive():
                stats[f"{prefix}.alive"] = 0.0
                continue
            alive += 1
            stats[f"{prefix}.alive"] = 1.0
            try:
                info = handle.call(
                    ShardStatsCmd(),
                    timeout=min(self.shard_timeout, 5.0),
                    lock_timeout=1.0,
                )
            except ShardError:
                continue  # busy or just died; liveness above still stands
            stats[f"{prefix}.commands"] = float(info["shard.commands"])
            stats[f"{prefix}.requests"] = float(info["shard.requests"])
            shard_snapshots.append(info)
        stats["executor.shards_alive"] = float(alive)
        for key, value in aggregate_latency_keys(
            shard_snapshots, key_prefix="service."
        ).items():
            stats[f"cluster.shards.{key}"] = value
        return stats

    def health(self) -> Dict[str, Any]:
        """Per-shard liveness for ``/healthz`` (degraded when any is dead)."""
        liveness = []
        alive = 0
        for handle in self._handles:
            ok = handle.is_alive()
            alive += int(ok)
            entry: Dict[str, Any] = {
                "shard": handle.shard_id,
                "alive": bool(ok),
                "node_range": list(handle.node_range),
            }
            if not ok and handle.dead_reason:
                entry["reason"] = handle.dead_reason
            liveness.append(entry)
        return {
            "kind": "cluster",
            "shards": self.shards,
            "shards_alive": alive,
            "degraded": alive < self.shards,
            "shard_liveness": liveness,
        }

    def respawn_dead_shards(self) -> List[int]:
        """Respawn every dead shard from the snapshot; returns their ids.

        Requires ``snapshot_path`` at construction.  Each respawned child
        forks from the coordinator — inheriting the dead shard's arena
        base mapping exactly as at first construction — restores its
        replica from the snapshot (:func:`repro.snapshot.load_snapshot`,
        byte-identical to the replica it replaces), and takes over the
        dead shard's node range; distributed chunk ranges are assigned
        positionally over the handle list, so chunk-range ownership
        restores automatically.  Boot is confirmed with a bounded ping
        before the new handle enters rotation, so a snapshot that fails
        to restore surfaces as a :class:`ShardError` (and the shard stays
        dead) rather than a half-live shard.  Once every shard is alive
        again, :meth:`health` reports ``degraded: False`` and the
        distributed max-cover path resumes.
        """
        if self.snapshot_path is None:
            raise ValidationError(
                "respawning needs a snapshot: construct the coordinator "
                "with snapshot_path= (see `octopus snapshot`)"
            )
        respawned: List[int] = []
        with self._respawn_lock:
            if self.closed:
                return respawned
            for index, handle in enumerate(self._handles):
                if handle.is_alive():
                    continue
                # Reap the dead process and retire its pipe endpoint.
                try:
                    handle.connection.close()
                except OSError:
                    pass
                handle.process.join(timeout=2.0)
                self._reclaim_arena(handle.arena)
                parent_end, child_end = self._context.Pipe(duplex=True)
                # Unlike the first fork, the respawned shard must *build*
                # its replica (snapshot restore re-runs the index build),
                # and a pooled execution_backend forks its own workers for
                # that — which a daemonic child may not do.  Non-daemon is
                # safe here: the serve loop exits on pipe EOF the moment
                # the coordinator goes away.
                process = self._context.Process(
                    target=shard_respawn_main,
                    args=(
                        child_end,
                        self.snapshot_path,
                        handle.shard_id,
                        self.shards,
                        handle.node_range,
                        handle.arena,
                    ),
                    name=f"octopus-shard-{handle.shard_id}",
                    daemon=False,
                )
                process.start()
                child_end.close()
                fresh = _ShardHandle(
                    handle.shard_id,
                    process,
                    parent_end,
                    handle.node_range,
                    handle.arena,
                )
                try:
                    fresh.call(Ping(), timeout=self.shard_timeout)
                except ShardError:
                    fresh.shutdown(timeout=2.0)
                    raise
                self._handles[index] = fresh
                respawned.append(handle.shard_id)
        return respawned

    @staticmethod
    def _reclaim_arena(arena: Optional[ShmArena]) -> None:
        """Clear a dead shard's leftover grow-files before its successor
        inherits the arena: segment creation is ``O_EXCL``, so a stale
        ``.g<n>`` file would push the respawned writer onto the inline
        pickle fallback.  The session directory is coordinator-owned, so
        unlinking here is safe — the shard is dead and its replies are
        out of rotation."""
        if arena is None:
            return
        arena.reset()
        pattern = os.path.join(
            arena.session_path, arena.base_segment + ".g*"
        )
        for path in glob.glob(pattern):
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover — cleanup is best-effort
                pass

    def close(self) -> None:
        """Drain and stop every shard process; idempotent."""
        if self.closed:
            return
        self.closed = True
        for handle in self._handles:
            handle.shutdown(timeout=min(self.shard_timeout, 10.0))
        # Shards are down (or terminated): reclaim the data plane.
        for handle in self._handles:
            if handle.arena is not None:
                handle.arena.close()
        if self._shm_session is not None:
            self._shm_session.close()

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- convenience delegation (drop-in dispatcher, like the executors) --

    @property
    def backend(self) -> Octopus:
        """The compute backend of the wrapped (coordinator-side) service."""
        return self.service.backend

    @property
    def cache(self):
        """The authoritative result cache (shard replicas run uncached)."""
        return self.service.cache

    @property
    def metrics(self):
        """The authoritative metrics collector."""
        return self.service.metrics

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _live_handles(self) -> List[_ShardHandle]:
        return [handle for handle in self._handles if handle.is_alive()]

    def _owner_shard(self, node: int) -> Optional[_ShardHandle]:
        """The shard whose node range contains *node*."""
        for handle in self._handles:
            low, high = handle.node_range
            if low <= node < high:
                return handle
        return None

    def _pick_routed(self, typed: ServiceRequest) -> Optional[_ShardHandle]:
        """Owner shard for user-affine requests, else round-robin over live
        shards; ``None`` when the whole cluster is down."""
        if isinstance(typed, (SuggestKeywordsRequest, ExplorePathsRequest)):
            try:
                node = self.service.backend.resolve_user(typed.user)
            except Exception:  # noqa: BLE001 — shard produces the exact error
                node = None
            if node is not None:
                owner = self._owner_shard(node)
                if owner is not None and owner.is_alive():
                    return owner
        live = self._live_handles()
        if not live:
            return None
        return live[next(self._round_robin) % len(live)]

    # ------------------------------------------------------------------
    # Execution paths
    # ------------------------------------------------------------------

    def _finish(
        self,
        response: ServiceResponse,
        started: float,
        key: Optional[Tuple],
    ) -> ServiceResponse:
        """Stamp latency, record metrics, populate the parent cache.

        The cached copy is stored with its tracing fields stripped — a
        later hit belongs to a different request, so the id of the
        request that happened to compute the entry must never leak into
        it — and the returned response is stamped with the active trace
        (overriding any shard-side stamp with the same id).
        """
        response = dataclasses.replace(
            response, latency_ms=(time.perf_counter() - started) * 1e3
        )
        self.service.metrics.record(response)
        if key is not None and response.ok and not response.cache_hit:
            self.service.cache.put(
                key,
                dataclasses.replace(
                    response,
                    payload=copy.deepcopy(response.payload),
                    request_id=None,
                    timings=None,
                ),
            )
        return stamp_response(response)

    @staticmethod
    def _safe_cache_key(typed: ServiceRequest) -> Optional[Tuple]:
        try:
            key = typed.cache_key()
            if key is not None:
                hash(key)
            return key
        except TypeError:
            return None  # unhashable values fail validation downstream

    def _distributable(self, typed: ServiceRequest) -> bool:
        """Whether the distributed max-cover path reproduces this config.

        Chunk-partitioned sampling is the semantics of the pooled backends;
        with ``execution_backend="serial"`` the config pins the historical
        single-stream draw order, which only a whole-query replica
        reproduces — so serial configs always route.  A degraded cluster
        also routes: the fan-out needs every shard's chunk range.
        """
        if not isinstance(typed, TargetedInfluencersRequest):
            return False
        if self.service.backend.execution is None:
            return False
        return all(handle.is_alive() for handle in self._handles)

    def _compute(self, typed: ServiceRequest) -> ServiceResponse:
        if self._distributable(typed):
            try:
                return self._execute_targeted_distributed(typed)
            except ShardError:
                # A shard died or stalled mid-session.  Whole-query routing
                # on a live replica computes the identical bytes.
                pass
        handle = self._pick_routed(typed)
        if handle is None:
            return ServiceResponse.failure(
                typed.service, "internal_error", "no live shards in the cluster"
            )
        trace = current_trace()
        try:
            with trace_stage(f"shard{handle.shard_id}.roundtrip"):
                return handle.call(
                    ExecuteRequest(
                        typed,
                        request_id=trace.request_id
                        if trace is not None
                        else None,
                    ),
                    timeout=self.shard_timeout,
                )
        except ShardDeadError as error:
            return ServiceResponse.failure(
                typed.service,
                "internal_error",
                f"shard {handle.shard_id} died while serving the request: "
                f"{error}",
            )
        except ShardTimeoutError as error:
            return ServiceResponse.failure(
                typed.service,
                "internal_error",
                f"shard {handle.shard_id} did not answer in time: {error}",
            )
        except ShardCommandError as error:
            return ServiceResponse.failure(
                typed.service,
                "internal_error",
                f"shard {handle.shard_id} failed: {error}",
            )

    # ------------------------------------------------------------------
    # Distributed targeted IM (the fan-out max-cover pipeline)
    # ------------------------------------------------------------------

    def _execute_targeted_distributed(
        self, request: TargetedInfluencersRequest
    ) -> ServiceResponse:
        """Mirror of the single-process targeted handler, fanned out.

        Every validation, draw and float operation replays the serial code
        path on the coordinator's replica; only the chunk sampling and the
        per-round coverage bookkeeping run on the shards.  Raises
        :class:`ShardError` (only) when the fan-out itself fails, so the
        caller can fall back to whole-query routing.
        """
        backend = self.service.backend
        config = backend.config
        try:
            request.validate()  # the ValidationMiddleware step, mirrored
        except ValidationError as error:
            return ServiceResponse.failure(
                request.service, "invalid_request", str(error)
            )
        try:
            k = request.k if request.k is not None else config.default_k
            check_positive(k, "k")
            resolved = backend.parse_keywords(request.keywords)
            audience_resolved = (
                backend.parse_keywords(request.audience_keywords)
                if request.audience_keywords is not None
                else resolved
            )
            started = time.perf_counter()
            gamma = backend.topic_model.keyword_topic_posterior(list(resolved))
            query = KeywordQuery(keywords=resolved, gamma=gamma, k=k)
            engine = TargetedKeywordIM(
                backend.edge_weights,
                backend.inverted_index,
                num_sets=request.num_sets,
                seed=config.seed,
                backend=backend.execution,
                rr_kernel=config.rr_kernel,
            )
            word_ids = backend.topic_model.vocabulary.ids_of(
                list(audience_resolved)
            )
            audience = engine.audience_for_keywords(word_ids)
            seeds, weighted_spread, statistics = self._distributed_cover_query(
                engine, gamma, k, audience
            )
            payload = {
                "keywords": list(query.keywords),
                "k": query.k,
                "gamma": jsonify(query.gamma),
                "seeds": list(seeds),
                "labels": [backend.graph.label_of(node) for node in seeds],
                "spread": float(weighted_spread),
                "marginal_gains": [],
                "elapsed_seconds": float(time.perf_counter() - started),
                "statistics": jsonify(statistics),
            }
            return ServiceResponse.success(request.service, payload)
        except ShardError:
            raise
        except ValidationError as error:
            return ServiceResponse.failure(
                request.service, "invalid_request", str(error)
            )
        except Exception as error:  # noqa: BLE001 — envelope contract
            return ServiceResponse.failure(
                request.service,
                "internal_error",
                f"{type(error).__name__}: {error}",
            )

    def _distributed_cover_query(
        self,
        engine: TargetedKeywordIM,
        gamma: np.ndarray,
        k: int,
        audience: np.ndarray,
    ) -> Tuple[List[int], float, Dict[str, float]]:
        """The fanned-out body of :meth:`TargetedKeywordIM.query`.

        Prelude (audience checks, root draws, chunk plan) replays the
        serial engine draw-for-draw on the coordinator; shards sample their
        contiguous chunk ranges and answer greedy cover rounds; the merge
        arithmetic (:mod:`repro.cluster.merge`) recombines them exactly.
        """
        gamma = check_simplex(gamma, "gamma")
        check_positive(k, "k")
        weights = engine._check_audience(audience)
        num_sets = engine.num_sets
        check_positive(num_sets, "num_sets")
        num_nodes = engine.graph.num_nodes
        total_weight = float(weights.sum())
        root_distribution = weights / total_weight
        roots = engine._rng.choice(
            num_nodes, size=num_sets, p=root_distribution
        )
        root_cycle = [int(root) for root in roots]
        sequence = seed_to_sequence(engine._rng)
        plan = rr_chunk_plan(
            num_sets, DEFAULT_RR_CHUNK_SIZE, sequence, root_cycle
        )
        session = f"cover-{next(self._session_ids)}"
        handles = self._handles
        bounds = partition_contiguous(len(plan), len(handles))
        sample_commands = [
            SampleShard(
                session=session,
                gamma=gamma,
                chunks=tuple(
                    ChunkSpec(
                        count=count,
                        seed=child,
                        roots=tuple(chunk_roots)
                        if chunk_roots is not None
                        else None,
                    )
                    for count, child, chunk_roots in plan[low:high]
                ),
                kernel=engine.rr_kernel,
            )
            for low, high in bounds
        ]
        acquired: List[_ShardHandle] = []
        try:
            for handle in handles:
                if not handle.lock.acquire(timeout=self.shard_timeout):
                    raise ShardTimeoutError(
                        f"shard {handle.shard_id} is busy (lock not free "
                        f"within {self.shard_timeout:.1f}s)"
                    )
                acquired.append(handle)
            sample_infos = self._exchange_all(handles, sample_commands)
            # Place each shard's member array inside the global
            # concatenation: bases are prefix sums over shard order.
            total_members = 0
            bases: List[int] = []
            for info in sample_infos:
                bases.append(total_members)
                total_members += int(info["num_members"])
            init_replies = self._exchange_all(
                handles,
                [
                    CoverInit(
                        session=session, base=base, total_members=total_members
                    )
                    for base in bases
                ],
            )
            total_coverage = merge_coverage(
                [reply["coverage"] for reply in init_replies]
            )
            first_seen = merge_first_seen(
                [reply["first_seen"] for reply in init_replies]
            )
            seeds: List[int] = []
            covered_total = 0
            for _ in range(min(k, num_nodes)):
                best = pick_cover_seed(total_coverage, first_seen)
                if best is None:
                    break
                seeds.append(best)
                round_replies = self._exchange_all(
                    handles,
                    [CoverRound(session=session, seed_node=best)] * len(handles),
                )
                total_coverage = merge_coverage(
                    [reply["coverage"] for reply in round_replies]
                )
                covered_total = sum(
                    int(reply["covered"]) for reply in round_replies
                )
        finally:
            # Even when the fan-out aborts (a shard died mid-session and
            # the caller falls back to routing), the survivors must not
            # keep the session's packed arrays resident forever.
            self._drop_session(acquired, session)
            for handle in acquired:
                handle.lock.release()
        # Exactly the serial estimator arithmetic, applied to the same
        # integers: greedy's n-scaled spread, then the audience rescale.
        covered_fraction_spread = (
            num_nodes * float(covered_total) / num_sets
        )
        covered_fraction = covered_fraction_spread / num_nodes
        weighted_spread = total_weight * covered_fraction
        statistics = {
            "audience_total_weight": total_weight,
            "audience_users": float(np.count_nonzero(weights)),
            "covered_fraction": covered_fraction,
            "num_rr_sets": float(num_sets),
        }
        return seeds, weighted_spread, statistics

    def _exchange_all(
        self, handles: Sequence[_ShardHandle], commands: Sequence[Any]
    ) -> List[Any]:
        """Send to every shard, then collect every reply (locks held).

        Sends go out before any receive so shards compute concurrently;
        each receive is individually bounded by the shard timeout.
        """
        started = time.perf_counter()
        sequences = [
            handle.send_locked(command)
            for handle, command in zip(handles, commands)
        ]
        replies = [
            handle.receive_locked(sequence, self.shard_timeout)
            for handle, sequence in zip(handles, sequences)
        ]
        record_stage("cluster.exchange", time.perf_counter() - started)
        return replies

    def _drop_session(
        self, handles: Sequence[_ShardHandle], session: str
    ) -> None:
        """Best-effort session cleanup on every still-live shard."""
        for handle in handles:
            if not handle.is_alive():
                continue
            try:
                sequence = handle.send_locked(DropSession(session=session))
                handle.receive_locked(sequence, min(self.shard_timeout, 5.0))
            except ShardError:
                continue

    # ------------------------------------------------------------------
    # Introspection helpers (tests, benchmarks)
    # ------------------------------------------------------------------

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Full per-shard statistics snapshots (live shards only)."""
        snapshots = []
        for handle in self._handles:
            if not handle.is_alive():
                continue
            try:
                snapshots.append(
                    handle.call(ShardStatsCmd(), timeout=self.shard_timeout)
                )
            except ShardError:
                continue
        return snapshots

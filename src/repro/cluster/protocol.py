"""The typed shard protocol spoken over each shard's pipe.

Small frozen dataclasses, one per operation, pickled over a
:mod:`multiprocessing` duplex pipe.  Every command travels as
``(sequence_number, command)`` and every reply as
``(sequence_number, ShardReply)``; the coordinator discards replies whose
sequence number it has already given up on (a bounded wait that expired),
so one slow answer can never desynchronise the pipe for the commands that
follow it.

The protocol is deliberately minimal — the four verbs the ISSUE names plus
lifecycle plumbing:

=================  ====================================================
command            shard action
=================  ====================================================
``ExecuteRequest`` serve one full :class:`ServiceRequest` on the shard's
                   forked service replica (routing path)
``SampleShard``    sample the shard's contiguous chunk range of one RR
                   batch (per-chunk spawned streams; the sampling path)
``CoverInit``      build the local greedy state; report the initial
                   coverage and global-shifted first-occurrence arrays
``CoverRound``     fold one selected seed in; report updated coverage
                   and the local covered-set count (marginal-gain report)
``EstimateCover``  covered-set count of an arbitrary seed set
``DropSession``    free one sampling session's arrays
``ShardStatsCmd``  serving counters of the shard replica
``Ping``           liveness probe (pid + per-shard request counters)
``Shutdown``       reply, close the pipe, exit the process
=================  ====================================================

Large int64 reply arrays — the ``coverage`` / ``first_seen`` vectors of
``CoverInit`` and ``CoverRound`` — may travel as
:class:`~repro.backend.shm.ShmSlice` descriptors instead of pickled
ndarrays when the shared-memory data plane is on: the shard writes the
array into its coordinator-owned arena and the frame carries only the
(segment, offset, lengths) triple; the coordinator reconstructs a
zero-copy view.  Frames are shape-agnostic — a reply field is "ndarray or
descriptor" and the coordinator's resolver normalises it — so the pickle
twin (``REPRO_SHM=0``) speaks the identical protocol with inline arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

import numpy as np

from repro.backend.shm import ShmSlice
from repro.service.requests import ServiceRequest

__all__ = [
    "ChunkSpec",
    "ShmSlice",
    "CoverInit",
    "CoverRound",
    "DropSession",
    "EstimateCover",
    "ExecuteRequest",
    "Ping",
    "SampleShard",
    "ShardReply",
    "ShardStatsCmd",
    "Shutdown",
]


@dataclass(frozen=True)
class ChunkSpec:
    """One fixed-size sampling chunk of the global plan.

    Carries exactly what :func:`repro.backend.base.rr_chunk_plan` emits for
    the chunk: its set count, its private spawned seed sequence, and its
    slice of the root cycle (``None`` for uniform roots).
    """

    count: int
    seed: np.random.SeedSequence
    roots: Optional[Tuple[int, ...]] = None


@dataclass(frozen=True)
class ExecuteRequest:
    """Serve one whole typed request on the shard's service replica.

    ``request_id`` carries the front-door trace id across the fork
    boundary (context variables do not survive ``fork()``): the shard
    worker re-activates a trace under that id so its log lines and the
    envelope it returns stay correlated with the coordinator's request.
    ``None`` — the default, so older pickled frames still construct —
    means the request is untraced.
    """

    request: ServiceRequest
    request_id: Optional[str] = None


@dataclass(frozen=True)
class SampleShard:
    """Sample this shard's chunk range of one RR batch under *gamma*."""

    session: str
    gamma: Any  # np.ndarray; Any keeps the dataclass eq/pickle simple
    chunks: Tuple[ChunkSpec, ...]
    kernel: str


@dataclass(frozen=True)
class CoverInit:
    """Build greedy state for a sampled session.

    ``base``/``total_members`` place the shard's member array inside the
    global concatenation (see :class:`repro.cluster.merge.ShardCoverState`).
    """

    session: str
    base: int
    total_members: int


@dataclass(frozen=True)
class CoverRound:
    """Fold the coordinator's chosen seed into the local cover state."""

    session: str
    seed_node: int


@dataclass(frozen=True)
class EstimateCover:
    """Covered-set count of *seeds* over the session's local batch."""

    session: str
    seeds: Tuple[int, ...]


@dataclass(frozen=True)
class DropSession:
    """Release a session's packed arrays and cover state."""

    session: str


@dataclass(frozen=True)
class ShardStatsCmd:
    """Snapshot the shard replica's serving statistics."""


@dataclass(frozen=True)
class Ping:
    """Liveness probe."""


@dataclass(frozen=True)
class Shutdown:
    """Acknowledge, close the pipe, exit the worker process."""


@dataclass(frozen=True)
class ShardReply:
    """Uniform reply envelope: a value on success, a message on failure.

    A failed command never kills the worker — the error crosses the pipe
    and the coordinator turns it into a structured ``internal_error``
    service envelope (or a fallback), mirroring the service layer's
    "the envelope is the contract" rule.
    """

    ok: bool
    value: Any = None
    error: str = ""
    details: dict = field(default_factory=dict)

"""The long-lived shard worker process.

A :class:`ShardWorker` owns one partition of the cluster's state for the
whole server lifetime — unlike a process-pool task, it keeps mutable index
state (delayed sketch materialization, session-local packed RR batches)
resident between requests:

* a **full service replica**, inherited copy-on-write from the coordinator
  fork, with the fork-hygiene adjustments of the process-pool executor
  (pooled compute backend dropped, result cache disabled — the
  coordinator's cache is the authoritative one);
* a **node-range partition** ``[node_lo, node_hi)``: user-affine queries
  (suggestion, path exploration) are routed here by the coordinator, so
  only this shard ever materializes the influencer-index sketches its
  users touch;
* a **chunk-range share** of each distributed sampling session: the shard
  samples exactly the chunks the coordinator assigns (per-chunk spawned
  RNG streams from :func:`repro.backend.base.rr_chunk_plan`), keeps the
  packed batch resident, and answers greedy cover rounds over it.

The worker is single-threaded and command-at-a-time: the coordinator holds
the shard's pipe lock for each exchange, so no locking is needed here.  A
failed command becomes an error :class:`~repro.cluster.protocol.ShardReply`
— the process only exits on ``Shutdown`` or a closed pipe.
"""

from __future__ import annotations

import os
import signal
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.backend.shm import ShmArena, ShmSlice
from repro.cluster.merge import ShardCoverState
from repro.cluster.protocol import (
    CoverInit,
    CoverRound,
    DropSession,
    EstimateCover,
    ExecuteRequest,
    Ping,
    SampleShard,
    ShardReply,
    ShardStatsCmd,
    Shutdown,
)
from repro.obs.trace import RequestTrace, trace_context
from repro.propagation.kernels import gather_csr_slices
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import sample_packed_rr_sets
from repro.service.concurrent import _adopt_worker_service
from repro.service.dispatcher import OctopusService
from repro.utils.logging import get_logger

_logger = get_logger("cluster.worker")

__all__ = ["ShardWorker", "shard_main", "shard_respawn_main"]


class ShardWorker:
    """Executes shard protocol commands against this process's replica."""

    def __init__(
        self,
        service: OctopusService,
        shard_id: int,
        num_shards: int,
        node_range: Tuple[int, int],
        arena: Optional[ShmArena] = None,
    ) -> None:
        self.service = service
        self.shard_id = int(shard_id)
        self.num_shards = int(num_shards)
        self.node_range = (int(node_range[0]), int(node_range[1]))
        self.arena = arena
        self._sessions: Dict[str, Dict[str, Any]] = {}
        self.commands_served = 0
        self.requests_executed = 0

    def _ship(self, array: np.ndarray) -> Union[np.ndarray, ShmSlice]:
        """Move a reply array into the arena; descriptor out, array back in.

        The arena is rewound at the start of every cover command (see the
        handlers), which is safe because the coordinator's protocol is
        strictly one-command-in-flight per shard *and* it folds each
        reply's views into fresh merge arrays before sending the next
        command.  A full arena (``OSError``) degrades to the inline
        pickle payload — identical bytes, just slower.
        """
        if self.arena is None:
            return array
        try:
            return self.arena.write_arrays((array,))
        except OSError:  # pragma: no cover — filesystem refusal
            return array

    # ------------------------------------------------------------------
    # Command dispatch
    # ------------------------------------------------------------------

    def handle(self, command: Any) -> ShardReply:
        """Execute one command; never raises (errors become replies)."""
        self.commands_served += 1
        try:
            if isinstance(command, ExecuteRequest):
                return self._handle_execute(command)
            if isinstance(command, SampleShard):
                return self._handle_sample(command)
            if isinstance(command, CoverInit):
                return self._handle_cover_init(command)
            if isinstance(command, CoverRound):
                return self._handle_cover_round(command)
            if isinstance(command, EstimateCover):
                return self._handle_estimate(command)
            if isinstance(command, DropSession):
                self._sessions.pop(command.session, None)
                return ShardReply(ok=True)
            if isinstance(command, ShardStatsCmd):
                return self._handle_stats()
            if isinstance(command, Ping):
                return ShardReply(
                    ok=True,
                    value={
                        "shard": self.shard_id,
                        "pid": os.getpid(),
                        "commands": self.commands_served,
                        "requests": self.requests_executed,
                        "node_range": list(self.node_range),
                        "sessions": len(self._sessions),
                    },
                )
            if isinstance(command, Shutdown):
                return ShardReply(ok=True, value="bye")
            return ShardReply(
                ok=False, error=f"unknown command {type(command).__name__}"
            )
        except Exception as error:  # noqa: BLE001 — the reply is the contract
            return ShardReply(
                ok=False, error=f"{type(error).__name__}: {error}"
            )

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _handle_execute(self, command: ExecuteRequest) -> ShardReply:
        """Run a whole request on the replica's full middleware stack.

        A propagated ``request_id`` (the front-door trace crossed the
        fork boundary inside the command frame) re-activates a shard-side
        trace for the duration: the replica's log lines carry the id and
        the envelope it returns is stamped with it — the coordinator's
        own stamp then overrides with the same id, keeping the
        correlation end to end.
        """
        self.requests_executed += 1
        if command.request_id is None:
            return ShardReply(
                ok=True, value=self.service.execute(command.request)
            )
        with trace_context(RequestTrace(command.request_id)):
            response = self.service.execute(command.request)
        _logger.debug(
            "shard %d served %s request_id=%s",
            self.shard_id,
            command.request.service,
            command.request_id,
        )
        return ShardReply(ok=True, value=response)

    def _handle_sample(self, command: SampleShard) -> ShardReply:
        """Sample this shard's chunk range into a resident packed batch.

        Each chunk draws from its own pre-spawned stream, exactly as a
        pooled backend's chunk worker would — the shard boundary adds
        scheduling, never different randomness.
        """
        backend = self.service.backend
        graph = backend.graph
        gamma = np.asarray(command.gamma, dtype=np.float64)
        probabilities = backend.edge_weights.edge_probabilities(gamma)
        chunks = []
        for spec in command.chunks:
            rng = np.random.default_rng(spec.seed)
            roots = list(spec.roots) if spec.roots is not None else None
            chunks.append(
                sample_packed_rr_sets(
                    graph, probabilities, spec.count, rng, roots, command.kernel
                )
            )
        packed = PackedRRSets.from_chunks(graph.num_nodes, chunks)
        self._sessions[command.session] = {"packed": packed}
        return ShardReply(
            ok=True,
            value={
                "num_sets": packed.num_sets,
                "num_members": int(len(packed.nodes)),
            },
        )

    def _session(self, session: str) -> Dict[str, Any]:
        state = self._sessions.get(session)
        if state is None:
            raise KeyError(f"no sampling session {session!r} on this shard")
        return state

    def _handle_cover_init(self, command: CoverInit) -> ShardReply:
        """Build the greedy state; report coverage + tie-break arrays."""
        state = self._session(command.session)
        cover = ShardCoverState(
            state["packed"], command.base, command.total_members
        )
        state["cover"] = cover
        if self.arena is not None:
            self.arena.reset()
        return ShardReply(
            ok=True,
            value={
                "coverage": self._ship(cover.coverage),
                "first_seen": self._ship(cover.first_seen_global),
            },
        )

    def _handle_cover_round(self, command: CoverRound) -> ShardReply:
        """One marginal-gain round: fold the chosen seed, report state."""
        state = self._session(command.session)
        cover: Optional[ShardCoverState] = state.get("cover")
        if cover is None:
            raise KeyError(
                f"session {command.session!r} has no cover state (CoverInit "
                f"not run)"
            )
        cover.apply_seed(int(command.seed_node))
        if self.arena is not None:
            self.arena.reset()
        return ShardReply(
            ok=True,
            value={
                "coverage": self._ship(cover.coverage),
                "covered": cover.covered_count,
            },
        )

    def _handle_estimate(self, command: EstimateCover) -> ShardReply:
        """Covered-set count for an arbitrary seed set (no state change)."""
        state = self._session(command.session)
        packed: PackedRRSets = state["packed"]
        seeds = np.unique(np.asarray(list(command.seeds), dtype=np.int64))
        seeds = seeds[(seeds >= 0) & (seeds < packed.num_nodes)]
        if seeds.size == 0 or packed.num_sets == 0:
            return ShardReply(ok=True, value={"covered": 0})
        member_offsets, member_sets = packed.membership()
        indices = gather_csr_slices(
            member_offsets[seeds], member_offsets[seeds + 1]
        )
        covered = int(np.unique(member_sets[indices]).size)
        return ShardReply(ok=True, value={"covered": covered})

    def _handle_stats(self) -> ShardReply:
        """The replica's serving stats plus shard-local counters."""
        stats = dict(self.service.stats())
        stats["shard.id"] = float(self.shard_id)
        stats["shard.commands"] = float(self.commands_served)
        stats["shard.requests"] = float(self.requests_executed)
        stats["shard.sessions"] = float(len(self._sessions))
        stats["shard.node_lo"] = float(self.node_range[0])
        stats["shard.node_hi"] = float(self.node_range[1])
        return ShardReply(ok=True, value=stats)


def shard_main(
    connection,
    service: OctopusService,
    shard_id: int,
    num_shards: int,
    node_range: Tuple[int, int],
    arena: Optional[ShmArena] = None,
) -> None:
    """Entry point of a forked shard process.

    Applies the same fork hygiene as the process-pool executor's worker
    initializer (drop the inherited pool, disable the replica's result
    cache — the coordinator's cache is authoritative), then serves
    ``(sequence, command)`` frames until ``Shutdown`` or a closed pipe.

    *arena* — when the shared-memory data plane is on — is this shard's
    slice of the coordinator-owned session: created before the fork (the
    base mapping is inherited), written here, read (and on close,
    reclaimed) by the coordinator.  The shard never owns a segment, so a
    crashed shard cannot leak one.

    The shard ignores ``SIGINT``: a terminal Ctrl-C hits the whole
    foreground process group, and shards must survive it so the
    coordinator's graceful drain can finish in-flight work and stop them
    through the ``Shutdown`` command (a wedged shard is still covered —
    the coordinator escalates to ``terminate()`` after its bounded join).
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    _serve_shard(connection, service, shard_id, num_shards, node_range, arena)


def shard_respawn_main(
    connection,
    snapshot_path: str,
    shard_id: int,
    num_shards: int,
    node_range: Tuple[int, int],
    arena: Optional[ShmArena] = None,
) -> None:
    """Entry point of a shard respawned from a snapshot.

    Unlike :func:`shard_main`, the replica is not inherited copy-on-write
    from the coordinator: the child rebuilds it from the OCTOSNAP file
    (:func:`repro.snapshot.load_snapshot`), which reconstructs the exact
    constructor inputs and re-runs the seed-keyed index build — so the
    respawned replica answers with the same bytes as the shard it
    replaces.  The node range and arena are the dead shard's own (the
    arena's base mapping is inherited across the fork exactly as at first
    construction, since the coordinator owns the session), so routing and
    chunk-range ownership resume unchanged.

    A snapshot that fails to load is reported over the pipe as an error
    reply to the coordinator's boot-confirmation ping rather than a silent
    child death, so ``respawn_dead_shards`` surfaces the cause.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    try:
        from repro.snapshot import load_snapshot

        octopus = load_snapshot(snapshot_path)
        # A pooled execution backend forked workers (and possibly a shm
        # session) for the index build; release them cleanly now — the
        # serve loop's fork hygiene would only drop the reference, and a
        # pool re-creates lazily if a routed request ever needs one.
        execution = getattr(octopus, "execution", None)
        if execution is not None and hasattr(execution, "close"):
            execution.close()
        service = OctopusService(octopus)
    except BaseException as error:  # noqa: BLE001 — reported, then exit
        try:
            sequence, _command = connection.recv()
            connection.send(
                (
                    sequence,
                    ShardReply(
                        ok=False,
                        error=f"snapshot restore failed: "
                        f"{type(error).__name__}: {error}",
                    ),
                )
            )
        except (EOFError, OSError, BrokenPipeError):
            pass
        finally:
            try:
                connection.close()
            except OSError:
                pass
        return
    _serve_shard(connection, service, shard_id, num_shards, node_range, arena)


def _serve_shard(
    connection,
    service: OctopusService,
    shard_id: int,
    num_shards: int,
    node_range: Tuple[int, int],
    arena: Optional[ShmArena],
) -> None:
    """The shared shard body: fork hygiene, then the command loop.

    Applies the same hygiene as the process-pool executor's worker
    initializer (drop any inherited pool, disable the replica's result
    cache — the coordinator's cache is authoritative), then serves
    ``(sequence, command)`` frames until ``Shutdown`` or a closed pipe.
    """
    _adopt_worker_service(service)
    # The coordinator enforces the configured rate limit once, for every
    # path; a forked private limiter here would add a second, skewed
    # budget on routed requests.  The layer object is referenced by the
    # replica's pre-composed middleware chain, so it is neutralised in
    # place (an infinite bucket) rather than removed.
    from repro.service.middleware import RateLimitMiddleware

    for layer in service.middleware:
        if isinstance(layer, RateLimitMiddleware):
            layer.burst = float("inf")
            layer._tokens = float("inf")
    worker = ShardWorker(service, shard_id, num_shards, node_range, arena)
    try:
        while True:
            try:
                sequence, command = connection.recv()
            except (EOFError, OSError):
                break  # coordinator went away; nothing left to serve
            reply = worker.handle(command)
            try:
                connection.send((sequence, reply))
            except (BrokenPipeError, OSError):
                break
            if isinstance(command, Shutdown):
                break
    finally:
        try:
            connection.close()
        except OSError:  # pragma: no cover — close is best-effort
            pass

"""Synthetic user-name generation for the dataset labels.

The demo's auto-completion and label-based lookups need realistic,
unique names; we combine fixed first/last pools deterministically and add a
middle initial once the plain combinations run out.
"""

from __future__ import annotations

from typing import List

__all__ = ["generate_names"]

_FIRST = [
    "Ada", "Alan", "Alice", "Andrew", "Anna", "Barbara", "Ben", "Carol",
    "Chen", "Claire", "Daniel", "David", "Diana", "Edgar", "Elena", "Eric",
    "Fatima", "Feng", "Grace", "Haruki", "Helen", "Ivan", "James", "Jia",
    "John", "Judy", "Kenji", "Laura", "Lei", "Linda", "Maria", "Mark",
    "Mei", "Michael", "Nina", "Omar", "Pedro", "Priya", "Rahul", "Rosa",
    "Samuel", "Sofia", "Tanvi", "Thomas", "Uma", "Victor", "Wei", "Xin",
    "Yuki", "Zhang",
]

_LAST = [
    "Abadi", "Agarwal", "Bailis", "Bernstein", "Brin", "Chaudhuri", "Chen",
    "Codd", "Dean", "Dewitt", "Dijkstra", "Du", "Fagin", "Fan", "Garcia",
    "Gray", "Guo", "Han", "Hellerstein", "Hinton", "Hopper", "Huang",
    "Ioannidis", "Jagadish", "Jordan", "Karp", "Kleinberg", "Knuth",
    "Kossmann", "Lamport", "Lee", "Leskovec", "Li", "Liu", "Madden",
    "Mendelzon", "Naughton", "Ooi", "Page", "Papadimitriou", "Ramakrishnan",
    "Silberschatz", "Stonebraker", "Tan", "Tarjan", "Ullman", "Valiant",
    "Vardi", "Wang", "Widom", "Wu", "Xu", "Yang", "Zhang", "Zhou", "Zhu",
]


def generate_names(count: int) -> List[str]:
    """Return *count* distinct person names, deterministically.

    Cycles through first×last combinations; once exhausted, disambiguates
    with middle initials (``"Ada B. Chen"``) and then numeric suffixes.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    names: List[str] = []
    plain = len(_FIRST) * len(_LAST)
    for index in range(count):
        first = _FIRST[index % len(_FIRST)]
        last = _LAST[(index // len(_FIRST)) % len(_LAST)]
        if index < plain:
            names.append(f"{first} {last}")
            continue
        generation = index // plain
        if generation <= 26:
            middle = chr(ord("A") + (generation - 1) % 26)
            names.append(f"{first} {middle}. {last}")
        else:
            names.append(f"{first} {last} {generation}")
    return names

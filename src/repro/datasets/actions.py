"""The dataset bundle: social graph + action logs + ground truth.

"The data fed to OCTOPUS consists of 1) a social graph that models SN users
and their relationships and 2) a set of social actions (UGC) from the users"
(§II-A).  A :class:`SocialDataset` carries both, plus the generating model's
ground truth so experiments can compare learned against planted parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.topics.edges import TopicEdgeWeights
from repro.topics.em import ItemObservation
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError

__all__ = ["SocialDataset"]


@dataclass
class SocialDataset:
    """A social network with action logs and generating ground truth.

    Attributes
    ----------
    graph:
        The social graph (labelled with user names).
    vocabulary:
        Keywords extracted from the action logs.
    items:
        The action log: each item is a propagated piece of UGC with its
        keywords and its propagation events — the EM learner's input.
    user_keywords:
        Word ids used by each user (candidate pool for keyword suggestion).
    topic_names:
        Human-readable topic names (radar-diagram axes).
    true_topic_model / true_edge_weights:
        The planted model that generated the actions; ``None`` for datasets
        loaded from external logs.
    node_affinities:
        Planted per-user topic-interest vectors (``None`` when unknown).
    """

    name: str
    graph: SocialGraph
    vocabulary: Vocabulary
    items: List[ItemObservation]
    user_keywords: Dict[int, List[int]]
    topic_names: List[str]
    true_topic_model: Optional[TopicModel] = None
    true_edge_weights: Optional[TopicEdgeWeights] = None
    node_affinities: Optional[np.ndarray] = None
    metadata: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for user in self.user_keywords:
            if not 0 <= user < self.graph.num_nodes:
                raise ValidationError(
                    f"user_keywords references unknown user {user}"
                )

    @property
    def num_topics(self) -> int:
        """Number of planted topics."""
        return len(self.topic_names)

    def summary(self) -> Dict[str, float]:
        """Size statistics used by example scripts and benchmarks."""
        activations = sum(
            sum(1 for event in item.events if event.activated)
            for item in self.items
        )
        exposures = sum(len(item.events) for item in self.items)
        return {
            "num_users": float(self.graph.num_nodes),
            "num_edges": float(self.graph.num_edges),
            "num_items": float(len(self.items)),
            "vocabulary_size": float(len(self.vocabulary)),
            "num_topics": float(self.num_topics),
            "num_exposures": float(exposures),
            "num_activations": float(activations),
        }

    def __repr__(self) -> str:
        return (
            f"SocialDataset(name={self.name!r}, users={self.graph.num_nodes}, "
            f"edges={self.graph.num_edges}, items={len(self.items)}, "
            f"vocabulary={len(self.vocabulary)})"
        )

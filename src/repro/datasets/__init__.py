"""Demo-network substrates (paper Section III).

The paper demonstrates OCTOPUS on the ACMCite citation network and on
Tencent's QQ network; neither is redistributable, so this package generates
synthetic equivalents with *known ground truth* (topic model, per-edge topic
probabilities and node-topic affinities), which additionally lets the test
suite verify EM recovery — something the real data could never support.
"""

from repro.datasets.actions import SocialDataset
from repro.datasets.citation import CitationNetworkGenerator
from repro.datasets.loaders import load_dataset, save_dataset
from repro.datasets.social import SocialNetworkGenerator

__all__ = [
    "SocialDataset",
    "CitationNetworkGenerator",
    "SocialNetworkGenerator",
    "save_dataset",
    "load_dataset",
]

"""Synthetic friendship/e-commerce network — the Tencent QQ substitute.

Mirrors the paper's second deployment: "The social graph consists of QQ
users and their friendship.  We focus on the users' actions related to
e-commerce products.  For example, user u posts an URL of iPhone X, and her
friend v forwards this URL."

The product vocabulary deliberately contains the demo's examples ("game",
"gum", "strawberry", "xylitol") so the QQ scenarios run verbatim.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.actions import SocialDataset
from repro.datasets.citation import build_topic_model
from repro.datasets.names import generate_names
from repro.graph.digraph import SocialGraph
from repro.graph.generators import small_world_digraph
from repro.topics.edges import TopicEdgeWeights
from repro.topics.em import ItemObservation, PropagationEvent
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive

__all__ = ["PRODUCT_TOPICS", "SocialNetworkGenerator"]

# Eight e-commerce categories with product keywords.
PRODUCT_TOPICS: List[Tuple[str, List[str]]] = [
    (
        "game",
        [
            "game", "console", "controller", "esports", "mmorpg",
            "strategy game", "mobile game", "gaming laptop", "headset",
            "graphics card", "keyboard", "stream", "tournament", "arcade",
        ],
    ),
    (
        "food",
        [
            "gum", "strawberry", "xylitol", "chocolate", "snack",
            "coffee", "milk tea", "instant noodles", "candy", "biscuit",
            "honey", "juice", "yogurt", "hotpot",
        ],
    ),
    (
        "fashion",
        [
            "sneakers", "handbag", "dress", "jacket", "jeans",
            "sunglasses", "scarf", "watch", "perfume", "lipstick",
            "backpack", "boots", "hoodie", "bracelet",
        ],
    ),
    (
        "electronics",
        [
            "iphone x", "smartphone", "tablet", "laptop", "camera",
            "earbuds", "charger", "power bank", "smartwatch", "drone",
            "television", "router", "speaker", "monitor",
        ],
    ),
    (
        "sports",
        [
            "basketball", "football", "running shoes", "yoga mat",
            "dumbbell", "bicycle", "swimming goggles", "tennis racket",
            "treadmill", "jersey", "fitness tracker", "skateboard",
            "badminton", "climbing gear",
        ],
    ),
    (
        "travel",
        [
            "flight ticket", "hotel", "luggage", "passport holder",
            "beach resort", "camping tent", "travel pillow", "city tour",
            "theme park", "cruise", "ski pass", "road trip",
            "guidebook", "travel insurance",
        ],
    ),
    (
        "beauty",
        [
            "face mask", "moisturizer", "sunscreen", "shampoo",
            "essence", "foundation", "eye cream", "cleanser",
            "hair dryer", "nail polish", "serum", "toner",
            "makeup brush", "body lotion",
        ],
    ),
    (
        "home",
        [
            "air purifier", "rice cooker", "vacuum robot", "sofa",
            "desk lamp", "mattress", "curtain", "cookware",
            "humidifier", "bookshelf", "storage box", "kettle",
            "wall art", "plant pot",
        ],
    ),
]


class SocialNetworkGenerator:
    """Generates QQ-like friendship datasets with product-share actions."""

    def __init__(
        self,
        num_users: int = 1000,
        friends_per_user: int = 6,
        posts_per_user: int = 3,
        *,
        rewire_probability: float = 0.1,
        reciprocity: float = 0.7,
        keywords_per_post: Tuple[int, int] = (2, 5),
        base_probability: float = 0.35,
        affinity_concentration: float = 0.3,
        exposure_rate: float = 0.85,
        seed: SeedLike = None,
    ) -> None:
        check_positive(num_users, "num_users")
        check_positive(friends_per_user, "friends_per_user")
        check_positive(posts_per_user, "posts_per_user")
        check_in_range(base_probability, 0.0, 1.0, "base_probability")
        check_in_range(exposure_rate, 0.0, 1.0, "exposure_rate")
        if keywords_per_post[0] < 1 or keywords_per_post[1] < keywords_per_post[0]:
            raise ValueError(f"invalid keywords_per_post range {keywords_per_post}")
        self.num_users = num_users
        self.friends_per_user = friends_per_user
        self.posts_per_user = posts_per_user
        self.rewire_probability = rewire_probability
        self.reciprocity = reciprocity
        self.keywords_per_post = keywords_per_post
        self.base_probability = base_probability
        self.affinity_concentration = affinity_concentration
        self.exposure_rate = exposure_rate
        self.seed = seed

    def generate(self) -> SocialDataset:
        """Build the dataset (deterministic for a fixed seed)."""
        rng = as_generator(self.seed)
        num_topics = len(PRODUCT_TOPICS)
        vocabulary, topic_model = build_topic_model(PRODUCT_TOPICS)

        structure = small_world_digraph(
            self.num_users,
            self.friends_per_user,
            self.rewire_probability,
            self.reciprocity,
            seed=rng,
        )
        labels = generate_names(self.num_users)
        graph = SocialGraph.from_edges(
            structure.num_nodes,
            [(u, v) for _e, u, v in structure.edges()],
            labels,
        )

        affinities = rng.dirichlet(
            np.full(num_topics, self.affinity_concentration), size=self.num_users
        )
        edge_weights = TopicEdgeWeights.from_node_affinities(
            graph, affinities, self.base_probability, seed=rng
        )

        items: List[ItemObservation] = []
        user_keywords: Dict[int, List[int]] = {}
        vocab_size = len(vocabulary)
        word_given_topic = topic_model.word_given_topic
        low, high = self.keywords_per_post
        for user in range(graph.num_nodes):
            out_start = graph.out_offsets[user]
            out_stop = graph.out_offsets[user + 1]
            for _post in range(self.posts_per_user):
                topic = int(rng.choice(num_topics, p=affinities[user]))
                length = int(rng.integers(low, high + 1))
                words = rng.choice(
                    vocab_size, size=length, p=word_given_topic[:, topic]
                )
                keywords = [int(w) for w in words]
                user_keywords.setdefault(user, []).extend(keywords)
                events = []
                for edge_id in range(out_start, out_stop):
                    if rng.random() >= self.exposure_rate:
                        continue
                    friend = int(graph.out_targets[edge_id])
                    probability = float(edge_weights.weights[edge_id, topic])
                    forwarded = bool(rng.random() < probability)
                    events.append(PropagationEvent(user, friend, forwarded))
                items.append(ItemObservation.create(keywords, events))
        return SocialDataset(
            name="qq-synthetic",
            graph=graph,
            vocabulary=vocabulary,
            items=items,
            user_keywords=user_keywords,
            topic_names=[name for name, _words in PRODUCT_TOPICS],
            true_topic_model=topic_model,
            true_edge_weights=edge_weights,
            node_affinities=affinities,
            metadata={
                "base_probability": self.base_probability,
                "exposure_rate": self.exposure_rate,
            },
        )

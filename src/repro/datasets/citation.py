"""Synthetic citation social network — the ACMCite substitute.

Reproduces the construction of §II-B/§III on synthetic data: "we process the
raw data to construct a social graph with researchers and the citation
relationships among the researchers.  We take the papers as well as their
citations as action logs.  (...) we extract distinct keywords from paper
titles and take them as W.  Then, we regard a v's paper citing a u's paper
as an item propagated from u to v."

Generation (all parameters planted and returned as ground truth):

1. researchers form a preferential-attachment citation graph whose edges
   point from the cited (influencing) to the citing (influenced) researcher;
2. each researcher draws a Dirichlet topic-affinity vector;
3. per-edge topic probabilities come from the endpoint affinities
   (influence needs shared interest);
4. each paper picks its author's topic, draws title keywords from the
   topic's keyword distribution, and propagates along the author's
   out-edges: every exposure activates with the planted ``pp^z`` — giving
   action logs whose statistics match the model the EM learner fits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.datasets.actions import SocialDataset
from repro.datasets.names import generate_names
from repro.graph.digraph import SocialGraph
from repro.graph.generators import citation_dag
from repro.topics.edges import TopicEdgeWeights
from repro.topics.em import ItemObservation, PropagationEvent
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive

__all__ = ["RESEARCH_TOPICS", "CitationNetworkGenerator", "build_topic_model"]

# Eight research areas with characteristic title keywords; chosen to cover
# the demo's queries ("data mining", "EM algorithm", "social network", ...).
RESEARCH_TOPICS: List[Tuple[str, List[str]]] = [
    (
        "data mining",
        [
            "data mining", "association rules", "frequent patterns",
            "clustering", "outlier detection", "classification",
            "feature selection", "sampling", "itemsets", "decision trees",
            "pattern discovery", "rule mining", "anomaly detection",
            "dimensionality reduction", "ensemble methods",
        ],
    ),
    (
        "machine learning",
        [
            "machine learning", "em algorithm", "neural networks",
            "graphical models", "kernel methods", "reinforcement learning",
            "bayesian inference", "gradient descent", "regression",
            "support vector machines",
            "deep learning", "generative models", "variational inference",
            "latent variables", "topic models",
        ],
    ),
    (
        "databases",
        [
            "query optimization", "transaction processing", "indexing",
            "relational databases", "query processing", "concurrency control",
            "sql", "storage engines", "distributed databases",
            "data integration", "schema matching", "joins",
            "column stores", "recovery", "materialized views",
        ],
    ),
    (
        "social networks",
        [
            "social network", "influence maximization", "network evolution",
            "link prediction", "small-world phenomenon", "community detection",
            "viral marketing", "information diffusion", "graph mining",
            "centrality", "homophily", "cascades",
            "recommendation", "user modeling", "temporal networks",
        ],
    ),
    (
        "systems",
        [
            "operating systems", "distributed systems", "fault tolerance",
            "consensus", "virtualization", "scheduling",
            "file systems", "caching", "replication",
            "cloud computing", "performance analysis", "load balancing",
            "energy efficiency", "scalability", "networking",
        ],
    ),
    (
        "theory",
        [
            "approximation algorithms", "computational complexity",
            "randomized algorithms", "graph theory", "combinatorics",
            "online algorithms", "lower bounds", "np-hardness",
            "submodularity", "linear programming", "hashing",
            "streaming algorithms", "sketching", "game theory",
            "mechanism design",
        ],
    ),
    (
        "information retrieval",
        [
            "information retrieval", "search engines", "ranking",
            "text mining", "natural language processing", "question answering",
            "document classification", "relevance feedback", "web search",
            "crawling", "inverted indexes", "language models",
            "entity resolution", "summarization", "semantic search",
        ],
    ),
    (
        "human-computer interaction",
        [
            "human-computer interaction", "user studies", "visualization",
            "user interfaces", "accessibility", "crowdsourcing",
            "interactive systems", "usability", "multimedia",
            "virtual reality", "eye tracking", "gesture recognition",
            "design patterns", "participatory design", "mobile interfaces",
        ],
    ),
]


def build_topic_model(
    topics: List[Tuple[str, List[str]]],
    *,
    own_topic_mass: float = 0.85,
    topic_prior: "np.ndarray | None" = None,
) -> Tuple[Vocabulary, TopicModel]:
    """Planted word-topic model: each topic concentrates on its keywords.

    ``own_topic_mass`` of each topic's probability is spread uniformly over
    its own keyword list; the remainder is spread over the whole vocabulary
    (so every word has non-zero probability under every topic, as a fitted
    model would).
    """
    check_in_range(own_topic_mass, 0.0, 1.0, "own_topic_mass")
    vocabulary = Vocabulary()
    per_topic_ids: List[List[int]] = []
    for _name, words in topics:
        per_topic_ids.append([vocabulary.add(word) for word in words])
    vocabulary.freeze()
    vocab_size = len(vocabulary)
    num_topics = len(topics)
    matrix = np.full(
        (vocab_size, num_topics),
        (1.0 - own_topic_mass) / vocab_size,
        dtype=np.float64,
    )
    for topic, word_ids in enumerate(per_topic_ids):
        matrix[word_ids, topic] += own_topic_mass / len(word_ids)
    matrix /= matrix.sum(axis=0, keepdims=True)
    model = TopicModel(vocabulary, matrix, topic_prior=topic_prior)
    return vocabulary, model


class CitationNetworkGenerator:
    """Generates ACMCite-like datasets with planted ground truth."""

    def __init__(
        self,
        num_researchers: int = 1000,
        citations_per_paper: int = 5,
        papers_per_author: int = 4,
        *,
        title_length: Tuple[int, int] = (4, 8),
        base_probability: float = 0.4,
        affinity_concentration: float = 0.25,
        exposure_rate: float = 0.8,
        seed: SeedLike = None,
    ) -> None:
        check_positive(num_researchers, "num_researchers")
        check_positive(citations_per_paper, "citations_per_paper")
        check_positive(papers_per_author, "papers_per_author")
        check_in_range(base_probability, 0.0, 1.0, "base_probability")
        check_in_range(exposure_rate, 0.0, 1.0, "exposure_rate")
        check_positive(affinity_concentration, "affinity_concentration")
        if title_length[0] < 1 or title_length[1] < title_length[0]:
            raise ValueError(f"invalid title_length range {title_length}")
        self.num_researchers = num_researchers
        self.citations_per_paper = citations_per_paper
        self.papers_per_author = papers_per_author
        self.title_length = title_length
        self.base_probability = base_probability
        self.affinity_concentration = affinity_concentration
        self.exposure_rate = exposure_rate
        self.seed = seed

    def generate(self) -> SocialDataset:
        """Build the dataset (deterministic for a fixed seed)."""
        rng = as_generator(self.seed)
        num_topics = len(RESEARCH_TOPICS)
        vocabulary, topic_model = build_topic_model(RESEARCH_TOPICS)

        structure = citation_dag(
            self.num_researchers, self.citations_per_paper, seed=rng
        )
        labels = generate_names(self.num_researchers)
        graph = SocialGraph.from_edges(
            structure.num_nodes,
            [(u, v) for _e, u, v in structure.edges()],
            labels,
        )

        affinities = rng.dirichlet(
            np.full(num_topics, self.affinity_concentration),
            size=self.num_researchers,
        )
        edge_weights = TopicEdgeWeights.from_node_affinities(
            graph, affinities, self.base_probability, seed=rng
        )

        items, user_keywords = self._generate_papers(
            graph, topic_model, edge_weights, affinities, rng
        )
        return SocialDataset(
            name="acmcite-synthetic",
            graph=graph,
            vocabulary=vocabulary,
            items=items,
            user_keywords=user_keywords,
            topic_names=[name for name, _words in RESEARCH_TOPICS],
            true_topic_model=topic_model,
            true_edge_weights=edge_weights,
            node_affinities=affinities,
            metadata={
                "base_probability": self.base_probability,
                "exposure_rate": self.exposure_rate,
            },
        )

    def _generate_papers(
        self,
        graph: SocialGraph,
        topic_model: TopicModel,
        edge_weights: TopicEdgeWeights,
        affinities: np.ndarray,
        rng: np.random.Generator,
    ) -> Tuple[List[ItemObservation], Dict[int, List[int]]]:
        items: List[ItemObservation] = []
        user_keywords: Dict[int, List[int]] = {}
        vocab_size = len(topic_model.vocabulary)
        word_given_topic = topic_model.word_given_topic
        low, high = self.title_length
        for author in range(graph.num_nodes):
            out_start = graph.out_offsets[author]
            out_stop = graph.out_offsets[author + 1]
            for _paper in range(self.papers_per_author):
                topic = int(rng.choice(len(affinities[author]), p=affinities[author]))
                length = int(rng.integers(low, high + 1))
                words = rng.choice(
                    vocab_size, size=length, p=word_given_topic[:, topic]
                )
                keywords = [int(w) for w in words]
                user_keywords.setdefault(author, []).extend(keywords)
                events = []
                for edge_id in range(out_start, out_stop):
                    if rng.random() >= self.exposure_rate:
                        continue  # the reader never saw this paper
                    reader = int(graph.out_targets[edge_id])
                    probability = float(edge_weights.weights[edge_id, topic])
                    activated = bool(rng.random() < probability)
                    events.append(PropagationEvent(author, reader, activated))
                items.append(ItemObservation.create(keywords, events))
        return items, user_keywords

"""Persistence of :class:`~repro.datasets.actions.SocialDataset` bundles.

A dataset directory contains::

    graph.tsv        edge list with labels (repro.graph.io format)
    dataset.json     vocabulary, topic names, user keywords, metadata
    items.jsonl      one item (keywords + events) per line
    edge_weights.npy / word_topic.npy / affinities.npy   ground truth
                                                          (when present)
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Union

import numpy as np

from repro.datasets.actions import SocialDataset
from repro.graph.io import read_edge_list, write_edge_list
from repro.topics.edges import TopicEdgeWeights
from repro.topics.em import ItemObservation, PropagationEvent
from repro.topics.model import TopicModel
from repro.topics.vocabulary import Vocabulary
from repro.utils.validation import ValidationError

__all__ = ["save_dataset", "load_dataset"]

PathLike = Union[str, "os.PathLike[str]"]


def save_dataset(dataset: SocialDataset, directory: PathLike) -> None:
    """Write *dataset* to *directory* (created if missing)."""
    os.makedirs(directory, exist_ok=True)
    write_edge_list(dataset.graph, os.path.join(directory, "graph.tsv"))
    manifest = {
        "name": dataset.name,
        "topic_names": dataset.topic_names,
        "vocabulary": dataset.vocabulary.words(),
        "vocabulary_counts": dataset.vocabulary.counts(),
        "user_keywords": {
            str(user): words for user, words in dataset.user_keywords.items()
        },
        "metadata": dataset.metadata,
        "has_ground_truth": dataset.true_edge_weights is not None,
    }
    with open(
        os.path.join(directory, "dataset.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(manifest, handle)
    with open(
        os.path.join(directory, "items.jsonl"), "w", encoding="utf-8"
    ) as handle:
        for item in dataset.items:
            record = {
                "keywords": list(item.keywords),
                "events": [
                    [event.source, event.target, int(event.activated)]
                    for event in item.events
                ],
            }
            handle.write(json.dumps(record) + "\n")
    if dataset.true_edge_weights is not None:
        np.save(
            os.path.join(directory, "edge_weights.npy"),
            dataset.true_edge_weights.weights,
        )
    if dataset.true_topic_model is not None:
        np.save(
            os.path.join(directory, "word_topic.npy"),
            dataset.true_topic_model.word_given_topic,
        )
        np.save(
            os.path.join(directory, "topic_prior.npy"),
            dataset.true_topic_model.topic_prior,
        )
    if dataset.node_affinities is not None:
        np.save(
            os.path.join(directory, "affinities.npy"), dataset.node_affinities
        )


def load_dataset(directory: PathLike) -> SocialDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    manifest_path = os.path.join(directory, "dataset.json")
    if not os.path.exists(manifest_path):
        raise ValidationError(f"{manifest_path} does not exist")
    with open(manifest_path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    graph = read_edge_list(os.path.join(directory, "graph.tsv"))
    vocabulary = Vocabulary()
    for word, count in zip(manifest["vocabulary"], manifest["vocabulary_counts"]):
        vocabulary.add(word, count)
    vocabulary.freeze()
    items: List[ItemObservation] = []
    with open(
        os.path.join(directory, "items.jsonl"), "r", encoding="utf-8"
    ) as handle:
        for line in handle:
            if not line.strip():
                continue
            record = json.loads(line)
            events = [
                PropagationEvent(source, target, bool(activated))
                for source, target, activated in record["events"]
            ]
            items.append(ItemObservation.create(record["keywords"], events))
    user_keywords = {
        int(user): [int(w) for w in words]
        for user, words in manifest["user_keywords"].items()
    }

    true_edge_weights: Optional[TopicEdgeWeights] = None
    weights_path = os.path.join(directory, "edge_weights.npy")
    if os.path.exists(weights_path):
        true_edge_weights = TopicEdgeWeights(graph, np.load(weights_path))
    true_topic_model: Optional[TopicModel] = None
    word_topic_path = os.path.join(directory, "word_topic.npy")
    if os.path.exists(word_topic_path):
        prior_path = os.path.join(directory, "topic_prior.npy")
        prior = np.load(prior_path) if os.path.exists(prior_path) else None
        true_topic_model = TopicModel(
            vocabulary, np.load(word_topic_path), topic_prior=prior
        )
    affinities = None
    affinity_path = os.path.join(directory, "affinities.npy")
    if os.path.exists(affinity_path):
        affinities = np.load(affinity_path)

    return SocialDataset(
        name=manifest["name"],
        graph=graph,
        vocabulary=vocabulary,
        items=items,
        user_keywords=user_keywords,
        topic_names=manifest["topic_names"],
        true_topic_model=true_topic_model,
        true_edge_weights=true_edge_weights,
        node_affinities=affinities,
        metadata=manifest.get("metadata", {}),
    )

"""The OCTOSNAP on-disk snapshot format: save/load a built system.

A snapshot serializes everything needed to reconstruct a built
:class:`~repro.core.Octopus` **without re-running dataset ingestion**: the
packed CSR/CSC graph arrays, the per-edge topic probability matrix, the
topic model (vocabulary, ``p(w|z)``, prior, smoothing), the user keyword
profiles, the topic/node names, and the full :class:`OctopusConfig`
(including the seed).  Restore rebuilds the constructor inputs from the raw
bytes and re-runs ``Octopus.__init__`` — index construction is deterministic
in those inputs plus the seed, so a snapshot-booted system answers with
byte-identical ``deterministic_form()`` output, while skipping the expensive
parse/generate/learn pipeline that produced the inputs in the first place.

Deliberately **not** serialized: the built index state (sketches, RR-set
pools, tries).  The influencer index materializes sketches lazily and
mutates as queries arrive; persisting a moving target would tie the format
to internal layouts and make the byte-identity bar unverifiable.  Rebuilding
from constructor inputs keeps the format stable across index refactors and
still removes the dominant cold-start cost (ingestion) — benchmark E21
tracks the ratio.

Layout (all integers little-endian)::

    offset 0   magic           8 bytes  b"OCTOSNAP"
    offset 8   format version  u32
    offset 12  header length   u32      (JSON byte count)
    offset 16  header sha256   32 bytes
    offset 48  header JSON     canonical (sorted keys, compact separators)
    ...        zero padding to the next 64-byte boundary
    ...        array payloads, each starting on a 64-byte boundary

The header carries every non-array field plus one descriptor per array
(name, dtype, shape, byte offset, byte count, sha256).  Readers verify the
magic, the version, the header digest, and every array digest **before**
constructing anything — a corrupted or truncated file produces a structured
:class:`SnapshotIntegrityError` / :class:`SnapshotFormatError`, never a
partially loaded system.  Version checks are exact: the format is young
enough that cross-version reads are refused outright
(:class:`SnapshotVersionError`) rather than risking a silent semantic skew.

Writes are atomic (temp file + ``os.replace`` in the destination
directory), so a crash mid-save cannot leave a half-written snapshot at the
target path.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import BinaryIO, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "load_snapshot",
    "read_snapshot_header",
    "save_snapshot",
]

MAGIC = b"OCTOSNAP"
FORMAT_VERSION = 1

#: Array payloads start on this alignment (matches the shm arena).
_ALIGN = 64

_HEADER_DIGEST_BYTES = 32
_PREAMBLE_BYTES = len(MAGIC) + 4 + 4 + _HEADER_DIGEST_BYTES


class SnapshotError(Exception):
    """Base class for snapshot save/load failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot (bad magic, truncation, malformed header)."""


class SnapshotVersionError(SnapshotError):
    """The snapshot was written by an incompatible format version."""


class SnapshotIntegrityError(SnapshotError):
    """A checksum does not match: the snapshot is corrupted."""


def _align(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _canonical_json(header: Dict[str, object]) -> bytes:
    return json.dumps(
        header, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")


def _collect_arrays(octopus) -> List[Tuple[str, np.ndarray]]:
    """The raw array payloads, in fixed declaration order."""
    graph = octopus.graph
    model = octopus.topic_model
    return [
        ("out_offsets", np.ascontiguousarray(graph.out_offsets, dtype=np.int64)),
        ("out_targets", np.ascontiguousarray(graph.out_targets, dtype=np.int64)),
        ("in_offsets", np.ascontiguousarray(graph.in_offsets, dtype=np.int64)),
        ("in_sources", np.ascontiguousarray(graph.in_sources, dtype=np.int64)),
        ("in_edge_ids", np.ascontiguousarray(graph.in_edge_ids, dtype=np.int64)),
        (
            "edge_weights",
            np.ascontiguousarray(octopus.edge_weights.weights, dtype=np.float64),
        ),
        (
            "word_given_topic",
            np.ascontiguousarray(model.word_given_topic, dtype=np.float64),
        ),
        ("topic_prior", np.ascontiguousarray(model.topic_prior, dtype=np.float64)),
    ]


def _config_dict(config) -> Dict[str, object]:
    """The config as a JSON-clean dict; rejects non-serializable seeds."""
    from dataclasses import asdict

    payload = asdict(config)
    seed = payload.get("seed")
    if seed is not None and not isinstance(seed, (int, np.integer)):
        raise SnapshotError(
            "only int or None seeds can be snapshotted; the config carries "
            f"a {type(config.seed).__name__} — rebuild with an integer seed"
        )
    if seed is not None:
        payload["seed"] = int(seed)
    return payload


def save_snapshot(octopus, path: str, *, source: Optional[str] = None) -> Dict[str, object]:
    """Write *octopus* to *path* in OCTOSNAP format; returns the header.

    The write is atomic: the bytes land in a temp file next to *path* and
    are moved into place with ``os.replace`` only once fully flushed.
    *source* is a free-form provenance string (e.g. the dataset directory)
    recorded in the header for ``octopus stats``-style introspection.
    """
    arrays = _collect_arrays(octopus)
    descriptors: List[Dict[str, object]] = []
    # Lay out payload offsets relative to the payload base (start of the
    # first array); the absolute base depends on the header length, which
    # depends on the descriptors, so relative offsets keep it one pass.
    cursor = 0
    for name, array in arrays:
        cursor = _align(cursor)
        descriptors.append(
            {
                "name": name,
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": cursor,
                "nbytes": int(array.nbytes),
                "sha256": hashlib.sha256(array.tobytes()).hexdigest(),
            }
        )
        cursor += int(array.nbytes)

    header: Dict[str, object] = {
        "format": "octopus-snapshot",
        "version": FORMAT_VERSION,
        "config": _config_dict(octopus.config),
        "topic_names": list(octopus.topic_names),
        "labels": octopus.graph.labels,
        "vocabulary": {
            "words": octopus.topic_model.vocabulary.words(),
            "counts": octopus.topic_model.vocabulary.counts(),
        },
        "user_keywords": {
            str(user): [int(word) for word in words]
            for user, words in octopus.user_keywords.items()
        },
        "smoothing": float(octopus.topic_model.smoothing),
        "num_nodes": int(octopus.graph.num_nodes),
        "num_edges": int(octopus.graph.num_edges),
        "source": source,
        "arrays": descriptors,
    }
    header_bytes = _canonical_json(header)

    directory = os.path.dirname(os.path.abspath(path)) or "."
    descriptor, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            handle.write(MAGIC)
            handle.write(FORMAT_VERSION.to_bytes(4, "little"))
            handle.write(len(header_bytes).to_bytes(4, "little"))
            handle.write(hashlib.sha256(header_bytes).digest())
            handle.write(header_bytes)
            base = _align(_PREAMBLE_BYTES + len(header_bytes))
            handle.write(b"\0" * (base - _PREAMBLE_BYTES - len(header_bytes)))
            cursor = 0
            for (name, array), info in zip(arrays, descriptors):
                padded = _align(cursor)
                handle.write(b"\0" * (padded - cursor))
                handle.write(array.tobytes())
                cursor = padded + int(array.nbytes)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_path, path)
    except BaseException:
        if os.path.exists(temp_path):
            os.unlink(temp_path)
        raise
    return header


def _read_exact(handle: BinaryIO, count: int, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise SnapshotFormatError(
            f"truncated snapshot: expected {count} bytes of {what}, "
            f"got {len(data)}"
        )
    return data


def read_snapshot_header(path: str) -> Dict[str, object]:
    """Parse and verify the header of the snapshot at *path*.

    Verifies magic, version, and the header checksum — but not the array
    payloads — so it is cheap enough for CLI introspection of large files.
    """
    header, _ = _read_header(path)
    return header


def _read_header(path: str) -> Tuple[Dict[str, object], int]:
    """``(header, header_byte_length)`` — the length fixes the payload base."""
    with open(path, "rb") as handle:
        magic = _read_exact(handle, len(MAGIC), "magic")
        if magic != MAGIC:
            raise SnapshotFormatError(
                f"{path!r} is not an OCTOSNAP snapshot (bad magic {magic!r})"
            )
        version = int.from_bytes(_read_exact(handle, 4, "version"), "little")
        if version != FORMAT_VERSION:
            raise SnapshotVersionError(
                f"snapshot format version {version} is not supported "
                f"(this build reads version {FORMAT_VERSION}); re-create the "
                "snapshot with `octopus snapshot`"
            )
        header_length = int.from_bytes(
            _read_exact(handle, 4, "header length"), "little"
        )
        digest = _read_exact(handle, _HEADER_DIGEST_BYTES, "header digest")
        header_bytes = _read_exact(handle, header_length, "header")
        if hashlib.sha256(header_bytes).digest() != digest:
            raise SnapshotIntegrityError(
                "snapshot header checksum mismatch: the file is corrupted"
            )
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise SnapshotFormatError(
                f"snapshot header is not valid JSON: {error}"
            ) from None
    if not isinstance(header, dict) or header.get("format") != "octopus-snapshot":
        raise SnapshotFormatError("snapshot header has an unexpected structure")
    return header, header_length


def _read_arrays(
    path: str, header: Dict[str, object], header_length: int
) -> Dict[str, np.ndarray]:
    """Read and digest-verify every array payload described by *header*."""
    base = _align(_PREAMBLE_BYTES + header_length)
    arrays: Dict[str, np.ndarray] = {}
    with open(path, "rb") as handle:
        for info in header["arrays"]:
            handle.seek(base + int(info["offset"]))
            payload = _read_exact(
                handle, int(info["nbytes"]), f"array {info['name']!r}"
            )
            if hashlib.sha256(payload).hexdigest() != info["sha256"]:
                raise SnapshotIntegrityError(
                    f"array {info['name']!r} checksum mismatch: the "
                    "snapshot is corrupted"
                )
            array = np.frombuffer(payload, dtype=np.dtype(info["dtype"]))
            arrays[info["name"]] = array.reshape(tuple(info["shape"]))
    return arrays


def load_snapshot(path: str, *, config_overrides: Optional[Dict[str, object]] = None):
    """Reconstruct the :class:`~repro.core.Octopus` stored at *path*.

    Every checksum is verified before any object is constructed, so a
    corrupted file raises a structured :class:`SnapshotError` subclass and
    never yields a partially loaded system.  *config_overrides* replaces
    individual :class:`OctopusConfig` fields (e.g. ``execution_backend``
    for a differently provisioned serving host); fields that shape the
    built indexes — notably ``seed`` — should be left alone when
    byte-identity with the snapshotted system matters.
    """
    from repro.core import Octopus, OctopusConfig
    from repro.graph.digraph import SocialGraph
    from repro.topics.edges import TopicEdgeWeights
    from repro.topics.model import TopicModel
    from repro.topics.vocabulary import Vocabulary

    header, header_length = _read_header(path)
    arrays = _read_arrays(path, header, header_length)
    missing = [
        name
        for name in (
            "out_offsets",
            "out_targets",
            "in_offsets",
            "in_sources",
            "in_edge_ids",
            "edge_weights",
            "word_given_topic",
            "topic_prior",
        )
        if name not in arrays
    ]
    if missing:
        raise SnapshotFormatError(f"snapshot is missing arrays {missing}")

    labels = header.get("labels")
    graph = SocialGraph(
        arrays["out_offsets"],
        arrays["out_targets"],
        arrays["in_offsets"],
        arrays["in_sources"],
        arrays["in_edge_ids"],
        labels=list(labels) if labels is not None else None,
    )
    vocabulary = Vocabulary()
    vocabulary_spec = header["vocabulary"]
    for word, count in zip(vocabulary_spec["words"], vocabulary_spec["counts"]):
        vocabulary.add(word, count)
    vocabulary.freeze()
    topic_model = TopicModel(
        vocabulary,
        arrays["word_given_topic"],
        topic_prior=arrays["topic_prior"],
        smoothing=float(header["smoothing"]),
    )
    edge_weights = TopicEdgeWeights(graph, arrays["edge_weights"])
    user_keywords = {
        int(user): list(words)
        for user, words in header["user_keywords"].items()
    }
    config_payload = dict(header["config"])
    if config_overrides:
        config_payload.update(config_overrides)
    config = OctopusConfig(**config_payload)
    return Octopus(
        graph,
        topic_model,
        edge_weights,
        user_keywords,
        topic_names=header["topic_names"],
        config=config,
    )

"""Snapshot/restore of a built system: the OCTOSNAP on-disk format.

``save_snapshot`` serializes a built :class:`~repro.core.Octopus` (graph
CSR arrays, topic-edge probabilities, topic model, keyword profiles,
config) to one checksummed, versioned file; ``load_snapshot`` restores it
without re-running dataset ingestion, producing a system whose
``deterministic_form()`` output is byte-identical to the fresh build.  The
cluster coordinator uses snapshots to respawn dead shards
(:meth:`~repro.cluster.ClusterCoordinator.respawn_dead_shards`), and the
CLI exposes ``octopus snapshot`` / ``octopus serve --snapshot`` for warm
starts.  See :mod:`repro.snapshot.format` for the byte layout.
"""

from repro.snapshot.format import (
    FORMAT_VERSION,
    MAGIC,
    SnapshotError,
    SnapshotFormatError,
    SnapshotIntegrityError,
    SnapshotVersionError,
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "SnapshotError",
    "SnapshotFormatError",
    "SnapshotIntegrityError",
    "SnapshotVersionError",
    "load_snapshot",
    "read_snapshot_header",
    "save_snapshot",
]

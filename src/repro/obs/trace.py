"""Per-request identity and stage spans.

A :class:`RequestTrace` is created once per request at the front door
(threaded server or asyncio gateway) — either adopting a well-formed
``X-Request-Id`` header or minting a fresh id — and installed on a
``contextvars`` context for the duration of the compute.  Any layer can
then call :func:`record_stage` / :func:`stage` without plumbing the trace
through call signatures: middleware records validate/cache/rate-limit
spans, the dispatcher records backend sampling and payload assembly, the
gateway records admission-queue wait, and the cluster coordinator records
per-shard round-trips.

Everything a trace produces lives in the envelope's wall-clock section
(``request_id`` / ``timings``), which
:func:`repro.service.responses.deterministic_form` excludes by
construction — serving bytes are identical with tracing on or off.

Context variables do **not** cross ``fork()`` or plain pool submission,
so propagation is explicit at each boundary: the thread-pool executor
copies its submission context, and the cluster pipe protocol carries the
id in :class:`repro.cluster.protocol.ExecuteRequest` for the shard worker
to re-activate.
"""

from __future__ import annotations

import contextvars
import dataclasses
import json
import os
import re
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from repro.utils.logging import get_logger

__all__ = [
    "RequestTrace",
    "clean_request_id",
    "current_trace",
    "default_slow_query_ms",
    "maybe_log_slow",
    "new_request_id",
    "record_stage",
    "stage",
    "stamp_response",
    "trace_context",
    "tracing_enabled_default",
]

#: Accepted shape of a client-supplied ``X-Request-Id``: short, printable,
#: safe to echo into headers and log lines verbatim.
_REQUEST_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,64}$")

#: Environment switch: ``REPRO_TRACE=0`` disables front-door tracing.
_TRACE_ENV = "REPRO_TRACE"
#: Environment knob: slow-query threshold in milliseconds.
_SLOW_ENV = "REPRO_SLOW_QUERY_MS"

_slow_logger = get_logger("obs.slowlog")


def new_request_id() -> str:
    """Mint a fresh request id (32 hex chars, UUID4 entropy)."""
    return uuid.uuid4().hex


def clean_request_id(candidate: Optional[str]) -> Optional[str]:
    """Validate a client-supplied request id, or ``None`` to mint one.

    Only short header-and-log-safe tokens are adopted; anything else is
    discarded (the front door then generates its own id) rather than
    echoed back — a hostile header must never reach a log line or a
    response header verbatim.
    """
    if candidate is None:
        return None
    value = candidate.strip()
    if _REQUEST_ID_RE.match(value):
        return value
    return None


def tracing_enabled_default() -> bool:
    """Whether front doors trace by default (``REPRO_TRACE`` switch).

    Tracing is on unless ``REPRO_TRACE`` is ``0`` / ``off`` / ``false``
    — the overhead budget (benchmark E22) is a few microseconds per
    request, so opt-out rather than opt-in.
    """
    value = os.environ.get(_TRACE_ENV, "").strip().lower()
    return value not in ("0", "off", "false", "no")


def default_slow_query_ms() -> float:
    """Default slow-query threshold (``REPRO_SLOW_QUERY_MS``, else 1000).

    Non-positive values disable the slow-query log; an unparseable value
    falls back to the 1000 ms default rather than crashing serving.
    """
    raw = os.environ.get(_SLOW_ENV, "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return 1000.0


class RequestTrace:
    """One request's identity plus its accumulated stage spans.

    Stages are ``(name, seconds)`` pairs appended under a lock (shard
    fan-out records from multiple threads); :meth:`breakdown_ms` folds
    repeated stage names together in first-seen order, which is what the
    opt-in ``debug_timings`` envelope section and the slow-query log both
    show.
    """

    __slots__ = ("request_id", "debug", "started", "_stages", "_lock")

    def __init__(
        self, request_id: Optional[str] = None, *, debug: bool = False
    ) -> None:
        self.request_id = request_id or new_request_id()
        self.debug = bool(debug)
        self.started = time.perf_counter()
        self._stages: List[Tuple[str, float]] = []
        self._lock = threading.Lock()

    def record(self, name: str, seconds: float) -> None:
        """Append one stage span (wall seconds) to the trace."""
        with self._lock:
            self._stages.append((name, float(seconds)))

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing its body as stage *name*."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def elapsed_ms(self) -> float:
        """Wall milliseconds since the trace was created."""
        return (time.perf_counter() - self.started) * 1e3

    def breakdown_ms(self) -> Dict[str, float]:
        """Stage totals in milliseconds, first-seen order, 3 decimals."""
        totals: Dict[str, float] = {}
        with self._lock:
            stages = list(self._stages)
        for name, seconds in stages:
            totals[name] = totals.get(name, 0.0) + seconds * 1e3
        return {name: round(value, 3) for name, value in totals.items()}


_current_trace: contextvars.ContextVar[Optional[RequestTrace]] = (
    contextvars.ContextVar("repro_request_trace", default=None)
)


def current_trace() -> Optional[RequestTrace]:
    """The trace active on this context, or ``None`` outside a request."""
    return _current_trace.get()


@contextmanager
def trace_context(trace: Optional[RequestTrace]) -> Iterator[Optional[RequestTrace]]:
    """Install *trace* as the active trace for the duration of the body.

    ``trace_context(None)`` is a no-op passthrough so call sites can use
    one ``with`` statement whether tracing is enabled or not.
    """
    if trace is None:
        yield None
        return
    token = _current_trace.set(trace)
    try:
        yield trace
    finally:
        _current_trace.reset(token)


def record_stage(name: str, seconds: float) -> None:
    """Record a stage span on the active trace; no-op outside a request."""
    trace = _current_trace.get()
    if trace is not None:
        trace.record(name, seconds)


@contextmanager
def stage(name: str) -> Iterator[None]:
    """Time the body as stage *name* on the active trace (no-op without one)."""
    trace = _current_trace.get()
    if trace is None:
        yield
        return
    started = time.perf_counter()
    try:
        yield
    finally:
        trace.record(name, time.perf_counter() - started)


def stamp_response(response, trace: Optional[RequestTrace] = None):
    """Copy *response* with the trace's wall-clock fields stamped on.

    Sets ``request_id`` (always, overriding any id a cached or shard-side
    copy carried — the front-door trace is authoritative) and, when the
    trace was opened with ``debug=True``, the ``timings`` breakdown.
    Returns *response* unchanged when no trace is active, so the function
    is safe to call unconditionally on every return path.
    """
    active = trace if trace is not None else _current_trace.get()
    if active is None:
        return response
    timings = active.breakdown_ms() if active.debug else None
    if response.request_id == active.request_id and response.timings == timings:
        return response
    return dataclasses.replace(
        response, request_id=active.request_id, timings=timings
    )


def maybe_log_slow(
    trace: RequestTrace,
    *,
    service: str,
    latency_ms: float,
    threshold_ms: float,
) -> bool:
    """Emit the structured slow-query log line when over threshold.

    One ``WARNING`` on the ``repro.obs.slowlog`` logger per slow request:
    the message carries service, latency, threshold and the stage
    breakdown as compact JSON, and the record's ``request_id`` /
    ``stages`` attributes feed the JSON formatter
    (:class:`repro.utils.logging.JsonLogFormatter`).  Returns whether a
    line was logged; a non-positive *threshold_ms* disables the log.
    """
    if threshold_ms <= 0 or latency_ms < threshold_ms:
        return False
    stages = trace.breakdown_ms()
    _slow_logger.warning(
        "slow query service=%s latency_ms=%.1f threshold_ms=%.1f stages=%s",
        service,
        latency_ms,
        threshold_ms,
        json.dumps(stages, sort_keys=True),
        extra={
            "request_id": trace.request_id,
            "stages": stages,
            "service": service,
            "latency_ms": round(latency_ms, 3),
        },
    )
    return True

"""Observability: request tracing, latency histograms, and Prometheus text.

The ``repro.obs`` package is the telemetry layer threaded through every
serving layer of the system:

* :mod:`repro.obs.trace` — per-request identity (``X-Request-Id``) and
  lightweight stage spans (queue wait, middleware stages, backend
  sampling, per-shard round-trips), carried on a ``contextvars`` context
  so any layer can record without plumbing arguments, plus the slow-query
  log and the opt-in ``debug_timings`` envelope breakdown.
* :mod:`repro.obs.histogram` — fixed-bucket latency histograms with
  derivable p50/p95/p99, mergeable across forked shards via flat
  snapshot keys.
* :mod:`repro.obs.prometheus` — the ``GET /metrics`` text exposition
  (format 0.0.4) and an in-repo line-syntax validator, so CI can check a
  live scrape without an external ``promtool``.

Everything here lives outside the determinism contract:
:func:`repro.service.responses.deterministic_form` never sees a request
id or a timing breakdown, so serving bytes are identical with tracing on
or off.
"""

from repro.obs.histogram import (
    DEFAULT_LATENCY_BUCKETS_MS,
    LatencyHistogram,
    aggregate_latency_keys,
)
from repro.obs.prometheus import render_exposition, validate_exposition
from repro.obs.trace import (
    RequestTrace,
    clean_request_id,
    current_trace,
    default_slow_query_ms,
    maybe_log_slow,
    new_request_id,
    record_stage,
    stage,
    stamp_response,
    trace_context,
    tracing_enabled_default,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "LatencyHistogram",
    "RequestTrace",
    "aggregate_latency_keys",
    "clean_request_id",
    "current_trace",
    "default_slow_query_ms",
    "maybe_log_slow",
    "new_request_id",
    "record_stage",
    "render_exposition",
    "stage",
    "stamp_response",
    "trace_context",
    "tracing_enabled_default",
    "validate_exposition",
]

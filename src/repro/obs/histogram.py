"""Fixed-bucket latency histograms with derivable percentiles.

:class:`LatencyHistogram` replaces the mean/max running aggregates that
``ServiceMetrics`` and ``HTTPCounters`` used to keep: a small fixed set of
millisecond bucket boundaries, one counter per bucket, plus exact sum,
count and max.  Percentiles (p50/p95/p99, or any quantile) are derived by
linear interpolation inside the bucket holding the target rank, so the
estimate always lands inside the same bucket as the true sample quantile
— the bracketing property the test suite pins down.

Histograms are built to cross process boundaries without pickling the
object itself: :meth:`LatencyHistogram.snapshot_into` writes per-bucket
counts as flat ``<prefix>.latency_ms_le.<edge>`` keys into an ordinary
stats dict, and :func:`aggregate_latency_keys` folds those keys from any
number of shard snapshots back into merged histograms — this is how the
cluster coordinator aggregates shard latency into ``/stats``.
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "LatencyHistogram",
    "aggregate_latency_keys",
    "edge_label",
]

#: Default bucket upper edges in milliseconds.  Spans sub-millisecond cache
#: hits through ten-second distributed cover queries; the implicit final
#: bucket is +Inf.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)

#: Flat-key fragment marking a per-bucket count (see ``snapshot_into``).
_LE_FRAGMENT = ".latency_ms_le."
#: Flat-key suffix marking the exact latency sum companion.
_SUM_SUFFIX = ".latency_ms_sum"

_KEY_RE = re.compile(
    r"^(?P<prefix>.+)\.latency_ms_le\.(?P<edge>inf|[0-9.]+)$"
)


def edge_label(edge: float) -> str:
    """Canonical flat-key / Prometheus ``le`` label for a bucket *edge*.

    Finite edges render via their shortest round-trip representation
    (``2.5``, ``10``, ``10000``) with a trailing ``.0`` stripped — a
    ``%g``-style fixed precision would corrupt edges with more than six
    significant digits when a shard snapshot is parsed back for
    aggregation.  The overflow bucket renders as ``inf`` so it sorts
    last and parses back with ``float("inf")``.
    """
    if math.isinf(edge):
        return "inf"
    text = repr(float(edge))
    return text[:-2] if text.endswith(".0") else text


class LatencyHistogram:
    """Thread-safe fixed-bucket histogram of millisecond latencies.

    The bucket layout is a strictly increasing tuple of finite upper
    edges; observations larger than the last edge land in an implicit
    overflow bucket.  All mutation happens under an internal lock, so one
    instance may be shared by every serving thread of a process.
    """

    __slots__ = ("_edges", "_counts", "_sum", "_max", "_lock")

    def __init__(
        self, buckets_ms: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> None:
        edges = tuple(float(edge) for edge in buckets_ms)
        if not edges:
            raise ValueError("histogram needs at least one bucket edge")
        for lo, hi in zip(edges, edges[1:]):
            if not lo < hi:
                raise ValueError(
                    f"bucket edges must be strictly increasing, got {edges}"
                )
        if not all(math.isfinite(edge) and edge > 0 for edge in edges):
            raise ValueError(
                f"bucket edges must be finite and positive, got {edges}"
            )
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    @property
    def bucket_edges(self) -> Tuple[float, ...]:
        """The finite upper edges; the overflow bucket is implicit."""
        return self._edges

    def observe(self, value_ms: float) -> None:
        """Record one latency observation (milliseconds)."""
        value = float(value_ms)
        if value < 0.0 or not math.isfinite(value):
            value = 0.0
        index = bisect.bisect_left(self._edges, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def merge_counts(
        self, counts: Sequence[int], *, sum_ms: float = 0.0, max_ms: float = 0.0
    ) -> None:
        """Fold per-bucket *counts* from another same-layout histogram in.

        Used when reassembling shard-side histograms from flat snapshot
        keys; *counts* must have one entry per bucket including the
        overflow bucket.
        """
        if len(counts) != len(self._counts):
            raise ValueError(
                f"expected {len(self._counts)} bucket counts, got {len(counts)}"
            )
        with self._lock:
            for index, count in enumerate(counts):
                self._counts[index] += int(count)
            self._sum += float(sum_ms)
            if max_ms > self._max:
                self._max = float(max_ms)

    def counts(self) -> Tuple[int, ...]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return tuple(self._counts)

    def cumulative_counts(self) -> Tuple[int, ...]:
        """Cumulative counts in Prometheus ``le`` convention."""
        total = 0
        out: List[int] = []
        for count in self.counts():
            total += count
            out.append(total)
        return tuple(out)

    @property
    def count(self) -> int:
        """Total number of observations."""
        with self._lock:
            return sum(self._counts)

    @property
    def sum_ms(self) -> float:
        """Exact sum of all observations (milliseconds)."""
        with self._lock:
            return self._sum

    @property
    def max_ms(self) -> float:
        """Largest observation seen (milliseconds)."""
        with self._lock:
            return self._max

    @property
    def mean_ms(self) -> float:
        """Exact mean of all observations, 0.0 when empty."""
        with self._lock:
            total = sum(self._counts)
            return self._sum / total if total else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``) in milliseconds.

        Linear interpolation inside the bucket that holds the target
        rank; the overflow bucket reports its lower edge (the largest
        finite boundary), matching Prometheus ``histogram_quantile``.
        Returns 0.0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts = self.counts()
        total = sum(counts)
        if total == 0:
            return 0.0
        target = q * total
        cumulative = 0
        for index, count in enumerate(counts):
            previous = cumulative
            cumulative += count
            if cumulative >= target and count > 0:
                if index == len(self._edges):
                    return self._edges[-1]
                lo = 0.0 if index == 0 else self._edges[index - 1]
                hi = self._edges[index]
                fraction = (target - previous) / count
                return lo + fraction * (hi - lo)
        return self._edges[-1]

    def percentiles(self) -> Dict[str, float]:
        """The standard p50/p95/p99 summary, in milliseconds."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot_into(self, stats: Dict[str, float], prefix: str) -> None:
        """Write this histogram as flat keys under *prefix* into *stats*.

        Emits ``<prefix>.p50_latency_ms`` / ``p95`` / ``p99``, one
        ``<prefix>.latency_ms_le.<edge>`` per-bucket (non-cumulative)
        count, and ``<prefix>.latency_ms_sum``.  Per-bucket counts sum
        key-wise across shard snapshots, which is exactly how
        :func:`aggregate_latency_keys` merges them.
        """
        counts = self.counts()
        for name, value in self.percentiles().items():
            stats[f"{prefix}.{name}_latency_ms"] = round(value, 3)
        edges = [edge_label(edge) for edge in self._edges] + ["inf"]
        for label, count in zip(edges, counts):
            stats[f"{prefix}{_LE_FRAGMENT}{label}"] = float(count)
        stats[f"{prefix}{_SUM_SUFFIX}"] = round(self.sum_ms, 3)


def aggregate_latency_keys(
    snapshots: Iterable[Mapping[str, float]],
    *,
    key_prefix: Optional[str] = None,
) -> Dict[str, float]:
    """Merge flat histogram keys from many *snapshots* into one summary.

    Scans each snapshot for ``<prefix>.latency_ms_le.<edge>`` bucket
    counts (as written by :meth:`LatencyHistogram.snapshot_into`), sums
    them per ``(prefix, edge)``, rebuilds a merged histogram per prefix
    and re-emits the same flat-key shape — percentiles, per-bucket counts
    and sum.  *key_prefix*, when given, filters to source prefixes that
    start with it (e.g. ``"service."`` to aggregate only the per-service
    histograms out of full shard stats dicts).
    """
    buckets: Dict[str, Dict[float, float]] = {}
    sums: Dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            match = _KEY_RE.match(key)
            if match is not None:
                prefix = match.group("prefix")
                if key_prefix is not None and not prefix.startswith(key_prefix):
                    continue
                edge = float(match.group("edge"))
                per_edge = buckets.setdefault(prefix, {})
                per_edge[edge] = per_edge.get(edge, 0.0) + float(value)
            elif key.endswith(_SUM_SUFFIX):
                prefix = key[: -len(_SUM_SUFFIX)]
                if key_prefix is not None and not prefix.startswith(key_prefix):
                    continue
                sums[prefix] = sums.get(prefix, 0.0) + float(value)
    merged: Dict[str, float] = {}
    for prefix, per_edge in buckets.items():
        edges = sorted(edge for edge in per_edge if math.isfinite(edge))
        if not edges:
            continue
        histogram = LatencyHistogram(edges)
        counts = [int(per_edge.get(edge, 0.0)) for edge in edges]
        counts.append(int(per_edge.get(math.inf, 0.0)))
        histogram.merge_counts(counts, sum_ms=sums.get(prefix, 0.0))
        histogram.snapshot_into(merged, prefix)
    return merged

"""Prometheus text exposition (format 0.0.4) and an in-repo validator.

:func:`render_exposition` turns the live metrics objects — per-service
counters/histograms from ``ServiceMetrics`` and the HTTP counters from
the wire layer — into the plain-text format both front ends serve on
``GET /metrics``.  The renderer works from plain exported state (dicts
plus :class:`~repro.obs.histogram.LatencyHistogram` instances), so this
module depends on nothing above the obs layer.

:func:`validate_exposition` is the promise that we never need an
external ``promtool``: a regex line checker for the subset of the format
we emit (``# HELP`` / ``# TYPE`` comments, optionally-labelled samples,
histogram series) that the test suite and the CI scrape step both run
against a live server.  ``python -m repro.obs.prometheus`` validates
stdin and exits non-zero on the first bad line, which is all the CI step
needs::

    curl -fsS http://127.0.0.1:8642/metrics | python -m repro.obs.prometheus
"""

from __future__ import annotations

import math
import re
import sys
from typing import Any, Dict, List, Mapping, Optional

from repro.obs.histogram import LatencyHistogram, edge_label

__all__ = [
    "CONTENT_TYPE",
    "render_exposition",
    "validate_exposition",
]

#: The content type both front ends serve ``GET /metrics`` under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_METRIC_PREFIX = "octopus"


def _escape_label(value: str) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sample(name: str, labels: Mapping[str, str], value: float) -> str:
    """One sample line, labels rendered in the given order."""
    if labels:
        rendered = ",".join(
            f'{key}="{_escape_label(item)}"' for key, item in labels.items()
        )
        return f"{name}{{{rendered}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    """Render a sample value (integral counts without a trailing .0)."""
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _histogram_lines(
    name: str,
    histogram: LatencyHistogram,
    labels: Mapping[str, str],
) -> List[str]:
    """The ``_bucket`` / ``_sum`` / ``_count`` series for one histogram."""
    lines: List[str] = []
    cumulative = histogram.cumulative_counts()
    edges = list(histogram.bucket_edges) + [math.inf]
    for edge, count in zip(edges, cumulative):
        bucket_labels = dict(labels)
        bucket_labels["le"] = "+Inf" if math.isinf(edge) else edge_label(edge)
        lines.append(_sample(f"{name}_bucket", bucket_labels, count))
    lines.append(_sample(f"{name}_sum", labels, histogram.sum_ms))
    lines.append(_sample(f"{name}_count", labels, cumulative[-1]))
    return lines


def render_exposition(
    service_state: Optional[Mapping[str, Mapping[str, Any]]] = None,
    http_state: Optional[Mapping[str, Any]] = None,
    extra: Optional[Mapping[str, float]] = None,
) -> str:
    """Render the full ``/metrics`` body.

    *service_state* is ``ServiceMetrics.export_state()``: per service
    name a dict with ``requests`` / ``errors`` / ``cache_hits`` floats
    and a ``histogram`` :class:`LatencyHistogram`.  *http_state* is
    ``HTTPCounters.export_state()``: ``total``, ``by_path``,
    ``by_status_class`` and an overall ``histogram``.  *extra* is any
    flat numeric mapping (executor gauges, queue depths); each entry
    becomes an ``octopus_stat{key="..."}`` gauge.  The body always ends
    with a newline, as scrapers expect.
    """
    lines: List[str] = []

    if service_state:
        lines.append(
            f"# HELP {_METRIC_PREFIX}_service_requests_total "
            "Requests served per service."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_service_requests_total counter")
        for service, state in sorted(service_state.items()):
            lines.append(
                _sample(
                    f"{_METRIC_PREFIX}_service_requests_total",
                    {"service": service},
                    state["requests"],
                )
            )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_service_errors_total "
            "Error envelopes returned per service."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_service_errors_total counter")
        for service, state in sorted(service_state.items()):
            lines.append(
                _sample(
                    f"{_METRIC_PREFIX}_service_errors_total",
                    {"service": service},
                    state["errors"],
                )
            )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_service_cache_hits_total "
            "Responses served from the result cache per service."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_service_cache_hits_total counter")
        for service, state in sorted(service_state.items()):
            lines.append(
                _sample(
                    f"{_METRIC_PREFIX}_service_cache_hits_total",
                    {"service": service},
                    state["cache_hits"],
                )
            )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_service_latency_ms "
            "End-to-end service latency per service (milliseconds)."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_service_latency_ms histogram")
        for service, state in sorted(service_state.items()):
            lines.extend(
                _histogram_lines(
                    f"{_METRIC_PREFIX}_service_latency_ms",
                    state["histogram"],
                    {"service": service},
                )
            )

    if http_state is not None:
        lines.append(
            f"# HELP {_METRIC_PREFIX}_http_requests_total "
            "HTTP requests accepted across all paths."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_http_requests_total counter")
        lines.append(
            _sample(
                f"{_METRIC_PREFIX}_http_requests_total", {}, http_state["total"]
            )
        )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_http_path_requests_total "
            "HTTP requests per known path."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_http_path_requests_total counter")
        for path, count in sorted(http_state["by_path"].items()):
            lines.append(
                _sample(
                    f"{_METRIC_PREFIX}_http_path_requests_total",
                    {"path": path},
                    count,
                )
            )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_http_responses_total "
            "HTTP responses per status class."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_http_responses_total counter")
        for code_class, count in sorted(http_state["by_status_class"].items()):
            lines.append(
                _sample(
                    f"{_METRIC_PREFIX}_http_responses_total",
                    {"code_class": code_class},
                    count,
                )
            )
        lines.append(
            f"# HELP {_METRIC_PREFIX}_http_request_latency_ms "
            "Wall time spent answering HTTP requests (milliseconds)."
        )
        lines.append(
            f"# TYPE {_METRIC_PREFIX}_http_request_latency_ms histogram"
        )
        lines.extend(
            _histogram_lines(
                f"{_METRIC_PREFIX}_http_request_latency_ms",
                http_state["histogram"],
                {},
            )
        )

    if extra:
        lines.append(
            f"# HELP {_METRIC_PREFIX}_stat "
            "Flat numeric gauges from the executor stats surface."
        )
        lines.append(f"# TYPE {_METRIC_PREFIX}_stat gauge")
        for key, value in sorted(extra.items()):
            if isinstance(value, (int, float)) and math.isfinite(float(value)):
                lines.append(
                    _sample(f"{_METRIC_PREFIX}_stat", {"key": key}, float(value))
                )

    return "\n".join(lines) + "\n"


# --- validation -------------------------------------------------------------

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
_VALUE = r"(?:[-+]?Inf|NaN|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"

_HELP_RE = re.compile(rf"^# HELP ({_NAME}) .+$")
_TYPE_RE = re.compile(
    rf"^# TYPE ({_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_SAMPLE_RE = re.compile(
    rf"^({_NAME})(?:\{{{_LABEL}(?:,{_LABEL})*\}})? {_VALUE}(?: [0-9]+)?$"
)
_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def validate_exposition(text: str) -> List[str]:
    """Check *text* against the exposition line grammar.

    Returns a list of human-readable problems (empty means valid):
    malformed comment or sample lines, samples whose metric family was
    never declared with ``# TYPE``, histogram families missing their
    ``_bucket`` / ``_sum`` / ``_count`` series, and a body that does not
    end with a newline.  Intentionally a line-grammar checker, not a full
    Prometheus parser — that is all CI needs to catch a broken emitter.
    """
    problems: List[str] = []
    if not text:
        return ["empty exposition body"]
    if not text.endswith("\n"):
        problems.append("body does not end with a newline")
    declared: Dict[str, str] = {}
    seen_samples: Dict[str, List[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("#"):
            if _HELP_RE.match(line) or _TYPE_RE.match(line):
                match = _TYPE_RE.match(line)
                if match is not None:
                    declared[match.group(1)] = match.group(2)
                continue
            problems.append(f"line {number}: malformed comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {number}: malformed sample: {line!r}")
            continue
        name = match.group(1)
        family = name
        for suffix in _HISTOGRAM_SUFFIXES:
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and declared.get(base) == "histogram":
                family = base
                break
        if family not in declared:
            problems.append(
                f"line {number}: sample {name!r} has no # TYPE declaration"
            )
            continue
        seen_samples.setdefault(family, []).append(name)
    for family, kind in declared.items():
        if kind != "histogram":
            continue
        names = set(seen_samples.get(family, ()))
        missing = [
            suffix
            for suffix in _HISTOGRAM_SUFFIXES
            if f"{family}{suffix}" not in names
        ]
        if missing:
            problems.append(
                f"histogram {family!r} is missing series: {', '.join(missing)}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    """Validate an exposition body read from stdin (CI scrape helper)."""
    del argv
    body = sys.stdin.read()
    problems = validate_exposition(body)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    lines = sum(1 for line in body.splitlines() if line and not line.startswith("#"))
    print(f"ok: {lines} samples")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

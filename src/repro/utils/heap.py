"""Priority-queue utilities used across the influence-analysis algorithms.

Two structures are provided:

* :class:`LazyGreedyQueue` — the CELF-style queue behind every lazy greedy
  loop in the library (influence maximization, best-effort keyword IM, and
  keyword suggestion).  Items carry a *stale* flag; the queue surfaces the
  item with the largest cached gain and tells the caller whether that gain
  was computed during the current round and can therefore be trusted.
* :class:`TopK` — a bounded min-heap that keeps the *k* largest scored items.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Generic, Hashable, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["LazyGreedyQueue", "TopK"]

T = TypeVar("T", bound=Hashable)


class LazyGreedyQueue(Generic[T]):
    """Max-priority queue with staleness tracking for lazy (CELF) greedy.

    Usage pattern::

        queue = LazyGreedyQueue()
        for item in candidates:
            queue.push(item, upper_bound(item))
        while selecting:
            item, gain, fresh = queue.pop_best()
            if fresh:
                select(item)
                queue.mark_all_stale()
            else:
                queue.push(item, recompute_gain(item))  # re-insert, now fresh

    The queue stores at most one live entry per item; pushing an item again
    invalidates its previous entry.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, T]] = []
        self._entries: dict = {}
        self._round = 0
        self._rounds: dict = {}
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, item: T) -> bool:
        return item in self._entries

    def push(self, item: T, gain: float) -> None:
        """Insert *item* with *gain*, replacing any previous entry.

        The entry is stamped with the current round, marking it *fresh*.
        """
        count = next(self._counter)
        self._entries[item] = count
        self._rounds[item] = self._round
        heapq.heappush(self._heap, (-gain, count, item))

    def peek_gain(self, item: T) -> Optional[float]:
        """Return the cached gain of *item*, or ``None`` if absent.

        Linear in heap size; intended for tests and diagnostics only.
        """
        if item not in self._entries:
            return None
        count = self._entries[item]
        for neg_gain, entry_count, entry_item in self._heap:
            if entry_item == item and entry_count == count:
                return -neg_gain
        return None

    def pop_best(self) -> Tuple[T, float, bool]:
        """Remove and return ``(item, gain, fresh)`` for the best item.

        *fresh* is ``True`` when the gain was pushed during the current round
        and can be accepted without re-evaluation.

        Raises :class:`IndexError` when the queue is empty.
        """
        while self._heap:
            neg_gain, count, item = heapq.heappop(self._heap)
            if self._entries.get(item) != count:
                continue  # superseded entry
            del self._entries[item]
            fresh = self._rounds.pop(item) == self._round
            return item, -neg_gain, fresh
        raise IndexError("pop from an empty LazyGreedyQueue")

    def discard(self, item: T) -> None:
        """Remove *item* from the queue if present."""
        self._entries.pop(item, None)
        self._rounds.pop(item, None)

    def mark_all_stale(self) -> None:
        """Start a new round: all existing entries become stale."""
        self._round += 1

    def best_gain(self) -> Optional[float]:
        """Return the gain of the current best entry without removing it."""
        while self._heap:
            neg_gain, count, item = self._heap[0]
            if self._entries.get(item) != count:
                heapq.heappop(self._heap)
                continue
            return -neg_gain
        return None


class TopK(Generic[T]):
    """Bounded collection retaining the *k* items with the largest scores.

    Ties are broken by insertion order (earlier insertions win), which keeps
    results deterministic.
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: List[Tuple[float, int, T]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def add(self, item: T, score: float) -> bool:
        """Offer ``(item, score)``; return ``True`` if it was retained."""
        entry = (score, -next(self._counter), item)
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, entry)
            return True
        if entry[:2] > self._heap[0][:2]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def threshold(self) -> Optional[float]:
        """Smallest retained score, or ``None`` while under capacity."""
        if len(self._heap) < self.k:
            return None
        return self._heap[0][0]

    def items(self) -> List[Tuple[T, float]]:
        """Return retained ``(item, score)`` pairs, best first."""
        ordered = sorted(self._heap, key=lambda e: (-e[0], e[1]))
        return [(item, score) for score, _order, item in ordered]

    def __iter__(self) -> Iterator[Tuple[T, float]]:
        return iter(self.items())

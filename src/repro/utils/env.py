"""Validated parsing of the ``REPRO_*`` environment knobs.

The runtime knobs (``REPRO_SHM``, ``REPRO_SHM_ARENA_BYTES``,
``REPRO_NATIVE``) historically parsed their values ad hoc: an unrecognized
switch value silently meant "on" and a malformed size silently fell back to
the default, so a typo like ``REPRO_SHM=ture`` or ``REPRO_NATIVE=2``
changed behaviour without any signal.  These helpers centralise the
parsing with one contract: recognized values parse, everything else raises
a single clear :class:`~repro.utils.validation.ValidationError` naming the
knob, the offending value and the accepted spellings — at the first use of
the knob (process startup for the data plane and kernel dispatch), never a
raw ``ValueError`` traceback from deep inside worker bootstrap.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.utils.validation import ValidationError

__all__ = ["env_positive_int", "env_switch"]


def env_switch(name: str, *, on: Sequence[str], off: Sequence[str]) -> bool:
    """Parse the on/off environment switch *name*.

    Values in *on* (matched case-insensitively) mean ``True``, values in
    *off* mean ``False``; include ``""`` in the side that is the default
    for an unset variable.  Anything else raises a
    :class:`ValidationError` listing the accepted spellings — a typo must
    never silently pick a side.
    """
    raw = os.environ.get(name, "")
    value = raw.strip().lower()
    if value in off:
        return False
    if value in on:
        return True
    accepted = sorted(set(spelling for spelling in (*on, *off) if spelling))
    raise ValidationError(
        f"{name} must be unset or one of {accepted}, got {raw!r}"
    )


def env_positive_int(name: str, default: int) -> int:
    """Parse the positive-integer environment knob *name*.

    Unset (or empty) means *default*; anything that is not a positive
    integer raises a :class:`ValidationError` naming the knob and the
    offending value.
    """
    raw = os.environ.get(name, "")
    if not raw.strip():
        return int(default)
    try:
        value = int(raw)
    except ValueError:
        raise ValidationError(
            f"{name} must be a positive integer (bytes), got {raw!r}"
        ) from None
    if value <= 0:
        raise ValidationError(
            f"{name} must be a positive integer (bytes), got {raw!r}"
        )
    return value

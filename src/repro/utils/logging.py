"""Library logging configuration.

The library logs under the ``repro`` namespace and never configures the
root logger; applications opt in via :func:`enable_console_logging`.

Every record passing through the console handler is run through
:class:`RequestIdFilter`, which injects the active request trace's id
(see :mod:`repro.obs.trace`) as ``record.request_id`` — so both the
plain-text format and the JSON-lines format
(:class:`JsonLogFormatter`, one object per line) correlate log output
with the request that produced it without the call sites doing anything.
"""

from __future__ import annotations

import json
import logging
from typing import Any, Dict, Optional, Union

__all__ = [
    "LOG_LEVELS",
    "JsonLogFormatter",
    "RequestIdFilter",
    "get_logger",
    "enable_console_logging",
]

_BASE = "repro"

#: Names accepted by ``octopus serve --log-level`` → stdlib levels.
LOG_LEVELS: Dict[str, int] = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
}


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the library namespace.

    ``get_logger("topics.em")`` returns the ``repro.topics.em`` logger.
    """
    if name is None:
        return logging.getLogger(_BASE)
    return logging.getLogger(f"{_BASE}.{name}")


class RequestIdFilter(logging.Filter):
    """Stamps every record with the active trace's ``request_id``.

    A filter rather than call-site discipline: any log line emitted
    anywhere under a request's trace context — middleware, backend,
    shard worker — picks up the id automatically.  Records logged
    outside any request get ``request_id = None`` (rendered as ``-`` by
    the text format and omitted by the JSON one).  An explicit
    ``extra={"request_id": ...}`` on the call wins over the context.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        if getattr(record, "request_id", None) is None:
            # Imported lazily: repro.obs.trace logs through this module,
            # so a top-level import would be circular.
            from repro.obs.trace import current_trace

            trace = current_trace()
            record.request_id = (
                trace.request_id if trace is not None else None
            )
        return True


class _TextFormatter(logging.Formatter):
    """The classic one-line text format, with the request id appended
    (as ``rid=<id>``) only when one is set — untraced lines keep their
    historical shape byte for byte."""

    def format(self, record: logging.LogRecord) -> str:
        text = super().format(record)
        request_id = getattr(record, "request_id", None)
        if request_id:
            text = f"{text} rid={request_id}"
        return text


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line — the machine-readable twin of the text
    format, for shipping to a log aggregator.

    Always present: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``.  ``request_id`` appears whenever the record carries one
    (injected by :class:`RequestIdFilter` or passed via ``extra``), and
    the structured slow-query fields (``service``, ``latency_ms``,
    ``stages``) pass through when set — so a slow-query line is fully
    parseable without regexing the message.  Exception info is folded
    into ``exc_info`` as rendered text.
    """

    #: Structured extras copied onto the JSON object when present.
    _EXTRA_FIELDS = ("request_id", "service", "latency_ms", "stages")

    def format(self, record: logging.LogRecord) -> str:
        entry: Dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for name in self._EXTRA_FIELDS:
            value = getattr(record, name, None)
            if value is not None:
                entry[name] = value
        if record.exc_info:
            entry["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(entry, sort_keys=True, default=str)


def enable_console_logging(
    level: Union[int, str] = logging.INFO, *, json_lines: bool = False
) -> logging.Handler:
    """Attach a stderr handler to the library logger and return it.

    *level* may be a stdlib level int or one of the :data:`LOG_LEVELS`
    names (``octopus serve --log-level debug`` passes the name through
    unchanged).  ``json_lines=True`` emits one JSON object per line
    (:class:`JsonLogFormatter`) instead of the text format.  Calling it
    twice replaces the previous handler instead of duplicating output.
    """
    if isinstance(level, str):
        try:
            level = LOG_LEVELS[level.strip().lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level {level!r}; "
                f"choose from {sorted(LOG_LEVELS)}"
            ) from None
    logger = logging.getLogger(_BASE)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    if json_lines:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            _TextFormatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
    handler.addFilter(RequestIdFilter())
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler

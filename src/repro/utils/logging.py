"""Library logging configuration.

The library logs under the ``repro`` namespace and never configures the root
logger; applications opt in via :func:`enable_console_logging`.
"""

from __future__ import annotations

import logging
from typing import Optional

__all__ = ["get_logger", "enable_console_logging"]

_BASE = "repro"


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger in the library namespace.

    ``get_logger("topics.em")`` returns the ``repro.topics.em`` logger.
    """
    if name is None:
        return logging.getLogger(_BASE)
    return logging.getLogger(f"{_BASE}.{name}")


def enable_console_logging(level: int = logging.INFO) -> logging.Handler:
    """Attach a stderr handler to the library logger and return it.

    Calling it twice replaces the previous handler instead of duplicating
    output.
    """
    logger = logging.getLogger(_BASE)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
    )
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler

"""Input validation helpers.

All public entry points of the library validate their arguments through these
helpers so that misuse produces a uniform, descriptive :class:`ValidationError`
instead of a deep ``IndexError`` or a silently wrong answer.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Tuple, Type, Union

import numpy as np

__all__ = [
    "ValidationError",
    "check_type",
    "check_positive",
    "check_nonnegative",
    "check_in_range",
    "check_probability",
    "check_simplex",
    "check_node_id",
    "check_array_shape",
]


class ValidationError(ValueError):
    """Raised when a public API receives an invalid argument."""


def check_type(
    value: Any,
    expected: Union[Type, Tuple[Type, ...]],
    name: str,
) -> Any:
    """Return *value* if it is an instance of *expected*, else raise.

    ``bool`` is rejected where an ``int``/``float`` is expected, because a
    stray boolean almost always indicates a bug at a call site.
    """
    if isinstance(value, bool) and expected in (int, float, (int, float)):
        raise ValidationError(
            f"{name} must be {expected!r}, got boolean {value!r}"
        )
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be an instance of {expected!r}, "
            f"got {type(value).__name__}: {value!r}"
        )
    return value


def check_positive(value: Union[int, float], name: str) -> Union[int, float]:
    """Return *value* if it is a strictly positive number, else raise."""
    check_type(value, (int, float), name)
    if not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: Union[int, float], name: str) -> Union[int, float]:
    """Return *value* if it is a non-negative number, else raise."""
    check_type(value, (int, float), name)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    value: Union[int, float],
    low: float,
    high: float,
    name: str,
    *,
    inclusive: bool = True,
) -> Union[int, float]:
    """Return *value* if ``low <= value <= high`` (or strict), else raise."""
    check_type(value, (int, float), name)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ValidationError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return *value* if it is a valid probability in ``[0, 1]``."""
    return check_in_range(value, 0.0, 1.0, name)


def check_simplex(vector: np.ndarray, name: str, *, atol: float = 1e-6) -> np.ndarray:
    """Return *vector* as a float array if it lies on the probability simplex.

    The vector must be one-dimensional, non-negative, and sum to 1 within
    *atol*.
    """
    array = np.asarray(vector, dtype=np.float64)
    if array.ndim != 1:
        raise ValidationError(
            f"{name} must be a 1-d probability vector, got shape {array.shape}"
        )
    if array.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(array < -atol):
        raise ValidationError(f"{name} must be non-negative, got {array!r}")
    total = float(array.sum())
    if not np.isclose(total, 1.0, atol=atol):
        raise ValidationError(
            f"{name} must sum to 1 (got {total:.6f}); normalise it first"
        )
    return array


def check_node_id(node: int, num_nodes: int, name: str = "node") -> int:
    """Return *node* if it is a valid node identifier for a graph."""
    if isinstance(node, (np.integer,)):
        node = int(node)
    check_type(node, int, name)
    if not 0 <= node < num_nodes:
        raise ValidationError(
            f"{name} must be in [0, {num_nodes}), got {node}"
        )
    return node


def check_array_shape(
    array: np.ndarray,
    shape: Tuple[Optional[int], ...],
    name: str,
) -> np.ndarray:
    """Return *array* if its shape matches *shape* (``None`` = any size)."""
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValidationError(
                f"{name} has size {actual} on axis {axis}, expected {expected}"
            )
    return array


def check_unique(items: Iterable[Any], name: str) -> None:
    """Raise if *items* contains duplicates."""
    seen = set()
    for item in items:
        if item in seen:
            raise ValidationError(f"{name} contains duplicate entry {item!r}")
        seen.add(item)

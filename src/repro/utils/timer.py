"""Timing helpers used by the benchmark harnesses and the query engine."""

from __future__ import annotations

import time
from typing import Dict, List, Optional

__all__ = ["Timer", "Stopwatch"]


class Timer:
    """Context manager measuring wall-clock time in seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None:
            self.elapsed = time.perf_counter() - self._start
            self._start = None


class Stopwatch:
    """Accumulates named time splits; used for per-phase query statistics.

    >>> watch = Stopwatch()
    >>> with watch.phase("bounds"):
    ...     pass
    >>> "bounds" in watch.totals()
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    class _Phase:
        def __init__(self, watch: "Stopwatch", name: str) -> None:
            self._watch = watch
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Stopwatch._Phase":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc_info: object) -> None:
            elapsed = time.perf_counter() - self._start
            totals = self._watch._totals
            counts = self._watch._counts
            totals[self._name] = totals.get(self._name, 0.0) + elapsed
            counts[self._name] = counts.get(self._name, 0) + 1

    def phase(self, name: str) -> "Stopwatch._Phase":
        """Return a context manager accumulating into split *name*."""
        return Stopwatch._Phase(self, name)

    def totals(self) -> Dict[str, float]:
        """Total seconds per split name."""
        return dict(self._totals)

    def counts(self) -> Dict[str, int]:
        """Number of times each split was entered."""
        return dict(self._counts)

    def reset(self) -> None:
        """Clear all accumulated splits."""
        self._totals.clear()
        self._counts.clear()

    def report(self) -> List[str]:
        """Human-readable lines, longest total first."""
        lines = []
        for name, total in sorted(self._totals.items(), key=lambda kv: -kv[1]):
            count = self._counts[name]
            lines.append(f"{name:<24s} {total * 1e3:9.2f} ms  ({count} calls)")
        return lines

"""Random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument that may
be ``None``, an integer, or a :class:`numpy.random.Generator`, and converts it
through :func:`as_generator`.  Components that spawn parallel sub-streams use
:func:`spawn_generators` so that results are reproducible regardless of the
order in which sub-streams are consumed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

__all__ = ["SeedLike", "as_generator", "spawn_generators"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so callers can share
    one stream across components when they want correlated randomness.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Create *count* independent generators derived from *seed*.

    The streams are statistically independent (via ``SeedSequence.spawn``) and
    deterministic given the same *seed* and *count*.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a fresh seed sequence from the generator's bit stream so the
        # spawned streams remain reproducible with respect to generator state.
        entropy = int(seed.integers(0, 2**63 - 1))
        sequence = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        sequence = seed
    else:
        sequence = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(count)]

"""Shared utilities for the OCTOPUS reproduction.

This subpackage has no dependencies on the rest of :mod:`repro`; every other
subpackage may depend on it.
"""

from repro.utils.heap import LazyGreedyQueue, TopK
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Stopwatch, Timer
from repro.utils.validation import (
    ValidationError,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_probability,
    check_simplex,
    check_type,
)

__all__ = [
    "LazyGreedyQueue",
    "TopK",
    "as_generator",
    "spawn_generators",
    "Stopwatch",
    "Timer",
    "ValidationError",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_probability",
    "check_simplex",
    "check_type",
]

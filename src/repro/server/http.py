"""HTTP wire transport over the typed OCTOPUS service envelopes.

:class:`OctopusHTTPServer` is a threaded stdlib HTTP server (no external
dependencies) that speaks exactly the JSON request/response envelopes of
:mod:`repro.service` — the same bytes ``octopus query`` reads and writes:

============  ======  ====================================================
path          method  body
============  ======  ====================================================
``/query``    POST    one JSON request object → one response envelope
``/batch``    POST    JSON array of requests → JSON array of envelopes
                      (served through ``execute_batch``, so duplicates are
                      shared; per-slot failures stay in their envelope and
                      the HTTP status is 200)
``/stats``    GET     merged service/cache/backend/HTTP counters
``/healthz``  GET     liveness: status, uptime, requests served
``/metrics``  GET     Prometheus text exposition (unauthenticated, inline)
============  ======  ====================================================

Requests are traced end to end (:mod:`repro.obs`): every ``/query`` /
``/batch`` gets a request id — adopted from a well-formed
``X-Request-Id`` header or minted — echoed as a response header and in
the envelope's wall-clock section, an ``X-Debug-Timings: 1`` header opts
into the per-stage ``timings`` breakdown, and requests slower than the
server's ``slow_query_ms`` threshold emit one structured slow-query log
line.  Tracing can be disabled per server (``tracing=False``) or via
``REPRO_TRACE=0``; serving bytes under ``deterministic_form`` are
identical either way.

The dispatcher behind the socket is anything with the service executor
shape — a plain :class:`~repro.service.OctopusService` or a
:class:`~repro.service.ConcurrentOctopusService` worker pool — so the
serving semantics (caching, metrics, validation, in-flight de-duplication)
are whatever the chosen executor already provides; this module adds the
wire, not new semantics.

Structured errors map onto HTTP statuses through
:data:`HTTP_STATUS_BY_ERROR_CODE` (client mistakes are 4xx, only genuine
``internal_error`` envelopes are 5xx), and every body — success or failure
— is a parseable envelope, so clients never scrape HTML error pages.

Shutdown is graceful: :meth:`OctopusHTTPServer.shutdown_gracefully` stops
accepting, drains in-flight handler threads, closes the executor's worker
pool and folds the last requests into a final statistics snapshot —
nothing served is ever dropped from the metrics.
"""

from __future__ import annotations

import json
import ssl
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Union
from urllib.parse import urlsplit

from repro.obs.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.obs.prometheus import render_exposition
from repro.obs.trace import (
    RequestTrace,
    clean_request_id,
    default_slow_query_ms,
    maybe_log_slow,
    stamp_response,
    trace_context,
    tracing_enabled_default,
)
from repro.server.wire import (
    HTTP_STATUS_BY_ERROR_CODE,
    HTTPCounters,
    batch_body_text,
    bearer_token_matches,
    decode_body,
    parse_batch,
    parse_content_length,
    retry_after_header_value,
    retry_after_hint,
    route_error_envelope,
    status_for_response,
    unauthorized_envelope,
)
from repro.service.concurrent import ConcurrentOctopusService
from repro.service.dispatcher import OctopusService
from repro.service.responses import ServiceResponse, jsonify

__all__ = [
    "HTTP_STATUS_BY_ERROR_CODE",
    "OctopusHTTPServer",
    "serve_in_background",
    "status_for_response",
]

ServiceExecutor = Union[OctopusService, ConcurrentOctopusService]

# The protocol tables and envelope builders live in the transport-neutral
# :mod:`repro.server.wire` (shared with the asyncio gateway); this module
# keeps the threaded transport only.
_HTTPCounters = HTTPCounters  # back-compat alias for external imports


class _OctopusRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the server's service executor."""

    protocol_version = "HTTP/1.1"  # keep-alive: clients reuse connections

    # Headers and body go out as separate writes; with Nagle enabled the
    # second write stalls behind the peer's delayed ACK (~40 ms per
    # response on loopback).  TCP_NODELAY sends both immediately.
    disable_nagle_algorithm = True

    # Mypy-friendly narrowing: the ThreadingHTTPServer we run under.
    server: "OctopusHTTPServer"

    # Per-request tracing state, reset at the top of every do_* so a
    # keep-alive connection can never leak one request's trace (or start
    # time) into the next exchange on the same handler instance.
    _active_trace: Optional[RequestTrace] = None
    _request_started: Optional[float] = None

    def setup(self) -> None:
        # Bound every socket read so an idle keep-alive connection cannot
        # pin a handler thread forever (the graceful drain joins them).
        self.timeout = self.server.request_timeout
        super().setup()

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server's casing
        self._request_started = time.perf_counter()
        self._active_trace = None
        path = urlsplit(self.path).path
        if path == "/healthz":
            # Liveness stays open even behind auth: probes and load
            # balancers must not need the shared secret to see "alive".
            self._send_json(200, self.server.health())
        elif path == "/metrics":
            # The scrape endpoint mirrors /healthz: unauthenticated and
            # answered inline from in-process counters, so it stays green
            # under saturation and a scraper never needs the shared secret.
            self._send_json(
                200,
                self.server.metrics_exposition(),
                content_type=PROMETHEUS_CONTENT_TYPE,
            )
        elif not self._authorized():
            pass  # 401 envelope already sent
        elif path == "/stats":
            self._send_json(200, jsonify(self.server.stats()))
        else:
            if self.headers.get("Content-Length"):
                # An unconsumed body would be parsed as the next request
                # line on this keep-alive connection; don't reuse it.
                self.close_connection = True
            self._send_envelope(self._route_error(path, ("/query", "/batch")))

    def do_POST(self) -> None:  # noqa: N802 — http.server's casing
        self._request_started = time.perf_counter()
        self._active_trace = self._begin_trace()
        path = urlsplit(self.path).path
        if not self._authorized():
            return  # 401 envelope already sent
        if path == "/query":
            self._handle_query()
        elif path == "/batch":
            self._handle_batch()
        else:
            # The POST body is never read on this path; close so its
            # bytes cannot poison the next keep-alive request.
            self.close_connection = True
            self._send_envelope(
                self._route_error(path, ("/stats", "/healthz", "/metrics"))
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def _begin_trace(self) -> Optional[RequestTrace]:
        """A fresh request trace, or ``None`` with tracing disabled.

        Adopts a well-formed ``X-Request-Id`` header (anything unsafe to
        echo is discarded and a fresh id minted); ``X-Debug-Timings``
        opts the response into the per-stage ``timings`` breakdown.
        """
        if not self.server.tracing:
            return None
        request_id = clean_request_id(self.headers.get("X-Request-Id"))
        debug = self.headers.get("X-Debug-Timings", "").strip().lower() in (
            "1",
            "true",
            "yes",
            "on",
        )
        return RequestTrace(request_id, debug=debug)

    def _handle_query(self) -> None:
        """One JSON request in, one envelope out; the dispatcher does the
        coercion so malformed bodies become ``malformed_request`` envelopes."""
        body = self._read_body()
        if body is None:
            return
        with trace_context(self._active_trace):
            response = self.server.service.execute(body)
        self._send_envelope(response)

    def _handle_batch(self) -> None:
        """A JSON array in, an array of envelopes out (HTTP 200 even when
        individual slots failed — per-slot status lives in each envelope)."""
        body = self._read_body()
        if body is None:
            return
        entries, error = parse_batch(body)
        if error is not None:
            self._send_envelope(error)
            return
        trace = self._active_trace
        with trace_context(trace):
            responses = self.server.service.execute_batch(entries)
        if trace is not None:
            responses = [stamp_response(item, trace) for item in responses]
            maybe_log_slow(
                trace,
                service="batch",
                latency_ms=trace.elapsed_ms(),
                threshold_ms=self.server.slow_query_ms,
            )
        self._send_json(200, batch_body_text(responses))

    def _authorized(self) -> bool:
        """Shared-secret check: ``Authorization: Bearer <token>``.

        Only enforced when the server was given an ``auth_token``.  A
        missing or wrong token gets a structured 401 envelope (code
        ``unauthorized``) — parseable like every other body — and the
        connection is closed, since any request body stays unread.
        """
        token = self.server.auth_token
        if token is None:
            return True
        if bearer_token_matches(self.headers.get("Authorization", ""), token):
            return True
        self.close_connection = True  # the body (if any) is never drained
        self._send_envelope(unauthorized_envelope())
        return False

    @staticmethod
    def _route_error(path: str, hint_paths: tuple) -> ServiceResponse:
        """404 for unknown paths, 405 for a known path with the wrong verb."""
        return route_error_envelope(path, hint_paths)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _read_body(self) -> Optional[str]:
        """The request body as text, or ``None`` after sending an error.

        A missing Content-Length or an oversized declared size drops the
        connection: the unread (or unbuffered) body would otherwise poison
        the next keep-alive request on it.
        """
        length, error = parse_content_length(
            self.headers.get("Content-Length"), self.server.max_body_bytes
        )
        if error is not None:
            self.close_connection = True
            self._send_envelope(error)
            return None
        raw = self.rfile.read(length)
        text, error = decode_body(raw)
        if error is not None:
            self._send_envelope(error)
            return None
        return text

    def _send_envelope(self, response: ServiceResponse) -> None:
        """Send one envelope with its mapped HTTP status.

        Rate-limit envelopes carry their refill deficit as a
        ``Retry-After`` header (ceil'd — see
        :func:`~repro.server.wire.retry_after_header_value`), so clients
        opted into retries sleep long enough instead of burning an
        attempt on a guaranteed second 429.

        With a trace active the envelope (error envelopes included) is
        stamped with the request id — and debug timings when requested —
        and a request over the slow-query threshold logs one structured
        line before the bytes go out.
        """
        trace = self._active_trace
        if trace is not None:
            response = stamp_response(response, trace)
            maybe_log_slow(
                trace,
                service=response.service,
                latency_ms=trace.elapsed_ms(),
                threshold_ms=self.server.slow_query_ms,
            )
        hint = retry_after_hint(response)
        extra_headers = (
            {"Retry-After": retry_after_header_value(hint)}
            if hint is not None
            else None
        )
        self._send_json(
            status_for_response(response),
            response.to_json(),
            extra_headers=extra_headers,
        )

    def _send_json(
        self,
        status: int,
        payload: Any,
        extra_headers: Optional[Dict[str, str]] = None,
        content_type: str = "application/json",
    ) -> None:
        """Send *payload* (JSON text or a JSON-able object) with *status*."""
        if not isinstance(payload, str):
            payload = json.dumps(payload, sort_keys=True)
        body = payload.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if self._active_trace is not None:
            self.send_header("X-Request-Id", self._active_trace.request_id)
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        if self.server.draining:
            # Ask clients off persistent connections so the drain finishes
            # without waiting out idle keep-alive timeouts.
            self.close_connection = True
        if self.close_connection:
            # Announce the close (set above, or by an error path that left
            # the body unread) so well-behaved clients reconnect instead
            # of tripping over an unexpected disconnect.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)
        started = self._request_started
        self.server.http_counters.record(
            urlsplit(self.path).path,
            status,
            duration_ms=(time.perf_counter() - started) * 1e3
            if started is not None
            else None,
        )

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        """Quiet by default; flip ``server.verbose`` for stderr access logs."""
        if self.server.verbose:
            super().log_message(format, *args)


class OctopusHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server over an OCTOPUS service executor.

    Each connection is handled on its own thread; the executor underneath
    decides how requests are actually scheduled (a serial dispatcher
    computes on the handler thread, a concurrent executor hands off to its
    worker pool).  ``port=0`` binds an ephemeral port — the test harness's
    way of running many servers without collisions; the bound address is
    on :attr:`url`.
    """

    # Drain semantics: handler threads are tracked (non-daemon) and joined
    # by ``server_close()``, so close == every in-flight request finished.
    daemon_threads = False
    block_on_close = True

    def __init__(
        self,
        service: ServiceExecutor,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        request_timeout: float = 10.0,
        max_body_bytes: int = 8 * 1024 * 1024,
        auth_token: Optional[str] = None,
        ssl_context: Optional[ssl.SSLContext] = None,
        verbose: bool = False,
        tracing: Optional[bool] = None,
        slow_query_ms: Optional[float] = None,
    ) -> None:
        self.service = service
        self.request_timeout = float(request_timeout)
        self.max_body_bytes = int(max_body_bytes)
        self.auth_token = auth_token
        self.ssl_context = ssl_context
        self.verbose = verbose
        # Tracing defaults from the environment (REPRO_TRACE /
        # REPRO_SLOW_QUERY_MS) unless the caller pins them explicitly.
        self.tracing = (
            tracing_enabled_default() if tracing is None else bool(tracing)
        )
        self.slow_query_ms = (
            default_slow_query_ms()
            if slow_query_ms is None
            else float(slow_query_ms)
        )
        self.draining = False
        self.http_counters = HTTPCounters()
        self.final_stats: Optional[Dict[str, Any]] = None
        self._started_at = time.monotonic()
        self._serve_thread: Optional[threading.Thread] = None
        self._accept_loop_entered = threading.Event()
        # Serializes the loop-started / drain-started decision so a drain
        # racing a background serve thread can never leave the loop
        # running (or starting) against a closed socket.
        self._lifecycle_lock = threading.Lock()
        # Serializes whole shutdowns: concurrent callers drain once and
        # all receive the same final snapshot.
        self._shutdown_lock = threading.Lock()
        super().__init__((host, port), _OctopusRequestHandler)
        if ssl_context is not None:
            # Wrap the *listening* socket so every accepted connection is
            # TLS.  The handshake is deferred (do_handshake_on_connect
            # False) to the handler thread's first read — a slow or bogus
            # client then stalls only its own handler (bounded by the
            # request timeout), never the accept loop.
            self.socket = ssl_context.wrap_socket(
                self.socket, server_side=True, do_handshake_on_connect=False
            )

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        """The accept loop; tracked so a graceful shutdown knows whether
        ``BaseServer.shutdown`` has a loop to signal (calling it when the
        loop never ran would wait forever on the is-shut-down event).

        A drain that already began wins the race against a background
        serve thread still starting up: the loop then never runs against
        the closed socket.
        """
        with self._lifecycle_lock:
            if self.draining:
                return
            self._accept_loop_entered.set()
        super().serve_forever(poll_interval)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def url(self) -> str:
        """Base URL of the bound socket (ephemeral port resolved)."""
        host, port = self.server_address[:2]
        scheme = "https" if self.ssl_context is not None else "http"
        return f"{scheme}://{host}:{port}"

    def health(self) -> Dict[str, Any]:
        """The ``/healthz`` body: liveness, uptime and request count.

        When the executor exposes its own ``health()`` (the cluster
        coordinator's per-shard liveness), the details are merged in and a
        degraded executor flips ``status`` to ``"degraded"`` — load
        balancers see a sharded deployment losing shards without parsing
        executor internals.
        """
        snapshot = self.http_counters.snapshot()
        payload: Dict[str, Any] = {
            "status": "draining" if self.draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "requests_served": snapshot["http.requests"],
            "executor": type(self.service).__name__,
        }
        describe = getattr(self.service, "health", None)
        if callable(describe):
            details = describe()
            payload["cluster"] = details
            if details.get("degraded") and not self.draining:
                payload["status"] = "degraded"
        return payload

    def stats(self) -> Dict[str, Any]:
        """Service + backend + HTTP counters in one flat dict (floats plus
        the executor/backend identity strings)."""
        stats = dict(self.service.stats())
        stats.update(self.http_counters.snapshot())
        return stats

    def metrics_exposition(self) -> str:
        """The ``GET /metrics`` body (Prometheus text format 0.0.4).

        Rendered from in-process state only — the executor's
        ``ServiceMetrics`` and this server's HTTP counters — never from
        ``stats()``, which on a cluster executor pings every shard; a
        scrape must stay cheap and green under saturation.
        """
        metrics = getattr(self.service, "metrics", None)
        return render_exposition(
            service_state=metrics.export_state() if metrics is not None else None,
            http_state=self.http_counters.export_state(),
            extra={
                "uptime_seconds": round(
                    time.monotonic() - self._started_at, 3
                ),
            },
        )

    def handle_error(self, request: Any, client_address: Any) -> None:
        """Keep client disconnects quiet; defer to the base otherwise.

        A client dropping its socket mid-response (or an idle keep-alive
        connection timing out, or a plaintext client babbling at a TLS
        port) is normal serving weather, not a stack trace.
        """
        exc_type = sys.exc_info()[0]
        if exc_type is not None and issubclass(
            exc_type, (ConnectionError, TimeoutError, ssl.SSLError)
        ):
            return
        if self.verbose:
            super().handle_error(request, client_address)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown_gracefully(self) -> Dict[str, Any]:
        """Stop accepting, drain in-flight requests, close the executor.

        Safe to call from any thread (including after ``serve_forever``
        was interrupted) and idempotent.  Returns the final statistics
        snapshot — taken *after* the drain, so every served request is in
        the counters — which is also kept on :attr:`final_stats`.
        """
        with self._shutdown_lock:
            if self.final_stats is not None:
                return self.final_stats
            with self._lifecycle_lock:
                self.draining = True
                loop_started = self._accept_loop_entered.is_set()
            if loop_started:
                self.shutdown()  # stop the accept loop
            self.server_close()  # joins every in-flight handler thread
            if self._serve_thread is not None and self._serve_thread.is_alive():
                self._serve_thread.join(timeout=self.request_timeout)
            stats = self.stats()  # snapshot before the pool goes away
            close = getattr(self.service, "close", None)
            if callable(close):
                close()  # drain the concurrent executor's worker pool
            self.final_stats = stats
            return stats


def serve_in_background(
    service: ServiceExecutor,
    host: str = "127.0.0.1",
    port: int = 0,
    **server_kwargs: Any,
) -> OctopusHTTPServer:
    """Boot a server on its own thread and return it once it accepts.

    The pattern tests, benchmarks and examples share: bind (ephemeral port
    by default), start ``serve_forever`` on a daemon thread, hand back the
    server so the caller can read :attr:`~OctopusHTTPServer.url` and later
    :meth:`~OctopusHTTPServer.shutdown_gracefully`.
    """
    server = OctopusHTTPServer(service, host, port, **server_kwargs)
    thread = threading.Thread(
        target=server.serve_forever, name="octopus-http", daemon=True
    )
    thread.start()
    server._serve_thread = thread
    # Hand the server back only once the accept loop is committed, so an
    # immediate shutdown_gracefully() signals a loop that really exists.
    server._accept_loop_entered.wait(timeout=5.0)
    return server

"""Typed HTTP client for an :class:`~repro.server.http.OctopusHTTPServer`.

:class:`OctopusClient` is the thin stub typed code and tests use to talk
to a remote OCTOPUS server: it posts the JSON envelope forms of
:class:`~repro.service.requests.ServiceRequest` and parses the body back
into :class:`~repro.service.responses.ServiceResponse` — regardless of the
HTTP status, since the server guarantees every body is a parseable
envelope.  The result is location transparency: code written against
``OctopusService.execute`` / ``execute_batch`` / ``stats`` runs unchanged
against a client pointed at a server.

Connections are persistent and **per thread** (a ``threading.local`` of
``http.client.HTTPConnection``), so one shared client instance is safe to
hammer from a multi-threaded stress harness while still reusing sockets.
Only genuine transport faults — refused connection, timeout, a body that
is not our protocol — raise, as :class:`OctopusTransportError`; everything
the server itself said comes back as an envelope.
"""

from __future__ import annotations

import http.client
import json
import ssl
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import urlsplit

from repro.service.requests import ServiceRequest
from repro.service.responses import ServiceResponse
from repro.utils.validation import ValidationError

__all__ = ["OctopusClient", "OctopusTransportError", "OctopusRateLimitedError"]

RequestLike = Union[ServiceRequest, Dict[str, Any], str]


class OctopusTransportError(ConnectionError):
    """The wire itself failed: no connection, timeout, or a non-protocol
    body.  Server-side failures never raise this — they are envelopes."""


class OctopusRateLimitedError(OctopusTransportError):
    """Raised when opt-in 429 retries are exhausted and the server is
    still shedding.  Carries the server's last ``Retry-After`` hint (in
    seconds) on :attr:`retry_after` so callers can back off honestly."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = float(retry_after)


def _build_ssl_context(
    verify: Union[bool, str, ssl.SSLContext],
) -> ssl.SSLContext:
    """The client-side TLS context for a *verify* policy.

    ``True`` → system trust store; a path → that CA bundle (how tests and
    private deployments trust a self-signed server); ``False`` → no
    verification (tooling escape hatch — the connection is still
    encrypted, but the peer is unauthenticated); a ready
    ``ssl.SSLContext`` passes through untouched.
    """
    if isinstance(verify, ssl.SSLContext):
        return verify
    if verify is True:
        return ssl.create_default_context()
    if verify is False:
        context = ssl.create_default_context()
        context.check_hostname = False
        context.verify_mode = ssl.CERT_NONE
        return context
    return ssl.create_default_context(cafile=str(verify))


def _encode(request: RequestLike) -> str:
    """A request's wire body: typed → ``to_json``, dict → dumped, raw
    strings pass through untouched (the server validates them)."""
    if isinstance(request, ServiceRequest):
        return request.to_json()
    if isinstance(request, dict):
        return json.dumps(request, sort_keys=True)
    if isinstance(request, str):
        return request
    raise TypeError(
        f"request must be a ServiceRequest, dict or JSON string, "
        f"got {type(request).__name__}"
    )


class OctopusClient:
    """Client-side stub speaking the OCTOPUS HTTP wire protocol.

    Mirrors the service executor surface (:meth:`execute`,
    :meth:`execute_batch`, :meth:`stats`) plus the wire-only
    :meth:`health`, and is a context manager::

        with OctopusClient("http://127.0.0.1:8642") as client:
            response = client.execute(FindInfluencersRequest("data mining"))
            assert response.ok
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        auth_token: Optional[str] = None,
        verify: Union[bool, str, ssl.SSLContext] = True,
        retries: int = 0,
        request_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme not in ("http", "https"):
            raise ValueError(
                f"only http:// and https:// URLs are supported, got {url!r}"
            )
        if not parts.hostname:
            raise ValueError(f"URL has no host: {url!r}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.scheme: str = parts.scheme
        self.host: str = parts.hostname
        self.port: int = (
            parts.port
            if parts.port is not None
            else (443 if parts.scheme == "https" else 80)
        )
        self.prefix: str = parts.path.rstrip("/")
        self.timeout = float(timeout)
        self.auth_token = auth_token
        self.retries = int(retries)
        # Extra headers sent with every request — how callers propagate a
        # trace across hops (``X-Request-Id``) or opt into the per-stage
        # breakdown (``X-Debug-Timings: 1``).
        self.request_headers: Dict[str, str] = dict(request_headers or {})
        self._ssl_context: Optional[ssl.SSLContext] = (
            _build_ssl_context(verify) if parts.scheme == "https" else None
        )
        self.closed = False
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()

    # ------------------------------------------------------------------
    # The service executor surface
    # ------------------------------------------------------------------

    def execute(self, request: RequestLike) -> ServiceResponse:
        """POST one request to ``/query`` and parse the envelope."""
        _status, payload = self._request("POST", "/query", _encode(request))
        return self._envelope(payload)

    def execute_batch(
        self, requests: Sequence[RequestLike]
    ) -> List[ServiceResponse]:
        """POST a JSON array to ``/batch``; envelopes come back in order.

        Entries may be typed requests, dicts, or JSON strings (parsed
        client-side — an array element must be a JSON value).  Per-slot
        failures come back inside their envelopes; a whole-batch rejection
        (which a well-formed client never triggers) raises
        :class:`~repro.utils.validation.ValidationError`.
        """
        entries = [self._batch_entry(request) for request in requests]
        body = json.dumps(entries, sort_keys=True)
        _status, payload = self._request("POST", "/batch", body)
        if isinstance(payload, dict) and "service" in payload:
            envelope = ServiceResponse.from_dict(payload)
            message = (
                envelope.error.message if envelope.error else "batch rejected"
            )
            raise ValidationError(f"batch rejected by server: {message}")
        if not isinstance(payload, list):
            raise OctopusTransportError(
                f"batch endpoint returned {type(payload).__name__}, "
                f"expected a JSON array"
            )
        return [self._envelope(entry) for entry in payload]

    def stats(self) -> Dict[str, Any]:
        """GET ``/stats``: the server's merged statistics snapshot.

        Numeric counters come back as floats; the executor/backend
        identity strings (``executor.kind``, ``execution.backend``) pass
        through untouched.
        """
        _status, payload = self._request("GET", "/stats")
        if not isinstance(payload, dict):
            raise OctopusTransportError("stats endpoint did not return an object")
        return {
            str(key): (
                float(value)
                if isinstance(value, (int, float)) and not isinstance(value, bool)
                else value
            )
            for key, value in payload.items()
        }

    def health(self) -> Dict[str, Any]:
        """GET ``/healthz``: liveness, uptime and request count."""
        _status, payload = self._request("GET", "/healthz")
        if not isinstance(payload, dict):
            raise OctopusTransportError("healthz endpoint did not return an object")
        return payload

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Close every pooled connection (from all threads); idempotent."""
        self.closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            try:
                connection.close()
            except OSError:  # pragma: no cover — close is best-effort
                pass
        self._local = threading.local()

    def __enter__(self) -> "OctopusClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _connection(self) -> "tuple[http.client.HTTPConnection, bool]":
        """This thread's persistent connection and whether it is reused.

        Freshness matters for retry safety: only a *reused* socket can be
        a stale keep-alive the server quietly timed out.

        Raises ``RuntimeError`` after :meth:`close`: a post-close request
        would otherwise open a fresh socket into the already-swapped-out
        pool, where nothing would ever reclaim it.
        """
        if self.closed:
            raise RuntimeError("client is closed")
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection, True
        if self._ssl_context is not None:
            connection = http.client.HTTPSConnection(
                self.host,
                self.port,
                timeout=self.timeout,
                context=self._ssl_context,
            )
        else:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        with self._connections_lock:
            # close() may have won the race since the check above; its
            # sweep of self._connections has already happened, so an
            # append now would leak the socket forever.
            if self.closed:
                try:
                    connection.close()
                except OSError:  # pragma: no cover — close is best-effort
                    pass
                raise RuntimeError("client is closed")
            self._connections.append(connection)
        self._local.connection = connection
        return connection, False

    def _drop_connection(self) -> None:
        """Discard this thread's connection after a transport fault."""
        connection = getattr(self._local, "connection", None)
        self._local.connection = None
        if connection is not None:
            with self._connections_lock:
                if connection in self._connections:
                    self._connections.remove(connection)
            try:
                connection.close()
            except OSError:  # pragma: no cover — close is best-effort
                pass

    def _request(
        self, method: str, path: str, body: Optional[str] = None
    ) -> Any:
        """One logical request → ``(status, parsed JSON body)``.

        Honors ``Retry-After`` on 429 when retries are opted in
        (``retries=N``): sleeps the server's hint (bounded by the client
        timeout) and re-sends, at most N times.  With retries off (the
        default), the 429 envelope comes straight back — annotated with
        the header's ``retry_after_seconds`` so callers see the hint even
        without reading headers.  Exhausted retries raise
        :class:`OctopusRateLimitedError` carrying the last hint.
        """
        attempt = 0
        while True:
            status, payload, retry_after = self._exchange(method, path, body)
            if status != 429:
                return status, payload
            hint = retry_after if retry_after is not None else 1.0
            if isinstance(payload, dict):
                details = (payload.get("error") or {}).setdefault("details", {})
                details.setdefault("retry_after_seconds", hint)
            if attempt >= self.retries:
                if self.retries == 0:
                    return status, payload
                raise OctopusRateLimitedError(
                    f"{method} {path} still rate-limited after "
                    f"{self.retries} retries; server says retry after "
                    f"{hint:g}s",
                    retry_after=hint,
                )
            time.sleep(min(max(hint, 0.0), self.timeout))
            attempt += 1

    def _exchange(
        self, method: str, path: str, body: Optional[str] = None
    ) -> Tuple[int, Any, Optional[float]]:
        """One HTTP exchange → ``(status, parsed body, retry_after)``.

        Retry policy (requests are not idempotent, so at-most-once
        delivery matters): retry exactly once, only on a **reused**
        keep-alive socket — the only kind that can be stale — and only
        when the request provably never got an answer: the send itself
        failed (the server's idle timeout closed the socket before our
        bytes reached a handler), or the connection closed without a
        single response byte (``RemoteDisconnected``).  A fresh
        connection failing, or a connection dying mid-response (when the
        server may already have executed the request), raises
        :class:`OctopusTransportError` instead of silently re-executing.
        """
        if self.closed:
            raise OctopusTransportError("client is closed")
        url = self.prefix + path
        data = body.encode("utf-8") if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        headers.update(self.request_headers)
        if self.auth_token is not None:
            headers["Authorization"] = f"Bearer {self.auth_token}"
        for attempt in (0, 1):
            connection, reused = self._connection()
            sending = True
            try:
                connection.request(method, url, body=data, headers=headers)
                sending = False
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, http.client.HTTPException, OSError) as error:
                self._drop_connection()
                stale = reused and (
                    sending
                    or isinstance(error, http.client.RemoteDisconnected)
                )
                if attempt == 0 and stale:
                    continue  # stale keep-alive: one fresh-socket retry
                raise OctopusTransportError(
                    f"{method} {self.host}:{self.port}{url} failed: "
                    f"{type(error).__name__}: {error}"
                ) from error
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise OctopusTransportError(
                    f"server returned a non-JSON body "
                    f"(status {response.status}): {error}"
                ) from error
            retry_after: Optional[float] = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None  # HTTP-date form: fall back to default
            return response.status, payload, retry_after
        raise AssertionError("unreachable")  # pragma: no cover

    @staticmethod
    def _batch_entry(request: RequestLike) -> Any:
        """One batch slot as a JSON value (strings are parsed client-side)."""
        if isinstance(request, ServiceRequest):
            return request.to_dict()
        if isinstance(request, str):
            try:
                return json.loads(request)
            except json.JSONDecodeError as error:
                raise ValidationError(
                    f"batch entry is not valid JSON: {error}"
                ) from None
        return request

    @staticmethod
    def _envelope(payload: Any) -> ServiceResponse:
        """Parse one envelope dict, guarding against non-protocol bodies."""
        if not isinstance(payload, dict) or "service" not in payload:
            raise OctopusTransportError(
                "server body is not a ServiceResponse envelope"
            )
        return ServiceResponse.from_dict(payload)

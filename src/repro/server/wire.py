"""Transport-neutral pieces of the OCTOPUS HTTP wire protocol.

Two front ends serve the JSON envelopes today — the threaded stdlib
server (:mod:`repro.server.http`) and the asyncio gateway
(:mod:`repro.gateway.http`) — and both must speak *exactly* the same
protocol: the same error-code → status mapping, the same structured
envelopes for transport-level failures (bad Content-Length, oversized
bodies, non-UTF-8 payloads, unknown paths, wrong verbs, bad bearer
tokens), and the same ``http.*`` counters.  This module is that shared
contract, written once with no dependency on either transport: every
helper takes plain values (header strings, byte bodies, paths) and
returns either a parsed value or a ready-to-send
:class:`~repro.service.responses.ServiceResponse` — never an exception.

The rule that makes the wire debuggable holds everywhere: **every body is
a parseable envelope**, success or failure, so clients never scrape HTML
error pages, and a load balancer can tell "you sent garbage" (4xx) from
"shed for capacity" (429) from "the server broke" (500) by status class
alone.
"""

from __future__ import annotations

import hmac
import json
import math
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.histogram import LatencyHistogram
from repro.service.responses import ServiceResponse

__all__ = [
    "HTTP_STATUS_BY_ERROR_CODE",
    "KNOWN_PATHS",
    "HTTPCounters",
    "status_for_response",
    "bearer_token_matches",
    "unauthorized_envelope",
    "route_error_envelope",
    "parse_content_length",
    "decode_body",
    "parse_batch",
    "batch_body_text",
    "retry_after_header_value",
    "retry_after_hint",
]

#: Structured error code → HTTP status.  Client mistakes are 4xx so a
#: load balancer or the stress harness can tell "you sent garbage" from
#: "the server broke"; only ``internal_error`` (and codes this table does
#: not know, conservatively) surface as 5xx.
HTTP_STATUS_BY_ERROR_CODE: Dict[str, int] = {
    "malformed_request": 400,
    "unauthorized": 401,
    "invalid_request": 400,
    "unknown_service": 400,
    "payload_too_large": 413,
    "rate_limited": 429,
    "not_found": 404,
    "method_not_allowed": 405,
    "internal_error": 500,
}

#: The paths the servers actually serve; anything else is bucketed under
#: one ``http.path.other`` counter so a URL scanner cannot grow the
#: per-path stats dict without bound.
KNOWN_PATHS = ("/query", "/batch", "/stats", "/healthz", "/metrics")


def status_for_response(response: ServiceResponse) -> int:
    """The HTTP status carrying *response*: 200 on success, mapped 4xx/5xx
    via :data:`HTTP_STATUS_BY_ERROR_CODE` on failure (unknown codes are
    conservatively 500)."""
    if response.ok:
        return 200
    assert response.error is not None
    return HTTP_STATUS_BY_ERROR_CODE.get(response.error.code, 500)


def retry_after_header_value(seconds: float) -> str:
    """``Retry-After`` delta-seconds for *seconds*, as header text.

    Rounds **up** to an integral second (and never below 1): the rate
    limiter reports fractional deficits, and a truncated value would let
    a client with ``retries=N`` legally retry before the bucket refills —
    burning a retry attempt on a guaranteed second 429.
    """
    return str(max(1, int(math.ceil(float(seconds)))))


def retry_after_hint(response: ServiceResponse) -> Optional[float]:
    """The ``retry_after_seconds`` hint in a rate-limit envelope, if any.

    Both front ends use this to decide whether a 429 response carries a
    ``Retry-After`` header (via :func:`retry_after_header_value`).
    """
    if response.ok or response.error is None:
        return None
    if response.error.code != "rate_limited":
        return None
    value = response.error.details.get("retry_after_seconds")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


class HTTPCounters:
    """Thread-safe request/response counters for the ``http.*`` stats.

    Shared by both front ends so ops dashboards read the same keys
    whichever transport served the traffic.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_path: Dict[str, int] = {}
        self._by_status_class: Dict[str, int] = {}
        self._total = 0
        self.latency = LatencyHistogram()

    def record(
        self, path: str, status: int, duration_ms: Optional[float] = None
    ) -> None:
        """Fold one served HTTP exchange into the counters.

        *duration_ms*, when the front end measured it, feeds the overall
        HTTP latency histogram (the histogram has its own lock, so the
        observation happens outside this collector's).
        """
        if path not in KNOWN_PATHS:
            path = "other"  # bound the per-path dict against URL scanners
        bucket = f"{status // 100}xx"
        with self._lock:
            self._total += 1
            self._by_path[path] = self._by_path.get(path, 0) + 1
            self._by_status_class[bucket] = (
                self._by_status_class.get(bucket, 0) + 1
            )
        if duration_ms is not None:
            self.latency.observe(duration_ms)

    @property
    def total(self) -> int:
        """Requests recorded so far."""
        with self._lock:
            return self._total

    def snapshot(self) -> Dict[str, float]:
        """Flat counter dict keyed ``http.<metric>``.

        The historical keys are unchanged; when the latency histogram has
        observations it additionally contributes ``http.p50_latency_ms``
        (p95/p99 likewise) and the per-bucket ``http.latency_ms_le.*``
        counts.
        """
        with self._lock:
            stats: Dict[str, float] = {"http.requests": float(self._total)}
            for path, count in sorted(self._by_path.items()):
                stats[f"http.path.{path.lstrip('/') or 'root'}"] = float(count)
            for bucket, count in sorted(self._by_status_class.items()):
                stats[f"http.responses.{bucket}"] = float(count)
        if self.latency.count:
            self.latency.snapshot_into(stats, "http")
        return stats

    def export_state(self) -> Dict[str, Any]:
        """Structured state for the Prometheus renderer.

        Counts are copied; the latency histogram is handed over live (its
        accessors take their own lock).
        """
        with self._lock:
            return {
                "total": float(self._total),
                "by_path": {
                    path: float(count)
                    for path, count in sorted(self._by_path.items())
                },
                "by_status_class": {
                    bucket: float(count)
                    for bucket, count in sorted(self._by_status_class.items())
                },
                "histogram": self.latency,
            }


# ----------------------------------------------------------------------
# Authentication
# ----------------------------------------------------------------------


def bearer_token_matches(header: Optional[str], token: str) -> bool:
    """Constant-time check of an ``Authorization: Bearer`` header.

    Compares as bytes: ``compare_digest`` raises ``TypeError`` on
    non-ASCII str input, and header bytes arrive latin-1-decoded — a
    garbage token must yield a 401 envelope, not a handler crash.
    """
    if not header or not header.startswith("Bearer "):
        return False
    return hmac.compare_digest(
        header[len("Bearer "):].encode("utf-8", "surrogateescape"),
        token.encode("utf-8"),
    )


def unauthorized_envelope() -> ServiceResponse:
    """The structured 401 body for a missing or wrong bearer token."""
    return ServiceResponse.failure(
        "http",
        "unauthorized",
        "missing or invalid bearer token; send "
        "'Authorization: Bearer <token>'",
    )


# ----------------------------------------------------------------------
# Routing errors
# ----------------------------------------------------------------------


def route_error_envelope(path: str, hint_paths: Tuple[str, ...]) -> ServiceResponse:
    """404 for unknown paths, 405 for a known path with the wrong verb.

    *hint_paths* are the paths that exist but take the other verb — a
    request for one of them is a method error, not a missing resource.
    """
    if path in hint_paths:
        return ServiceResponse.failure(
            "http",
            "method_not_allowed",
            f"wrong method for {path}; see GET /healthz, GET /metrics, "
            f"GET /stats, POST /query, POST /batch",
        )
    return ServiceResponse.failure(
        "http",
        "not_found",
        f"unknown path {path!r}; endpoints are GET /healthz, "
        f"GET /metrics, GET /stats, POST /query, POST /batch",
    )


# ----------------------------------------------------------------------
# Body handling
# ----------------------------------------------------------------------


def parse_content_length(
    header: Optional[str], max_body_bytes: int
) -> Tuple[Optional[int], Optional[ServiceResponse]]:
    """Validate a ``Content-Length`` header → ``(length, error_envelope)``.

    Exactly one side of the pair is set.  A missing or malformed header is
    ``malformed_request`` (without a length the body cannot be drained, so
    the connection must not be reused); a declared size beyond
    *max_body_bytes* is ``payload_too_large`` (the body is never buffered).
    """
    try:
        length = int(header)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None, ServiceResponse.failure(
            "http",
            "malformed_request",
            "POST requires a Content-Length header",
        )
    if length > max_body_bytes:
        return None, ServiceResponse.failure(
            "http",
            "payload_too_large",
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte limit",
        )
    return max(0, length), None


def decode_body(raw: bytes) -> Tuple[Optional[str], Optional[ServiceResponse]]:
    """Decode a request body → ``(text, error_envelope)``; UTF-8 only."""
    try:
        return raw.decode("utf-8"), None
    except UnicodeDecodeError as error:
        return None, ServiceResponse.failure(
            "http", "malformed_request", f"body is not UTF-8: {error}"
        )


def parse_batch(
    body: str,
) -> Tuple[Optional[List[Any]], Optional[ServiceResponse]]:
    """Parse a ``/batch`` body → ``(entries, error_envelope)``.

    The body must be a JSON array; anything else is one
    ``malformed_request`` envelope for the whole batch (per-slot failures
    are the executor's business, not the transport's).
    """
    try:
        entries = json.loads(body)
    except json.JSONDecodeError as error:
        return None, ServiceResponse.failure(
            "batch", "malformed_request", f"batch is not valid JSON: {error}"
        )
    if not isinstance(entries, list):
        return None, ServiceResponse.failure(
            "batch",
            "malformed_request",
            f"batch must be a JSON array, got {type(entries).__name__}",
        )
    return entries, None


def batch_body_text(responses: List[ServiceResponse]) -> str:
    """The canonical JSON text of a batch response array."""
    return json.dumps(
        [response.to_dict() for response in responses], sort_keys=True
    )

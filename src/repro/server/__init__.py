"""HTTP wire transport for the OCTOPUS service layer.

The JSON request/response envelopes of :mod:`repro.service` were designed
to be transport-ready; this package puts them on a socket.  A threaded
stdlib server (:class:`~repro.server.http.OctopusHTTPServer`) exposes
``POST /query``, ``POST /batch``, ``GET /stats`` and ``GET /healthz`` over
any service executor — a plain :class:`~repro.service.OctopusService` or a
:class:`~repro.service.ConcurrentOctopusService` pool — and a typed client
stub (:class:`~repro.server.client.OctopusClient`) mirrors the executor
surface so callers cannot tell local from remote::

    from repro import Octopus, OctopusService
    from repro.server import OctopusClient, serve_in_background

    server = serve_in_background(OctopusService(backend))  # ephemeral port
    with OctopusClient(server.url) as client:
        response = client.execute(FindInfluencersRequest("data mining"))
        assert response.ok
    final_stats = server.shutdown_gracefully()  # drains in-flight requests

The CLI front end is ``octopus serve`` (boot a server over a dataset) and
``octopus query --url`` (replay requests against one).
"""

from repro.server.client import (
    OctopusClient,
    OctopusRateLimitedError,
    OctopusTransportError,
)
from repro.server.http import (
    HTTP_STATUS_BY_ERROR_CODE,
    OctopusHTTPServer,
    serve_in_background,
    status_for_response,
)

__all__ = [
    "OctopusHTTPServer",
    "OctopusClient",
    "OctopusTransportError",
    "OctopusRateLimitedError",
    "HTTP_STATUS_BY_ERROR_CODE",
    "serve_in_background",
    "status_for_response",
]

"""Sampling kernels for reverse-reachable sets.

Three interchangeable kernels draw RR sets from an in-CSR graph:

* ``"vectorized"`` (the default) — frontier-batched: per BFS level it
  gathers the in-CSR slices of the *whole* frontier at once (``np.repeat``
  plus fancy indexing over ``in_offsets``/``in_sources``/``in_edge_ids``),
  draws a single coin array for every gathered edge, and marks visits in a
  boolean scratch array.  No per-node Python iteration — the per-sample cost
  is a handful of NumPy calls per BFS level.
* ``"legacy"`` — the historical node-at-a-time loop over Python sets
  (:func:`repro.propagation.rrsets._reverse_reachable`), kept selectable for
  bit-compatibility with earlier releases.
* ``"native"`` — chunk-batched compiled C core with a draw-for-draw
  identical pure-NumPy fallback (:mod:`repro.propagation.native`): a whole
  chunk of roots goes into one call that writes the packed ``(nodes,
  offsets)`` payload directly, with coins from a splitmix64 stream both
  implementations consume in the same order.  Always selectable — the
  fallback runs when the optional extension didn't build — and bit-stable
  either way.

Each kernel is self-deterministic — a fixed seed reproduces its results on
any backend at any worker count — but the kernels consume their RNG
streams in different orders (per-node draws vs per-level draws vs the
splitmix64 side stream), so their outputs need not match each other
sample-for-sample.  They do sample the same distribution: every in-edge of
every visited node is crossed with exactly one fresh coin, which is the
lazy live-edge coupling of the IC model (see the exact world-enumeration
tests in ``test_rr_kernels.py`` and ``test_native_kernel.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.graph.digraph import SocialGraph

__all__ = [
    "RR_KERNELS",
    "DEFAULT_RR_KERNEL",
    "check_rr_kernel",
    "gather_csr_slices",
    "reverse_reachable_frontier",
]

#: Recognised kernel names, in presentation order.
RR_KERNELS = ("vectorized", "legacy", "native")

#: The kernel used when callers don't choose one.
DEFAULT_RR_KERNEL = "vectorized"


def check_rr_kernel(kernel: str) -> str:
    """Validate a kernel name, returning it unchanged."""
    if kernel not in RR_KERNELS:
        raise ValidationError(
            f"rr kernel must be one of {RR_KERNELS}, got {kernel!r}"
        )
    return kernel


def gather_csr_slices(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], stops[i])`` for every row ``i``.

    The frontier-batch primitive: given the CSR slice bounds of every
    frontier node, returns one index array addressing all their adjacency
    entries at once, in row order.  Pure arithmetic — no Python loop.
    """
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Shift each row's running position back to its CSR start.
    shift = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(lengths)[:-1]))
    return np.repeat(starts - shift, lengths) + np.arange(total, dtype=np.int64)


def reverse_reachable_frontier(
    graph: "SocialGraph",
    edge_probabilities: np.ndarray,
    root: int,
    rng: np.random.Generator,
    visited: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Sample one RR set with the frontier-batched vectorized kernel.

    Returns the member nodes as an int64 array: the root first, then each
    BFS level's newly reached nodes in ascending order.  One coin array is
    drawn per level covering every gathered in-edge, so each edge is
    examined at most once per sample — the IC distribution, like the legacy
    kernel, just with a different draw order.

    *visited* may supply a reusable all-``False`` boolean scratch array of
    length ``num_nodes``; the caller must clear the returned members from it
    afterwards (``visited[members] = False``).  Bulk samplers use this to
    avoid an O(n) allocation per sample.
    """
    if visited is None:
        visited = np.zeros(graph.num_nodes, dtype=bool)
    in_offsets = graph.in_offsets
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    levels = [frontier]
    while True:
        indices = gather_csr_slices(
            in_offsets[frontier], in_offsets[frontier + 1]
        )
        if indices.size == 0:
            break
        coins = rng.random(indices.size)
        hits = indices[coins < edge_probabilities[graph.in_edge_ids[indices]]]
        if hits.size == 0:
            break
        candidates = graph.in_sources[hits]
        fresh = candidates[~visited[candidates]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        visited[frontier] = True
        levels.append(frontier)
    if len(levels) == 1:
        return levels[0]
    return np.concatenate(levels)

"""Influence propagation under the (topic-aware) independent cascade model.

Provides forward Monte-Carlo simulation, fixed live-edge possible worlds
(shared-threshold coupling across topic distributions), reverse-reachable-set
sampling [8] on pluggable kernels (frontier-batched vectorized / legacy /
chunk-batched native with an optional compiled core) with packed flat-array
storage, and the spread estimators built on them.
"""

from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
    SpreadEstimator,
)
from repro.propagation.ic import IndependentCascade, simulate_cascade
from repro.propagation.kernels import (
    DEFAULT_RR_KERNEL,
    RR_KERNELS,
    check_rr_kernel,
    reverse_reachable_frontier,
)
from repro.propagation.native import (
    HAVE_COMPILED,
    kernel_provenance,
    sample_rr_chunk,
)
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import (
    RRSetCollection,
    generate_rr_set,
    sample_packed_rr_sets,
)
from repro.propagation.worlds import LiveEdgeWorld, WorldEnsemble

__all__ = [
    "IndependentCascade",
    "simulate_cascade",
    "LiveEdgeWorld",
    "WorldEnsemble",
    "RR_KERNELS",
    "DEFAULT_RR_KERNEL",
    "HAVE_COMPILED",
    "check_rr_kernel",
    "kernel_provenance",
    "reverse_reachable_frontier",
    "sample_rr_chunk",
    "PackedRRSets",
    "RRSetCollection",
    "generate_rr_set",
    "sample_packed_rr_sets",
    "SpreadEstimator",
    "MonteCarloSpreadEstimator",
    "RRSetSpreadEstimator",
]

"""Influence propagation under the (topic-aware) independent cascade model.

Provides forward Monte-Carlo simulation, fixed live-edge possible worlds
(shared-threshold coupling across topic distributions), reverse-reachable-set
sampling [8] on pluggable kernels (frontier-batched vectorized / legacy)
with packed flat-array storage, and the spread estimators built on them.
"""

from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
    SpreadEstimator,
)
from repro.propagation.ic import IndependentCascade, simulate_cascade
from repro.propagation.kernels import (
    DEFAULT_RR_KERNEL,
    RR_KERNELS,
    check_rr_kernel,
    reverse_reachable_frontier,
)
from repro.propagation.packed import PackedRRSets
from repro.propagation.rrsets import (
    RRSetCollection,
    generate_rr_set,
    sample_packed_rr_sets,
)
from repro.propagation.worlds import LiveEdgeWorld, WorldEnsemble

__all__ = [
    "IndependentCascade",
    "simulate_cascade",
    "LiveEdgeWorld",
    "WorldEnsemble",
    "RR_KERNELS",
    "DEFAULT_RR_KERNEL",
    "check_rr_kernel",
    "reverse_reachable_frontier",
    "PackedRRSets",
    "RRSetCollection",
    "generate_rr_set",
    "sample_packed_rr_sets",
    "SpreadEstimator",
    "MonteCarloSpreadEstimator",
    "RRSetSpreadEstimator",
]

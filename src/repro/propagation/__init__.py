"""Influence propagation under the (topic-aware) independent cascade model.

Provides forward Monte-Carlo simulation, fixed live-edge possible worlds
(shared-threshold coupling across topic distributions), reverse-reachable-set
sampling [8], and the spread estimators built on them.
"""

from repro.propagation.estimators import (
    MonteCarloSpreadEstimator,
    RRSetSpreadEstimator,
    SpreadEstimator,
)
from repro.propagation.ic import IndependentCascade, simulate_cascade
from repro.propagation.rrsets import RRSetCollection, generate_rr_set
from repro.propagation.worlds import LiveEdgeWorld, WorldEnsemble

__all__ = [
    "IndependentCascade",
    "simulate_cascade",
    "LiveEdgeWorld",
    "WorldEnsemble",
    "RRSetCollection",
    "generate_rr_set",
    "SpreadEstimator",
    "MonteCarloSpreadEstimator",
    "RRSetSpreadEstimator",
]

"""The ``"native"`` RR-sampling kernel: compiled core + pure-Python twin.

The third sampling kernel (next to ``vectorized`` and ``legacy``) exists in
two draw-for-draw identical implementations:

* the **compiled** path — :mod:`repro.propagation._rrnative`, an optional C
  extension (built by ``python setup.py build_ext --inplace`` or a
  ``pip install`` with a working compiler) whose chunk-batched entry point
  takes a whole chunk of roots plus the in-CSR arrays and emits the packed
  ``(nodes, offsets)`` payload directly, amortising call overhead across
  the chunk and releasing the GIL for the duration;
* the **fallback** path — pure NumPy, frontier-batched like the
  ``vectorized`` kernel, always importable.

Identity between the two is not statistical but *bitwise*: both consume the
same splitmix64 coin stream in the same order (one coin per gathered
in-edge per BFS level, frontier iterated in ascending node order, each
node's in-CSR slice in order).  splitmix64 is counter-based — output ``i``
is ``mix(seed + i·γ)`` — so the NumPy twin vectorises a whole level's coins
with pure uint64 array arithmetic while the C core advances the same state
sequentially; the doubles that come out are bit-equal.  ``native`` is
therefore always selectable and seed-stable whether or not the extension
built, and which path ran is pure observability
(:func:`kernel_provenance`), never an answer change.

Seeding ties the kernel into the backend determinism contract: each chunk's
:class:`numpy.random.Generator` contributes the chunk's roots (one bulk
``integers`` draw when not pre-assigned) and one uint64 stream seed, so the
chunk plan (:func:`repro.backend.base.rr_chunk_plan`) keys everything and a
fixed seed is bit-stable across serial/threads/processes/cluster at any
worker or shard count.  Like the other kernels, ``native`` samples the
exact IC RR distribution but draws in its own order, so it need not match
``vectorized`` sample-for-sample.

The module also hosts the greedy max-cover **cover-update** inner step
(mark the chosen seed's uncovered RR sets covered, decrement the coverage
counts of their members) used by
:meth:`~repro.propagation.rrsets.RRSetCollection.greedy_max_cover` and the
cluster's :class:`~repro.cluster.merge.ShardCoverState`.  The compiled and
NumPy updates perform the same exact integer arithmetic, so argmax and
tie-break sequences — and with them ``deterministic_form()`` bytes and
cluster merges — are unchanged whichever one runs.

Set ``REPRO_NATIVE=0`` to force the pure-Python path even when the
extension is importable (CI uses this to prove the fallback passes the
same suite).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.propagation.kernels import gather_csr_slices
from repro.utils.env import env_switch

__all__ = [
    "HAVE_COMPILED",
    "SplitMix64Stream",
    "apply_cover_seed",
    "kernel_provenance",
    "sample_rr_chunk",
    "use_compiled",
]

try:  # pragma: no cover — exercised only where the extension built
    from repro.propagation import _rrnative
except ImportError:  # pragma: no cover — the mandatory-fallback leg
    _rrnative = None

#: Whether the compiled extension imported (the fallback still works).
HAVE_COMPILED = _rrnative is not None

#: ``REPRO_NATIVE=0`` (or ``off`` / ``fallback``) forces the NumPy twin.
#: ``None`` means "consult the environment at call time"; tests may pin
#: this attribute to ``True``/``False`` to force a path directly.
_FORCED_FALLBACK: Optional[bool] = None

_FALLBACK_VALUES = ("0", "off", "fallback")
_COMPILED_VALUES = ("", "1", "on", "compiled", "native")


def _forced_fallback() -> bool:
    """Whether ``REPRO_NATIVE`` forces the NumPy twin right now.

    An unrecognized value (``REPRO_NATIVE=2``) raises a
    :class:`~repro.utils.validation.ValidationError` at the first kernel
    dispatch instead of silently selecting the compiled path.
    """
    if _FORCED_FALLBACK is not None:
        return _FORCED_FALLBACK
    return not env_switch(
        "REPRO_NATIVE", on=_COMPILED_VALUES, off=_FALLBACK_VALUES
    )

_EMPTY = np.empty(0, dtype=np.int64)

# splitmix64 constants (Steele, Lea & Flood 2014), as uint64 scalars so the
# NumPy arithmetic below wraps exactly like the C core's.
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_TO_DOUBLE = 1.0 / 9007199254740992.0  # 2**-53


def use_compiled() -> bool:
    """Whether calls will run on the compiled extension right now."""
    return HAVE_COMPILED and not _forced_fallback()


def kernel_provenance() -> str:
    """``"native-compiled"`` or ``"native-fallback"`` (observability)."""
    return "native-compiled" if use_compiled() else "native-fallback"


class SplitMix64Stream:
    """Counter-based splitmix64 stream with a ``Generator``-like ``random``.

    Output ``i`` (1-based) is ``mix(seed + i·γ)`` — the same sequence the
    C core produces by advancing its state sequentially — so ``random(n)``
    is one vectorised uint64 pass, and interleaving call sizes differently
    (per level here, per edge in C) cannot change the draws.
    """

    __slots__ = ("_seed", "_drawn")

    def __init__(self, seed: int) -> None:
        self._seed = np.uint64(seed)
        self._drawn = 0

    def random(self, count: int) -> np.ndarray:
        """The next *count* doubles in ``[0, 1)`` (53-bit mantissas)."""
        if count == 0:
            return np.empty(0, dtype=np.float64)
        indices = np.arange(
            self._drawn + 1, self._drawn + count + 1, dtype=np.uint64
        )
        self._drawn += count
        with np.errstate(over="ignore"):
            z = self._seed + indices * _GAMMA
            z = (z ^ (z >> np.uint64(30))) * _MIX1
            z = (z ^ (z >> np.uint64(27))) * _MIX2
            z = z ^ (z >> np.uint64(31))
        return (z >> np.uint64(11)).astype(np.float64) * _TO_DOUBLE


# ----------------------------------------------------------------------
# Chunk-batched sampling
# ----------------------------------------------------------------------


def sample_rr_chunk(
    graph,
    edge_probabilities: np.ndarray,
    count: int,
    rng: np.random.Generator,
    roots: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample one whole chunk of RR sets with the native kernel.

    *rng* (the chunk's spawned stream) contributes exactly two draws: the
    chunk's roots (one bulk ``integers`` call, skipped when *roots* are
    pre-assigned) and one uint64 seeding the splitmix64 coin stream shared
    by every sample in the chunk.  Returns the packed ``(nodes, offsets)``
    chunk payload (:meth:`~repro.propagation.packed.PackedRRSets
    .chunk_payload` form) — the compiled core writes it directly.
    """
    if roots is None:
        roots = rng.integers(0, graph.num_nodes, size=count, dtype=np.int64)
    else:
        roots = np.ascontiguousarray(roots, dtype=np.int64)
    seed = int(rng.integers(0, 2**64, dtype=np.uint64))
    edge_probabilities = np.ascontiguousarray(
        edge_probabilities, dtype=np.float64
    )
    if use_compiled():
        return _sample_chunk_compiled(
            graph.num_nodes,
            graph.in_offsets,
            graph.in_sources,
            graph.in_edge_ids,
            edge_probabilities,
            roots,
            seed,
        )
    return _sample_chunk_fallback(
        graph.num_nodes,
        graph.in_offsets,
        graph.in_sources,
        graph.in_edge_ids,
        edge_probabilities,
        roots,
        seed,
    )


def _sample_chunk_compiled(
    num_nodes: int,
    in_offsets: np.ndarray,
    in_sources: np.ndarray,
    in_edge_ids: np.ndarray,
    edge_probabilities: np.ndarray,
    roots: np.ndarray,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One C call for the whole chunk; buffers re-wrapped without copy."""
    nodes_buf, offsets_buf = _rrnative.sample_chunk(
        int(num_nodes),
        np.ascontiguousarray(in_offsets, dtype=np.int64),
        np.ascontiguousarray(in_sources, dtype=np.int64),
        np.ascontiguousarray(in_edge_ids, dtype=np.int64),
        edge_probabilities,
        roots,
        seed,
    )
    return (
        np.frombuffer(nodes_buf, dtype=np.int64),
        np.frombuffer(offsets_buf, dtype=np.int64),
    )


def _sample_chunk_fallback(
    num_nodes: int,
    in_offsets: np.ndarray,
    in_sources: np.ndarray,
    in_edge_ids: np.ndarray,
    edge_probabilities: np.ndarray,
    roots: np.ndarray,
    seed: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """The NumPy twin: frontier-batched, same coin stream, same bytes."""
    stream = SplitMix64Stream(seed)
    visited = np.zeros(num_nodes, dtype=bool)
    arrays: List[np.ndarray] = []
    for root in roots:
        members = _frontier_members(
            in_offsets,
            in_sources,
            in_edge_ids,
            edge_probabilities,
            int(root),
            stream,
            visited,
        )
        visited[members] = False
        arrays.append(members)
    offsets = np.zeros(len(arrays) + 1, dtype=np.int64)
    np.cumsum([len(array) for array in arrays], out=offsets[1:])
    nodes = np.concatenate(arrays) if arrays else _EMPTY
    return nodes, offsets


def _frontier_members(
    in_offsets: np.ndarray,
    in_sources: np.ndarray,
    in_edge_ids: np.ndarray,
    edge_probabilities: np.ndarray,
    root: int,
    stream: SplitMix64Stream,
    visited: np.ndarray,
) -> np.ndarray:
    """One RR set, frontier-batched, coins from the splitmix64 stream.

    The traversal is the ``vectorized`` kernel's (root first, then each
    level's new nodes ascending; one coin per gathered in-edge per level)
    — only the coin source differs, which is what makes the compiled core
    reproducible here: it examines the same edges in the same order and
    pulls the same doubles off the same stream.
    """
    visited[root] = True
    frontier = np.array([root], dtype=np.int64)
    levels = [frontier]
    while True:
        indices = gather_csr_slices(
            in_offsets[frontier], in_offsets[frontier + 1]
        )
        if indices.size == 0:
            break
        coins = stream.random(indices.size)
        hits = indices[coins < edge_probabilities[in_edge_ids[indices]]]
        if hits.size == 0:
            break
        candidates = in_sources[hits]
        fresh = candidates[~visited[candidates]]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        visited[frontier] = True
        levels.append(frontier)
    if len(levels) == 1:
        return levels[0]
    return np.concatenate(levels)


# ----------------------------------------------------------------------
# Greedy cover-update inner step
# ----------------------------------------------------------------------


def apply_cover_seed(
    seed_node: int,
    member_offsets: np.ndarray,
    member_sets: np.ndarray,
    covered: np.ndarray,
    set_offsets: np.ndarray,
    set_nodes: np.ndarray,
    coverage: np.ndarray,
) -> int:
    """Fold one selected seed into ``covered``/``coverage`` in place.

    Marks each of *seed_node*'s not-yet-covered RR sets covered and
    decrements the coverage count of every member of those sets — the
    greedy max-cover inner loop, over the packed batch
    (``set_offsets``/``set_nodes``) and its CSR membership index
    (``member_offsets``/``member_sets``).  Returns the number of newly
    covered sets.  Compiled and NumPy paths perform the same exact integer
    arithmetic, so selection order never depends on which one ran.
    """
    if use_compiled():
        return int(
            _rrnative.cover_update(
                int(seed_node),
                member_offsets,
                member_sets,
                covered,
                set_offsets,
                set_nodes,
                coverage,
            )
        )
    candidate_sets = member_sets[
        member_offsets[seed_node]:member_offsets[seed_node + 1]
    ]
    new_sets = candidate_sets[~covered[candidate_sets]]
    if new_sets.size == 0:
        return 0
    covered[new_sets] = True
    member_indices = gather_csr_slices(
        set_offsets[new_sets], set_offsets[new_sets + 1]
    )
    coverage -= np.bincount(
        set_nodes[member_indices], minlength=len(coverage)
    )
    return int(new_sets.size)

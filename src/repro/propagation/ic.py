"""Forward simulation of the independent cascade (IC) model.

The topic-aware IC model of Section II-B reduces, once a query's topic
distribution γ collapses the per-edge topic weights to scalars, to the
classical IC model: every newly activated node gets one chance to activate
each out-neighbour with the edge's probability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

import numpy as np

from repro.graph.digraph import SocialGraph
from repro.propagation.kernels import gather_csr_slices
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import ValidationError, check_node_id, check_positive

__all__ = ["simulate_cascade", "CascadeTrace", "IndependentCascade", "IC_KERNELS"]

#: Forward-simulation kernels: ``"vectorized"`` batches coin flips per
#: frontier level; ``"legacy"`` is the historical node-at-a-time loop,
#: kept bit-for-bit (same draws, same activation order) and pinned by
#: golden unit tests.  Both are exact IC samplers — one coin per out-edge
#: of each newly activated node — but their frontier orders diverge after
#: the first level, so seeded cascades differ between kernels (never
#: within one).
IC_KERNELS = ("vectorized", "legacy")


@dataclass
class CascadeTrace:
    """Full record of one simulated cascade.

    ``activation_edges`` holds ``(edge_id, source, target)`` for every
    successful activation, in activation order; seeds have no incoming
    activation edge.
    """

    seeds: Tuple[int, ...]
    activated: Set[int]
    activation_edges: List[Tuple[int, int, int]]

    @property
    def spread(self) -> int:
        """Number of activated nodes (seeds included)."""
        return len(self.activated)


def simulate_cascade(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    seeds: Sequence[int],
    seed: SeedLike = None,
    *,
    record_trace: bool = False,
    kernel: str = "vectorized",
) -> CascadeTrace:
    """Simulate one IC cascade from *seeds*.

    Each edge out of a newly activated node flips an independent coin with
    the edge's probability.  Returns a :class:`CascadeTrace`; when
    *record_trace* is false the ``activation_edges`` list stays empty (faster
    and lighter for spread estimation).

    *kernel* selects the implementation (see :data:`IC_KERNELS`): the
    frontier-batched vectorized kernel by default, or the pinned
    ``"legacy"`` node-at-a-time loop for reproducing historical seeded
    cascades.
    """
    if kernel == "vectorized":
        return _simulate_cascade_frontier(
            graph, edge_probabilities, seeds, seed, record_trace
        )
    if kernel == "legacy":
        return _simulate_cascade_legacy(
            graph, edge_probabilities, seeds, seed, record_trace
        )
    raise ValidationError(
        f"unknown IC kernel {kernel!r}; choose from {list(IC_KERNELS)}"
    )


def _simulate_cascade_frontier(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    seeds: Sequence[int],
    seed: SeedLike,
    record_trace: bool,
) -> CascadeTrace:
    """Frontier-batched cascade: one coin array per level.

    Per level: gather the CSR out-slices of every frontier node into one
    edge-index array (out-CSR position *is* the edge id), flip all the
    level's coins in a single draw, drop targets that are already active,
    and resolve same-level races with ``np.unique`` — the first successful
    edge in gathered order (frontier order × CSR slice order, exactly the
    legacy visit order) wins the target.  The next frontier is the sorted
    winner set.
    """
    rng = as_generator(seed)
    seed_tuple = _check_seeds(graph, seeds)
    out_offsets = graph.out_offsets
    out_targets = graph.out_targets
    active = np.zeros(graph.num_nodes, dtype=bool)
    frontier = np.asarray(seed_tuple, dtype=np.int64)
    active[frontier] = True
    edges: List[Tuple[int, int, int]] = []
    while frontier.size:
        starts = out_offsets[frontier]
        stops = out_offsets[frontier + 1]
        gathered = gather_csr_slices(starts, stops)
        if gathered.size == 0:
            break
        coins = rng.random(gathered.size)
        hits = np.flatnonzero(coins < edge_probabilities[gathered])
        if record_trace:
            sources = np.repeat(frontier, stops - starts)
        hit_edges = gathered[hits]
        candidates = out_targets[hit_edges]
        fresh = ~active[candidates]
        hit_edges = hit_edges[fresh]
        candidates = candidates[fresh]
        if candidates.size == 0:
            break
        winners, first_hit = np.unique(candidates, return_index=True)
        active[winners] = True
        if record_trace:
            hit_sources = sources[hits][fresh]
            for position in np.sort(first_hit):
                edges.append(
                    (
                        int(hit_edges[position]),
                        int(hit_sources[position]),
                        int(candidates[position]),
                    )
                )
        frontier = winners
    activated = {int(node) for node in np.flatnonzero(active)}
    return CascadeTrace(seeds=seed_tuple, activated=activated, activation_edges=edges)


def _simulate_cascade_legacy(
    graph: SocialGraph,
    edge_probabilities: np.ndarray,
    seeds: Sequence[int],
    seed: SeedLike,
    record_trace: bool,
) -> CascadeTrace:
    """The historical node-at-a-time loop, preserved bit-for-bit.

    Golden unit tests pin its seeded cascades (activated sets and trace
    edges), so any refactor that changes a draw or the activation order
    here is caught immediately.
    """
    rng = as_generator(seed)
    seed_tuple = _check_seeds(graph, seeds)
    activated: Set[int] = set(seed_tuple)
    frontier: List[int] = list(seed_tuple)
    edges: List[Tuple[int, int, int]] = []
    while frontier:
        next_frontier: List[int] = []
        for node in frontier:
            start, stop = graph.out_offsets[node], graph.out_offsets[node + 1]
            degree = stop - start
            if degree == 0:
                continue
            coins = rng.random(degree)
            block = graph.out_targets[start:stop]
            probabilities = edge_probabilities[start:stop]
            hits = np.flatnonzero(coins < probabilities)
            for offset in hits:
                target = int(block[offset])
                if target in activated:
                    continue
                activated.add(target)
                next_frontier.append(target)
                if record_trace:
                    edges.append((int(start + offset), node, target))
        frontier = next_frontier
    return CascadeTrace(seeds=seed_tuple, activated=activated, activation_edges=edges)


def _check_seeds(graph: SocialGraph, seeds: Sequence[int]) -> Tuple[int, ...]:
    if len(seeds) == 0:
        raise ValidationError("seed set must not be empty")
    checked = []
    seen = set()
    for node in seeds:
        node = check_node_id(int(node), graph.num_nodes, "seed")
        if node in seen:
            raise ValidationError(f"duplicate seed {node}")
        seen.add(node)
        checked.append(node)
    return tuple(checked)


class IndependentCascade:
    """IC model bound to a graph and a fixed per-edge probability vector.

    Convenience wrapper used wherever a query has already collapsed the
    topic weights: holds the probabilities once, then simulates or estimates
    spread repeatedly.
    """

    def __init__(
        self,
        graph: SocialGraph,
        edge_probabilities: np.ndarray,
        kernel: str = "vectorized",
    ) -> None:
        probabilities = np.asarray(edge_probabilities, dtype=np.float64)
        if probabilities.shape != (graph.num_edges,):
            raise ValidationError(
                f"edge_probabilities must have shape ({graph.num_edges},), "
                f"got {probabilities.shape}"
            )
        if np.any(probabilities < 0.0) or np.any(probabilities > 1.0):
            raise ValidationError("edge probabilities must lie in [0, 1]")
        if kernel not in IC_KERNELS:
            raise ValidationError(
                f"unknown IC kernel {kernel!r}; choose from {list(IC_KERNELS)}"
            )
        self.graph = graph
        self.edge_probabilities = probabilities
        self.kernel = kernel

    def simulate(
        self, seeds: Sequence[int], seed: SeedLike = None, *, record_trace: bool = False
    ) -> CascadeTrace:
        """One cascade from *seeds* (see :func:`simulate_cascade`)."""
        return simulate_cascade(
            self.graph,
            self.edge_probabilities,
            seeds,
            seed,
            record_trace=record_trace,
            kernel=self.kernel,
        )

    def estimate_spread(
        self,
        seeds: Sequence[int],
        num_samples: int = 200,
        seed: SeedLike = None,
    ) -> float:
        """Monte-Carlo estimate of the expected spread σ(seeds)."""
        check_positive(num_samples, "num_samples")
        rng = as_generator(seed)
        total = 0
        for _ in range(num_samples):
            total += self.simulate(seeds, rng).spread
        return total / num_samples

    def estimate_spread_with_interval(
        self,
        seeds: Sequence[int],
        num_samples: int = 200,
        seed: SeedLike = None,
        z_score: float = 1.96,
    ) -> Tuple[float, float]:
        """Spread estimate with a normal-approximation half-width."""
        check_positive(num_samples, "num_samples")
        rng = as_generator(seed)
        values = np.empty(num_samples, dtype=np.float64)
        for index in range(num_samples):
            values[index] = self.simulate(seeds, rng).spread
        mean = float(values.mean())
        if num_samples > 1:
            half_width = z_score * float(values.std(ddof=1)) / np.sqrt(num_samples)
        else:
            half_width = float("inf")
        return mean, half_width
